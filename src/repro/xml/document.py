"""A minimal XML document model with ID/IDREF links — paper Section 1.1.

The paper's motivating application is XML query processing: an XML
document is a tree of elements, but IDREF attributes turn it into a
directed graph, and structural queries like ``//fiction//author`` reduce
to reachability tests.  This module provides just enough of an XML stack
to make that application concrete:

* :class:`XMLElement` / :class:`XMLDocument` — an element tree with
  ``id`` and ``idref``/``idrefs`` attributes;
* :func:`parse_xml` — a parser for a practical XML subset (tags,
  attributes, text, comments) built on :mod:`xml.etree` from the standard
  library;
* :meth:`XMLDocument.to_graph` — the document as a :class:`DiGraph`
  whose edges are parent→child containment plus IDREF reference edges —
  exactly the "tree plus a few reference links" shape the paper calls
  out for XMark.

Element identity in the graph is the element's node id (a dense integer
assigned in document order), so several elements may share a tag name —
as in real XML — and tag-based queries fan out over all of them (see
:mod:`repro.xml.queries`).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.exceptions import DatasetError
from repro.graph.digraph import DiGraph

__all__ = ["XMLElement", "XMLDocument", "parse_xml"]


@dataclass
class XMLElement:
    """One element of an XML document.

    ``node_id`` is unique within the document (document order);
    ``tag`` need not be.
    """

    node_id: int
    tag: str
    attributes: dict[str, str] = field(default_factory=dict)
    children: list["XMLElement"] = field(default_factory=list)
    text: str = ""

    @property
    def element_id(self) -> Optional[str]:
        """The element's ``id`` attribute, if any."""
        return self.attributes.get("id")

    @property
    def idrefs(self) -> list[str]:
        """Referenced ids from ``idref``/``idrefs`` attributes."""
        refs: list[str] = []
        if "idref" in self.attributes:
            refs.append(self.attributes["idref"])
        if "idrefs" in self.attributes:
            refs.extend(self.attributes["idrefs"].split())
        return refs

    def iter(self) -> Iterator["XMLElement"]:
        """Iterate over this element and all descendants, document
        order."""
        stack = [self]
        while stack:
            element = stack.pop()
            yield element
            stack.extend(reversed(element.children))

    def __repr__(self) -> str:
        return f"<{self.tag} #{self.node_id}>"


class XMLDocument:
    """An element tree plus the id table and graph projection."""

    def __init__(self, root: XMLElement) -> None:
        self.root = root
        self._elements: dict[int, XMLElement] = {}
        self._by_id: dict[str, XMLElement] = {}
        self._by_tag: dict[str, list[XMLElement]] = {}
        for element in root.iter():
            if element.node_id in self._elements:
                raise DatasetError(
                    f"duplicate node_id {element.node_id}")
            self._elements[element.node_id] = element
            self._by_tag.setdefault(element.tag, []).append(element)
            eid = element.element_id
            if eid is not None:
                if eid in self._by_id:
                    raise DatasetError(f"duplicate element id {eid!r}")
                self._by_id[eid] = element

    # ------------------------------------------------------------------
    @property
    def num_elements(self) -> int:
        """Number of elements in the document."""
        return len(self._elements)

    def element(self, node_id: int) -> XMLElement:
        """Element by dense node id."""
        return self._elements[node_id]

    def by_id(self, element_id: str) -> Optional[XMLElement]:
        """Element by its ``id`` attribute, or ``None``."""
        return self._by_id.get(element_id)

    def by_tag(self, tag: str) -> list[XMLElement]:
        """All elements with a given tag, in document order."""
        return list(self._by_tag.get(tag, []))

    def tags(self) -> list[str]:
        """Distinct tags, in first-appearance order."""
        return list(self._by_tag)

    # ------------------------------------------------------------------
    def to_graph(self) -> DiGraph:
        """Project the document onto a reachability graph.

        Nodes are element node ids; edges are containment (parent →
        child) plus one edge per resolvable IDREF (referrer →
        referent).  Dangling IDREFs are ignored, mirroring how XML
        processors treat them for navigation.
        """
        graph = DiGraph(nodes=self._elements.keys())
        for element in self._elements.values():
            for child in element.children:
                graph.add_edge(element.node_id, child.node_id)
            for ref in element.idrefs:
                target = self._by_id.get(ref)
                if target is not None and target.node_id != element.node_id:
                    graph.add_edge(element.node_id, target.node_id)
        return graph

    def __repr__(self) -> str:
        return (f"XMLDocument(root={self.root.tag!r}, "
                f"elements={self.num_elements})")


def parse_xml(text: str) -> XMLDocument:
    """Parse XML text into an :class:`XMLDocument`.

    Supports the practical subset :mod:`xml.etree` handles (no DTD
    processing; ``id``/``idref``/``idrefs`` are recognised by attribute
    name, the convention XMark uses).

    Raises
    ------
    DatasetError
        On malformed XML.
    """
    try:
        etree_root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise DatasetError(f"malformed XML: {exc}") from exc

    counter = 0

    def convert(node: ET.Element) -> XMLElement:
        nonlocal counter
        element = XMLElement(
            node_id=counter,
            tag=node.tag,
            attributes=dict(node.attrib),
            text=(node.text or "").strip(),
        )
        counter += 1
        for child in node:
            element.children.append(convert(child))
        return element

    return XMLDocument(convert(etree_root))
