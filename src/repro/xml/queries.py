"""Path-expression evaluation over XML graphs via reachability indexes.

Implements the paper's motivating query pattern (Section 1.1):

    "consider a simple path expression //fiction//author ... obtain all
    fiction and author elements, and then test if an author element is
    reachable from any fiction element in the XML graph."

:class:`XMLReachabilityEngine` wires an :class:`XMLDocument` to any
registered reachability scheme and evaluates descendant-axis path
expressions of the form ``//tag1//tag2//...//tagK`` (including through
IDREF edges, which is what makes this a *graph* problem rather than a
tree problem).
"""

from __future__ import annotations

import re
from typing import Any

from repro.core.base import build_index
from repro.exceptions import DatasetError
from repro.xml.document import XMLDocument, XMLElement

__all__ = ["XMLReachabilityEngine", "parse_path_expression",
           "parse_mixed_path"]

_PATH_RE = re.compile(r"^(//[A-Za-z_][\w.-]*)+$")
_MIXED_RE = re.compile(r"(/{1,2})([A-Za-z_][\w.-]*)")


def parse_path_expression(expression: str) -> list[str]:
    """Split ``//a//b//c`` into ``["a", "b", "c"]``.

    Raises
    ------
    DatasetError
        If the expression is not a pure descendant-axis path.
    """
    if not _PATH_RE.match(expression):
        raise DatasetError(
            f"unsupported path expression {expression!r}; expected "
            "//tag//tag//... (descendant axes only)")
    return expression.strip("/").split("//")


def parse_mixed_path(expression: str) -> list[tuple[str, str]]:
    """Split a mixed-axis path into ``(axis, tag)`` steps.

    ``"//site/region//item"`` → ``[("//", "site"), ("/", "region"),
    ("//", "item")]``.  Axes: ``/`` is the child axis (direct
    containment), ``//`` the descendant axis (reachability, including
    IDREF hops).  The expression must start with an axis.

    Raises
    ------
    DatasetError
        On anything that is not a sequence of ``/tag`` / ``//tag``
        steps.
    """
    steps = _MIXED_RE.findall(expression)
    reconstructed = "".join(axis + tag for axis, tag in steps)
    if not steps or reconstructed != expression:
        raise DatasetError(
            f"unsupported path expression {expression!r}; expected "
            "steps of the form /tag or //tag")
    return steps


class XMLReachabilityEngine:
    """Evaluate descendant path expressions with a reachability index."""

    def __init__(self, document: XMLDocument, scheme: str = "dual-i",
                 **scheme_options: Any) -> None:
        self.document = document
        self.graph = document.to_graph()
        self.index = build_index(self.graph, scheme=scheme,
                                 **scheme_options)

    # ------------------------------------------------------------------
    def is_descendant(self, ancestor: XMLElement,
                      descendant: XMLElement) -> bool:
        """``True`` iff ``descendant`` is reachable from ``ancestor``
        through containment and/or IDREF edges."""
        return self.index.reachable(ancestor.node_id, descendant.node_id)

    def evaluate(self, expression: str) -> list[XMLElement]:
        """Elements matching the final tag of ``expression``.

        ``//a//b//c`` returns every ``c`` element for which some chain
        ``a ⇝ b ⇝ c`` of reachability holds (elements may repeat roles
        only in genuinely nested/linked chains — each step is a strict
        reachability test between distinct elements, with self-matches
        allowed only when the element truly reaches itself through a
        cycle of references or is the same element at both ends of a
        reflexive step; plain XPath semantics for distinct tags).
        """
        steps = parse_path_expression(expression)
        # Candidate frontier: elements matching the first tag.
        frontier = self.document.by_tag(steps[0])
        for tag in steps[1:]:
            next_frontier = []
            candidates = self.document.by_tag(tag)
            for candidate in candidates:
                if any(source.node_id != candidate.node_id
                       and self.is_descendant(source, candidate)
                       for source in frontier):
                    next_frontier.append(candidate)
            frontier = next_frontier
            if not frontier:
                break
        return frontier

    def evaluate_path(self, expression: str) -> list[XMLElement]:
        """Evaluate a mixed-axis path (``/child`` and ``//descendant``).

        The first step anchors anywhere in the document (XPath's
        leading ``//``) or, for a leading single ``/``, at the root
        element only.  ``/`` steps follow direct containment edges;
        ``//`` steps follow full graph reachability (containment +
        IDREF), like :meth:`evaluate`.
        """
        steps = parse_mixed_path(expression)
        first_axis, first_tag = steps[0]
        if first_axis == "//":
            frontier = self.document.by_tag(first_tag)
        else:
            root = self.document.root
            frontier = [root] if root.tag == first_tag else []
        for axis, tag in steps[1:]:
            if not frontier:
                break
            if axis == "/":
                frontier = [child
                            for element in frontier
                            for child in element.children
                            if child.tag == tag]
            else:
                candidates = self.document.by_tag(tag)
                frontier = [candidate for candidate in candidates
                            if any(source.node_id != candidate.node_id
                                   and self.is_descendant(source,
                                                          candidate)
                                   for source in frontier)]
        # De-duplicate while preserving document order ( "/" steps can
        # reach one element through several parents).
        seen: set[int] = set()
        unique = []
        for element in frontier:
            if element.node_id not in seen:
                seen.add(element.node_id)
                unique.append(element)
        return unique

    def structural_join(self, ancestor_tag: str, descendant_tag: str
                        ) -> list[tuple[XMLElement, XMLElement]]:
        """All (a, d) pairs with ``a ⇝ d`` — the XML *structural join*.

        This is the paper's Section 1.1 evaluation pattern spelled out:
        "obtain all fiction and author elements, and then test if an
        author element is reachable from any fiction element".  When
        the scheme exposes label arrays (Dual-I, Dual-II, closure,
        interval — see
        :meth:`repro.core.base.ReachabilityIndex.label_arrays`) the
        cross product is evaluated with the vectorised batch querier;
        other schemes fall back to the scalar loop.
        """
        ancestors = self.document.by_tag(ancestor_tag)
        descendants = self.document.by_tag(descendant_tag)
        if not ancestors or not descendants:
            return []
        pairs: list[tuple[XMLElement, XMLElement]] = []
        if self.index.label_arrays() is not None:
            from repro.core.batch import BatchQuerier

            matrix = BatchQuerier(self.index).reachability_matrix(
                [a.node_id for a in ancestors],
                [d.node_id for d in descendants])
            for i, a in enumerate(ancestors):
                row = matrix[i]
                for j, d in enumerate(descendants):
                    if row[j] and a.node_id != d.node_id:
                        pairs.append((a, d))
            return pairs
        for a in ancestors:
            for d in descendants:
                if a.node_id != d.node_id and self.is_descendant(a, d):
                    pairs.append((a, d))
        return pairs

    def count(self, expression: str) -> int:
        """Number of elements matched by ``expression`` (descendant-only
        paths use :meth:`evaluate`, mixed paths :meth:`evaluate_path`)."""
        if _PATH_RE.match(expression):
            return len(self.evaluate(expression))
        return len(self.evaluate_path(expression))

    def __repr__(self) -> str:
        return (f"XMLReachabilityEngine(elements="
                f"{self.document.num_elements}, "
                f"scheme={self.index.stats().scheme!r})")
