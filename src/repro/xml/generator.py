"""Synthetic XML document generator (XMark-flavoured).

Produces auction-site-like documents — the domain XMark models — with a
configurable element count and IDREF density, used by the XML example
and tests.  Structure:

* a ``site`` root with ``regions``/``people``/``catgraph`` sections;
* ``item`` elements nested under regions, each with an ``id``;
* ``person`` elements with ``watches`` carrying ``idref`` attributes to
  items, and items referencing related items via ``idrefs`` —
  the reference links that turn the tree into a graph.
"""

from __future__ import annotations

import random

from repro.xml.document import XMLDocument, XMLElement

__all__ = ["generate_auction_document"]


def generate_auction_document(num_items: int = 50,
                              num_people: int = 30,
                              num_refs: int = 40,
                              seed: int = 0) -> XMLDocument:
    """Generate an XMark-like auction document.

    Parameters
    ----------
    num_items: number of ``item`` elements (each gets ``id="item<k>"``).
    num_people: number of ``person`` elements.
    num_refs: total IDREF links (person→item watches plus item→item
        cross references).
    seed: RNG seed.
    """
    rng = random.Random(seed)
    counter = 0

    def element(tag: str, **attributes: str) -> XMLElement:
        nonlocal counter
        node = XMLElement(node_id=counter, tag=tag,
                          attributes=dict(attributes))
        counter += 1
        return node

    root = element("site")
    regions = element("regions")
    people = element("people")
    root.children += [regions, people]

    region_names = ["africa", "asia", "europe", "namerica", "samerica"]
    region_nodes = []
    for name in region_names:
        region = element("region", name=name)
        regions.children.append(region)
        region_nodes.append(region)

    items = []
    for k in range(num_items):
        item = element("item", id=f"item{k}")
        item.children.append(element("name"))
        item.children.append(element("description"))
        rng.choice(region_nodes).children.append(item)
        items.append(item)

    persons = []
    for k in range(num_people):
        person = element("person", id=f"person{k}")
        person.children.append(element("name"))
        people.children.append(person)
        persons.append(person)

    refs_placed = 0
    while refs_placed < num_refs and items:
        if persons and rng.random() < 0.6:
            watcher = rng.choice(persons)
            target = rng.choice(items)
            watch = element("watch", idref=target.attributes["id"])
            watcher.children.append(watch)
        else:
            source = rng.choice(items)
            target = rng.choice(items)
            if source is target:
                continue
            ref = element("itemref", idref=target.attributes["id"])
            source.children.append(ref)
        refs_placed += 1

    return XMLDocument(root)
