"""XML substrate: the paper's motivating application (Section 1.1).

Element trees with ID/IDREF links, projection onto reachability graphs,
and descendant-axis path-expression evaluation backed by any registered
reachability index.
"""

from repro.xml.document import XMLDocument, XMLElement, parse_xml
from repro.xml.generator import generate_auction_document
from repro.xml.queries import (
    XMLReachabilityEngine,
    parse_mixed_path,
    parse_path_expression,
)

__all__ = [
    "XMLDocument",
    "XMLElement",
    "parse_xml",
    "generate_auction_document",
    "XMLReachabilityEngine",
    "parse_path_expression",
    "parse_mixed_path",
]
