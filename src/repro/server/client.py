"""Synchronous client for the serving gateway.

:class:`ReachClient` speaks the newline-delimited JSON protocol over a
plain blocking socket — the counterpart the tests, the CLI, and simple
applications use.  One request is outstanding at a time per client;
replies are nevertheless matched by ``id`` (stray replies are stashed),
so the client also works on connections shared with pipelined senders.

Resilience is opt-in via :class:`RetryPolicy`: with a policy attached,
the client reconnects after drops, retries *idempotent* verbs with
jittered exponential backoff (``reload`` is never replayed), honours a
per-attempt timeout, and trips a simple circuit breaker after a run of
consecutive transport failures so a dead server fails fast instead of
hanging every caller.  With ``restart_grace`` set, a window of
*refused* connections — the signature of a full-server restart, e.g.
``serve --state-dir`` recovering after a crash — is ridden out with
jittered reconnect polls instead of tripping the breaker.  Every
failure is tallied into an error taxonomy
(:meth:`ReachClient.error_report`) that distinguishes timeouts from
connection resets from explicit ``overloaded`` sheds from degraded
replies from restart windows.

>>> with ReachClient(port=port) as client:          # doctest: +SKIP
...     client.query(0, 7)
...     client.query_batch([(0, 7), (7, 0)])
...     client.stats()["batcher"]["flushes"]
"""

from __future__ import annotations

import random
import socket
import time
import json
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.exceptions import ReproError
from repro.obs.tracing import TraceIds
from repro.server import binproto
from repro.server.protocol import encode_message

__all__ = ["BinaryReachClient", "CircuitOpenError", "ReachClient",
           "RetryPolicy", "ServerReplyError"]


class ServerReplyError(ReproError):
    """The server answered with an error reply.

    Attributes
    ----------
    code:
        The protocol error code (e.g. ``overloaded``, ``unknown_node``).
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class CircuitOpenError(ReproError):
    """The client's circuit breaker is open: recent calls failed in a
    row, so this call failed fast without touching the network."""


#: Verbs safe to replay after a transport failure: answering them twice
#: is indistinguishable from answering them once.  ``reload`` swaps
#: server state and is deliberately absent.
IDEMPOTENT_VERBS = frozenset(
    {"ping", "query", "batch", "stats", "metrics", "health", "ready"})


@dataclass(frozen=True)
class RetryPolicy:
    """Reconnect/retry/circuit-breaker tunables for :class:`ReachClient`.

    Attributes
    ----------
    max_attempts:
        Total tries per idempotent call (1 = no retry).
    base_delay / max_delay / jitter:
        Backoff between attempts: ``base_delay`` doubling up to
        ``max_delay``, scaled by a uniform ±``jitter`` fraction.
    attempt_timeout:
        Socket timeout per attempt in seconds (``None``: the client's
        constructor ``timeout`` applies).
    retry_overloaded:
        Also back off and retry explicit ``overloaded`` error replies
        (they are the server *asking* for backoff).
    breaker_threshold:
        Consecutive transport failures that open the circuit;
        ``0`` disables the breaker.
    breaker_cooldown:
        Seconds the circuit stays open before one probe attempt is let
        through (half-open).
    restart_grace:
        Seconds of *refused* connections to ride out as a server
        restart before treating them as ordinary transport failures.
        A refused connect means the request was never sent, so the
        grace window applies to every verb (even non-idempotent ones),
        consumes no retry attempts, and never feeds the circuit
        breaker — the client just polls with jittered reconnects until
        the listener is back or the grace expires.  ``0`` (the
        default) keeps the old behaviour: refused counts as a connect
        failure immediately.
    seed:
        Seed for the jitter RNG — deterministic backoff in tests.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5
    attempt_timeout: float | None = None
    retry_overloaded: bool = True
    breaker_threshold: int = 8
    breaker_cooldown: float = 1.0
    restart_grace: float = 0.0
    seed: int | None = None


class ReachClient:
    """Blocking gateway client (context manager).

    Parameters
    ----------
    host / port:
        The gateway's listening address.
    timeout:
        Socket timeout in seconds for connect and each reply.
    retry:
        Optional :class:`RetryPolicy`.  Without one (the default) the
        client behaves as before: one eager connection, failures
        propagate immediately.  With one, the initial connect may be
        deferred, idempotent calls retry with backoff, and the circuit
        breaker arms.
    trace:
        When true, every request carries a client-minted ``trace`` ID
        (``<tag>-<seq>``); the gateway propagates it into its access
        log, span histograms, and slow-query log, so a client-observed
        latency joins to the server-side stage breakdown with one
        grep.  :attr:`last_trace_id` holds the most recently minted ID.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 timeout: float = 30.0,
                 retry: RetryPolicy | None = None,
                 trace: bool = False) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._retry = retry
        self._trace_ids = TraceIds() if trace else None
        #: The trace ID attached to the most recent request (tracing
        #: clients only); ``None`` before the first call.
        self.last_trace_id: str | None = None
        self._rng = random.Random(retry.seed if retry else None)
        self._sock: socket.socket | None = None
        self._reader = None
        self._next_id = 0
        self._stash: dict[Any, dict] = {}
        # Circuit breaker state.
        self._consecutive_failures = 0
        self._open_until = 0.0
        # Error taxonomy (see :meth:`error_report`).
        self._counts = {"timeouts": 0, "resets": 0,
                        "connect_failures": 0, "shed": 0, "degraded": 0,
                        "retries": 0, "reconnects": 0,
                        "circuit_open": 0, "server_restarting": 0}
        # First refused connect of the current outage (restart-grace
        # clock); cleared by any successful call.
        self._refused_since: float | None = None
        self._reply_errors: dict[str, int] = {}
        try:
            self._connect()
        except OSError:
            # With a retry policy the first call reconnects; without
            # one, surface the failure eagerly as before.
            if retry is None:
                raise
            self._counts["connect_failures"] += 1

    # -- connection management ------------------------------------------
    def _connect(self) -> None:
        sock = socket.create_connection((self._host, self._port),
                                        timeout=self._attempt_timeout())
        self._sock = sock
        self._reader = sock.makefile("rb")
        self._stash.clear()

    def _attempt_timeout(self) -> float:
        if self._retry is not None \
                and self._retry.attempt_timeout is not None:
            return self._retry.attempt_timeout
        return self._timeout

    def _disconnect(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _ensure_connected(self) -> None:
        if self._sock is None:
            self._connect()
            self._counts["reconnects"] += 1

    # -- circuit breaker ------------------------------------------------
    def _breaker_check(self) -> None:
        policy = self._retry
        if policy is None or policy.breaker_threshold <= 0:
            return
        if self._open_until and time.monotonic() < self._open_until:
            self._counts["circuit_open"] += 1
            remaining = self._open_until - time.monotonic()
            raise CircuitOpenError(
                f"circuit open after {self._consecutive_failures} "
                f"consecutive failures; retry in {remaining:.2f}s")
        # Past the cooldown: half-open, let this attempt probe.

    def _note_transport_failure(self) -> None:
        self._consecutive_failures += 1
        policy = self._retry
        if policy is not None and policy.breaker_threshold > 0 \
                and self._consecutive_failures >= policy.breaker_threshold:
            self._open_until = time.monotonic() + policy.breaker_cooldown

    def _note_success(self) -> None:
        self._consecutive_failures = 0
        self._open_until = 0.0
        self._refused_since = None

    def _in_restart_grace(self) -> bool:
        """True while refused connects should be ridden out as a
        restart window (arms the grace clock on first refusal)."""
        policy = self._retry
        if policy is None or policy.restart_grace <= 0:
            return False
        now = time.monotonic()
        if self._refused_since is None:
            self._refused_since = now
        return now - self._refused_since <= policy.restart_grace

    # -- core -----------------------------------------------------------
    def call(self, verb: str, **fields: Any) -> Any:
        """Send one request and block for its reply's result.

        Raises
        ------
        ServerReplyError
            When the server answers with an error reply.
        ConnectionError
            When the connection drops before the reply arrives (after
            exhausting any retry budget).
        CircuitOpenError
            When the circuit breaker is open (retry policy only).
        """
        policy = self._retry
        attempts = (policy.max_attempts
                    if policy is not None and verb in IDEMPOTENT_VERBS
                    else 1)
        delay = policy.base_delay if policy is not None else 0.0
        # Reconnect cadence inside the restart-grace window: doubles
        # from base_delay but stays snappy, so a quick restart is
        # noticed quickly and a slow one is not hammered.
        refused_delay = policy.base_delay if policy is not None else 0.0
        last_exc: Exception | None = None
        attempt = 0
        while attempt < attempts:
            if attempt:
                self._counts["retries"] += 1
                self._sleep_backoff(delay)
                delay = min(delay * 2.0,
                            policy.max_delay if policy else delay)
            self._breaker_check()
            try:
                self._ensure_connected()
                result = self._call_once(verb, fields)
            except (TimeoutError, socket.timeout) as exc:
                attempt += 1
                self._counts["timeouts"] += 1
                self._note_transport_failure()
                self._disconnect()
                last_exc = ConnectionError(
                    f"timed out waiting for the {verb} reply: {exc}")
            except ConnectionError as exc:
                if isinstance(exc, ConnectionRefusedError) \
                        and self._in_restart_grace():
                    # Refused means nothing was sent, so waiting out a
                    # restart is safe for *any* verb and spends no
                    # attempt; poll again after a jittered pause.
                    self._counts["server_restarting"] += 1
                    self._disconnect()
                    last_exc = ConnectionError(
                        f"server restarting: connection to "
                        f"{self._host}:{self._port} refused")
                    self._sleep_backoff(refused_delay)
                    refused_delay = min(refused_delay * 2.0, 0.25)
                    continue
                attempt += 1
                self._counts["resets"] += 1
                self._note_transport_failure()
                self._disconnect()
                last_exc = exc
            except OSError as exc:
                attempt += 1
                self._counts["connect_failures"] += 1
                self._note_transport_failure()
                self._disconnect()
                last_exc = ConnectionError(
                    f"connection to {self._host}:{self._port} failed: "
                    f"{exc}")
            except ServerReplyError as exc:
                # The server is alive and talking: not a breaker event.
                self._note_success()
                self._reply_errors[exc.code] = \
                    self._reply_errors.get(exc.code, 0) + 1
                if exc.code == "overloaded":
                    self._counts["shed"] += 1
                    if policy is not None and policy.retry_overloaded \
                            and attempt + 1 < attempts:
                        attempt += 1
                        last_exc = exc
                        continue
                raise
            else:
                self._note_success()
                return result
        assert last_exc is not None
        raise last_exc

    def _sleep_backoff(self, delay: float) -> None:
        policy = self._retry
        if policy is None or delay <= 0:
            return
        if policy.jitter:
            delay *= 1.0 + policy.jitter * (2.0 * self._rng.random()
                                            - 1.0)
        time.sleep(max(0.0, delay))

    def _call_once(self, verb: str, fields: dict) -> Any:
        self._next_id += 1
        request_id = self._next_id
        request = {"id": request_id, "verb": verb, **fields}
        if self._trace_ids is not None and "trace" not in request:
            self.last_trace_id = self._trace_ids.next()
            request["trace"] = self.last_trace_id
        assert self._sock is not None
        self._sock.settimeout(self._attempt_timeout())
        self._sock.sendall(encode_message(request))
        return self._read_reply(request_id)

    def _read_reply(self, request_id: Any) -> Any:
        while True:
            if request_id in self._stash:
                reply = self._stash.pop(request_id)
            else:
                assert self._reader is not None
                line = self._reader.readline()
                if not line:
                    raise ConnectionError(
                        "server closed the connection")
                try:
                    reply = json.loads(line)
                except ValueError as exc:
                    # Garbled bytes on the wire: treat like a broken
                    # connection so the retry path reconnects.
                    raise ConnectionError(
                        f"undecodable reply line: {exc}") from None
                if reply.get("id") != request_id:
                    self._stash[reply.get("id")] = reply
                    continue
            if reply.get("ok"):
                return reply.get("result")
            raise ServerReplyError(reply.get("error", "unknown"),
                                   reply.get("message", ""))

    # -- verbs ----------------------------------------------------------
    def ping(self) -> str:
        return self.call("ping")

    def query(self, u: Any, v: Any, *,
              index: str | None = None) -> bool:
        """One reachability query through the gateway.

        ``index`` names the catalog entry (tenant index) to serve
        from; ``None`` targets the default index.  An unregistered
        name raises :class:`ServerReplyError` with code
        ``unknown_index`` (tallied per-code in :meth:`error_report`).
        """
        if index is None:
            return bool(self.call("query", u=u, v=v))
        return bool(self.call("query", u=u, v=v, index=index))

    def query_batch(self, pairs: Iterable[Sequence[Any]], *,
                    index: str | None = None) -> list[bool]:
        """Batch reachability through the gateway (one request).

        ``index`` selects the catalog entry, as in :meth:`query`.
        """
        payload = [[u, v] for u, v in pairs]
        if index is None:
            answers = self.call("batch", pairs=payload)
        else:
            answers = self.call("batch", pairs=payload, index=index)
        return [bool(answer) for answer in answers]

    def stats(self, reset: bool = False) -> dict:
        """The server's nested stats document (optionally resetting
        the service metrics afterwards)."""
        if reset:
            return self.call("stats", reset=True)
        return self.call("stats")

    def metrics(self, reset: bool = False) -> dict:
        """The server's Prometheus exposition document
        (``{"content_type": ..., "exposition": <text>}``); with
        ``reset``, counters and histograms are drained atomically as
        they are rendered."""
        if reset:
            return self.call("metrics", reset=True)
        return self.call("metrics")

    def health(self) -> dict:
        """The server's liveness document; counts ``degraded`` answers
        into the error taxonomy."""
        result = self.call("health")
        if isinstance(result, dict) and result.get("status") == "degraded":
            self._counts["degraded"] += 1
        return result

    def ready(self) -> dict:
        """The server's readiness document."""
        return self.call("ready")

    def reload(self, *, graph: Any = None, index: Any = None,
               scheme: str | None = None,
               name: str | None = None) -> dict:
        """Trigger a hot index swap from a graph or saved-index file.

        ``index`` is the saved-index *path*; ``name`` targets a named
        catalog entry (``None``/``"default"`` swaps the default
        serving backend).  Never retried: a replayed swap is not
        idempotent.
        """
        fields: dict[str, Any] = {}
        if graph is not None:
            fields["graph"] = str(graph)
        if index is not None:
            fields["index"] = str(index)
        if scheme is not None:
            fields["scheme"] = scheme
        if name is not None:
            fields["name"] = name
        return self.call("reload", **fields)

    def catalog(self, op: str, **fields: Any) -> dict:
        """One ``catalog`` verb request (multi-tenant index catalog).

        ``op`` is ``create``/``build``/``load``/``drop``/``list``;
        the remaining keyword fields are op-specific (``name``,
        ``graph``/``index`` paths, ``scheme``, a ``quota`` dict — see
        :mod:`repro.server.tenancy`).  Mutations are never retried.
        """
        return self.call("catalog", op=op, **fields)

    def catalog_list(self) -> list[dict]:
        """The catalog's index table (``catalog list``)."""
        return self.catalog("list")["indexes"]

    def slo(self, *, index: str | None = None,
            objective: dict | None = None) -> dict:
        """The server's SLO report; with ``objective``
        (``{"availability": ..., "latency_ms": ...}``) first declares
        or replaces the objective of ``index`` (``None`` = default).
        Declarations mutate server state, so the verb is never
        retried."""
        fields: dict[str, Any] = {}
        if index is not None:
            fields["index"] = index
        if objective is not None:
            fields["objective"] = objective
        return self.call("slo", **fields)

    def flight(self, *, dump: bool = False) -> dict:
        """The server's flight-recorder snapshot; with ``dump`` the
        server also writes a dump file and reports its path."""
        if dump:
            return self.call("flight", dump=True)
        return self.call("flight")

    # -- observability --------------------------------------------------
    def error_report(self) -> dict:
        """The client-side error taxonomy accumulated so far.

        ``timeouts`` / ``resets`` / ``connect_failures`` are transport
        faults, ``shed`` counts explicit ``overloaded`` replies,
        ``degraded`` counts degraded health answers,
        ``server_restarting`` counts refused connects absorbed by the
        restart-grace window, and ``reply_errors`` breaks every error
        reply down by protocol code.
        """
        return {**self._counts,
                "reply_errors": dict(sorted(self._reply_errors.items()))}

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        self._disconnect()

    def __enter__(self) -> "ReachClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class BinaryReachClient:
    """Blocking client for the binary frame protocol (context manager).

    Connects, sends the :data:`~repro.server.binproto.MAGIC_LINE`
    preamble, and expects a ``HELLO`` frame back.  A JSON-only server
    answers the preamble with a normal ``bad_request`` JSON line
    instead; that is surfaced as :class:`ServerReplyError` with code
    ``binary_unsupported`` so callers can fall back to
    :class:`ReachClient` (see ``docs/RUNBOOK.md``).  One request is
    outstanding at a time; node ids must be u32 integers (the binary
    protocol's node model — generated graphs label nodes ``0..n-1``).

    ``index_id`` is the catalog index id stamped into the u16 header
    field of every request frame this client sends (0 = the default
    index); per-call ``index_id`` overrides it.  An id naming no
    catalog entry raises :class:`ServerReplyError` with code
    ``unknown_index`` and the connection keeps serving.

    With ``trace=True`` the client negotiates the TRACE extension
    (:data:`~repro.server.binproto.MAGIC_LINE_TRACE`): every request
    frame carries a client-minted trace id in the widened 32-byte
    header, the server propagates it through its logs and spans, and
    the reply echoes it back (:attr:`last_trace_id` /
    :attr:`last_reply_trace`).  A server without the extension answers
    the unknown preamble like any bad JSON line, which surfaces as
    ``binary_unsupported``.

    >>> with BinaryReachClient(port=port) as client:  # doctest: +SKIP
    ...     client.query_batch([(0, 7), (7, 0)])
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 timeout: float = 30.0, index_id: int = 0,
                 trace: bool = False) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._index_id = index_id
        self._next_id = 0
        self._trace_ids = TraceIds() if trace else None
        #: Trace id minted for the most recent request (traced clients
        #: only); ``None`` before the first call.
        self.last_trace_id: str | None = None
        #: Trace id echoed in the most recent reply frame.
        self.last_reply_trace: str | None = None
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._reader = self._sock.makefile("rb")
        self._sock.sendall(binproto.MAGIC_LINE_TRACE if trace
                           else binproto.MAGIC_LINE)
        head = self._read_exactly(binproto.HEADER_SIZE)
        if head[:1] == b"{":
            # A JSON-only server parsed the preamble as a request and
            # answered with an error line; recover its code/message.
            line = head + self._reader.readline()
            try:
                reply = json.loads(line)
                message = reply.get("message", line.decode(
                    "utf-8", "replace").strip())
            except ValueError:
                message = line.decode("utf-8", "replace").strip()
            self.close()
            raise ServerReplyError(
                "binary_unsupported",
                f"server does not speak the binary protocol: {message}")
        opcode, _, payload = self._decode_frame(head)
        if opcode != binproto.OP_HELLO:
            self.close()
            raise ServerReplyError(
                "binary_unsupported",
                f"expected a HELLO frame, got opcode 0x{opcode:02X}")
        #: The server's negotiated limits
        #: (``version`` / ``max_pairs`` / ``max_frame_bytes`` /
        #: ``flags``).
        self.hello = binproto.decode_hello(payload)
        if trace and not (self.hello.get("flags", 0)
                          & binproto.HELLO_FLAG_TRACE):
            self.close()
            raise ServerReplyError(
                "binary_unsupported",
                "server did not acknowledge the TRACE extension")

    # -- framing --------------------------------------------------------
    def _read_exactly(self, n: int) -> bytes:
        assert self._reader is not None
        data = self._reader.read(n)
        if data is None or len(data) < n:
            raise ConnectionError("server closed the connection")
        return data

    def _decode_frame(self, head: bytes) -> tuple[int, int, bytes]:
        import zlib

        (magic, opcode, reserved, request_id, payload_len,
         crc) = binproto.HEADER.unpack(head)
        if magic != binproto.FRAME_MAGIC or reserved != 0:
            raise ConnectionError(
                f"reply frame desync (magic 0x{magic:02X})")
        payload = self._read_exactly(payload_len) if payload_len \
            else b""
        if zlib.crc32(payload) != crc:
            raise ConnectionError("reply payload CRC mismatch")
        return opcode, request_id, payload

    def _read_frame(self) -> tuple[int, int, bytes]:
        if self._trace_ids is None:
            return self._decode_frame(
                self._read_exactly(binproto.HEADER_SIZE))
        import zlib

        head = self._read_exactly(binproto.TRACE_HEADER_SIZE)
        (magic, opcode, reserved, request_id, payload_len, trace_raw,
         crc) = binproto.TRACE_HEADER.unpack(head)
        if magic != binproto.FRAME_MAGIC or reserved != 0:
            raise ConnectionError(
                f"reply frame desync (magic 0x{magic:02X})")
        payload = self._read_exactly(payload_len) if payload_len \
            else b""
        if zlib.crc32(payload) != crc:
            raise ConnectionError("reply payload CRC mismatch")
        self.last_reply_trace = binproto.decode_trace_field(trace_raw)
        return opcode, request_id, payload

    def _encode_request(self, opcode: int, request_id: int,
                        payload: bytes = b"", *,
                        index: int = 0) -> bytes:
        if self._trace_ids is None:
            return binproto.encode_frame(opcode, request_id, payload,
                                         index=index)
        self.last_trace_id = self._trace_ids.next()
        return binproto.encode_trace_frame(opcode, request_id, payload,
                                           index=index,
                                           trace=self.last_trace_id)

    def _call(self, frame: bytes, request_id: int) -> tuple[int, bytes]:
        assert self._sock is not None
        self._sock.settimeout(self._timeout)
        self._sock.sendall(frame)
        opcode, reply_id, payload = self._read_frame()
        if opcode == binproto.OP_ERROR:
            code = binproto.ERROR_NAMES.get(
                payload[0] if payload else 0, "internal")
            raise ServerReplyError(
                code, payload[1:].decode("utf-8", "replace"))
        if reply_id != request_id:
            raise ConnectionError(
                f"reply id {reply_id} does not match request "
                f"{request_id}")
        return opcode, payload

    # -- verbs ----------------------------------------------------------
    def ping(self) -> str:
        self._next_id += 1
        opcode, _ = self._call(
            self._encode_request(binproto.OP_PING, self._next_id),
            self._next_id & 0xFFFFFFFF)
        if opcode != binproto.OP_PONG:
            raise ConnectionError(
                f"expected PONG, got opcode 0x{opcode:02X}")
        return "pong"

    def query_batch(self, pairs: Iterable[Sequence[int]], *,
                    index_id: int | None = None) -> list[bool]:
        """Batch reachability over packed u32 pairs (one frame).

        ``index_id`` overrides the client's default catalog index id
        for this one request.
        """
        import struct

        self._next_id += 1
        frame = self._encode_request(
            binproto.OP_BATCH, self._next_id,
            binproto.encode_pairs(list(pairs)),
            index=self._index_id if index_id is None else index_id)
        opcode, payload = self._call(frame,
                                     self._next_id & 0xFFFFFFFF)
        if opcode != binproto.OP_ANSWERS or len(payload) < 4:
            raise ConnectionError(
                f"expected ANSWERS, got opcode 0x{opcode:02X}")
        count = struct.unpack_from("<I", payload)[0]
        return binproto.unpack_bitmap(count, payload[4:])

    def query(self, u: int, v: int, *,
              index_id: int | None = None) -> bool:
        """One reachability query (a one-pair batch frame)."""
        return self.query_batch([(u, v)], index_id=index_id)[0]

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "BinaryReachClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
