"""Synchronous client for the serving gateway.

:class:`ReachClient` speaks the newline-delimited JSON protocol over a
plain blocking socket — the counterpart the tests, the CLI, and simple
applications use.  One request is outstanding at a time per client;
replies are nevertheless matched by ``id`` (stray replies are stashed),
so the client also works on connections shared with pipelined senders.

>>> with ReachClient(port=port) as client:          # doctest: +SKIP
...     client.query(0, 7)
...     client.query_batch([(0, 7), (7, 0)])
...     client.stats()["batcher"]["flushes"]
"""

from __future__ import annotations

import json
import socket
from typing import Any, Iterable, Sequence

from repro.exceptions import ReproError
from repro.server.protocol import encode_message

__all__ = ["ReachClient", "ServerReplyError"]


class ServerReplyError(ReproError):
    """The server answered with an error reply.

    Attributes
    ----------
    code:
        The protocol error code (e.g. ``overloaded``, ``unknown_node``).
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class ReachClient:
    """Blocking gateway client (context manager).

    Parameters
    ----------
    host / port:
        The gateway's listening address.
    timeout:
        Socket timeout in seconds for connect and each reply.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._reader = self._sock.makefile("rb")
        self._next_id = 0
        self._stash: dict[Any, dict] = {}

    # -- core -----------------------------------------------------------
    def call(self, verb: str, **fields: Any) -> Any:
        """Send one request and block for its reply's result.

        Raises
        ------
        ServerReplyError
            When the server answers with an error reply.
        ConnectionError
            When the connection drops before the reply arrives.
        """
        self._next_id += 1
        request_id = self._next_id
        request = {"id": request_id, "verb": verb, **fields}
        self._sock.sendall(encode_message(request))
        return self._read_reply(request_id)

    def _read_reply(self, request_id: Any) -> Any:
        while True:
            if request_id in self._stash:
                reply = self._stash.pop(request_id)
            else:
                line = self._reader.readline()
                if not line:
                    raise ConnectionError(
                        "server closed the connection")
                reply = json.loads(line)
                if reply.get("id") != request_id:
                    self._stash[reply.get("id")] = reply
                    continue
            if reply.get("ok"):
                return reply.get("result")
            raise ServerReplyError(reply.get("error", "unknown"),
                                   reply.get("message", ""))

    # -- verbs ----------------------------------------------------------
    def ping(self) -> str:
        return self.call("ping")

    def query(self, u: Any, v: Any) -> bool:
        """One reachability query through the gateway."""
        return bool(self.call("query", u=u, v=v))

    def query_batch(self, pairs: Iterable[Sequence[Any]]) -> list[bool]:
        """Batch reachability through the gateway (one request)."""
        payload = [[u, v] for u, v in pairs]
        return [bool(answer)
                for answer in self.call("batch", pairs=payload)]

    def stats(self, reset: bool = False) -> dict:
        """The server's nested stats document (optionally resetting
        the service metrics afterwards)."""
        if reset:
            return self.call("stats", reset=True)
        return self.call("stats")

    def reload(self, *, graph: Any = None, index: Any = None,
               scheme: str | None = None) -> dict:
        """Trigger a hot index swap from a graph or saved-index file."""
        fields: dict[str, Any] = {}
        if graph is not None:
            fields["graph"] = str(graph)
        if index is not None:
            fields["index"] = str(index)
        if scheme is not None:
            fields["scheme"] = scheme
        return self.call("reload", **fields)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ReachClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
