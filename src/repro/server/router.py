"""The worker-fleet front: shared port, shared labels, one supervisor.

:class:`WorkerFleet` scales the gateway past the single-interpreter
ceiling (~42k qps, BENCH_serve.json): the dual-labeling arrays are
immutable after build, so the parent builds **once**, publishes the
index into a shared-memory segment (:mod:`repro.core.shm`), and spawns
``N`` :mod:`repro.server.worker` processes that each attach and serve.

Routing is *accept sharding*: the parent reserves the port with a
bound (never listening) ``SO_REUSEPORT`` socket and every worker
listens on the same address with ``SO_REUSEPORT`` set, so the kernel
distributes incoming connections across the workers.  A userspace
dispatch ring was rejected deliberately — a Python router process
would itself be GIL-bound at roughly the single-server qps ceiling,
capping the fleet at 1× no matter how many workers sit behind it.

Generation-aware hot swap: any worker that receives a ``reload``
forwards it here.  The parent rebuilds (or loads) the new index once,
publishes it as generation ``g+1``, commands every worker to swap,
waits for the acks, unlinks generation ``g``, and only then releases
the requesting worker's reply — so a success reply is never observable
before the whole fleet serves the new index, and each worker's
per-flush service snapshot guarantees no micro-batch ever mixes
generations.  A worker that fails to ack in time is killed and
respawned directly onto the new generation.

Supervision extends the PR-4 :class:`~repro.server.server.Supervisor`
semantics to processes: a dead worker (crash, SIGKILL) is respawned
with capped exponential backoff onto the *current* generation and
rejoins the accept sharding by re-binding the shared port; a worker
that stayed up ``healthy_after`` seconds earns back its restart
budget, while a crash loop exhausts ``max_restarts`` and leaves the
fleet running degraded on the surviving workers.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import random
import secrets
import socket
import threading
import time
from collections import deque
from multiprocessing import connection as mp_connection
from typing import Any

from repro.core.serialize import load_dual_index
from repro.core.shm import (SEGMENT_PREFIX, PublishedIndex,
                            publish_index, sweep_stale_segments)
from repro.exceptions import ReproError
from repro.obs.flight import FlightRecorder
from repro.obs.prometheus import CONTENT_TYPE, merge_expositions
from repro.server import protocol
from repro.server.protocol import ProtocolError
from repro.server.tenancy import (DEFAULT_INDEX_ID, CatalogEntry,
                                  CatalogService, TenantQuota)
from repro.server.worker import worker_main

__all__ = ["FleetError", "WorkerFleet"]


class _TenantPub:
    """Parent-side shared-memory state of one tenant index."""

    __slots__ = ("generation", "published", "segment")

    def __init__(self) -> None:
        #: Per-index generation counter (independent of the default
        #: index's generation).
        self.generation = 0
        self.published: PublishedIndex | None = None
        self.segment: str | None = None


class FleetError(ReproError):
    """The fleet could not start or lost its last worker."""


class _ScrapeJob:
    """One in-flight fleet-wide metrics collection.

    Created by any thread (:meth:`WorkerFleet.scrape`, the HTTP
    endpoint); broadcast and completed on the monitor thread, which
    owns the control pipes.  The caller blocks on ``event`` and takes
    whatever workers answered by the deadline — a hung worker degrades
    the scrape to the survivors instead of wedging it.
    """

    __slots__ = ("token", "expected", "results", "event", "deadline")

    def __init__(self, token: int, deadline: float) -> None:
        self.token = token
        self.expected: set[int] = set()
        self.results: dict[int, str] = {}
        self.event = threading.Event()
        self.deadline = deadline


class _WorkerHandle:
    """Parent-side state of one worker process."""

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.process: multiprocessing.process.BaseProcess | None = None
        self.conn = None
        self.ready = False
        self.started_at = 0.0
        self.consecutive_crashes = 0
        #: Restart budget exhausted — the supervisor gave up on this
        #: slot and the fleet runs degraded on the survivors.
        self.abandoned = False
        # Liveness-probe state: sequence of the outstanding ping (if
        # any), when it was sent, and when the last probe round ran.
        self.ping_seq = 0
        self.ping_sent: float | None = None
        self.last_probe = 0.0

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None


class WorkerFleet:
    """``N`` worker processes serving one index from shared memory.

    Parameters
    ----------
    index:
        A built (serialisable) index — the parent publishes it and
        never serves queries itself.
    scheme:
        Scheme tag reported by the workers (``dual-i`` / ``dual-ii``).
    workers:
        Fleet size.  Near-linear qps scaling requires at least that
        many usable cores; on fewer cores the fleet is capacity-bound
        but still correct.
    host / port:
        The shared listening address (``0`` picks a free port).
    tenants:
        Optional static tenant manifest: dicts with ``name``, an
        optional built ``index`` (published into a per-index
        ``/dev/shm`` segment at start; omitted = registered empty),
        optional ``scheme``, and an optional ``quota`` dict (see
        :class:`~repro.server.tenancy.TenantQuota`).  Further tenants
        can be added at runtime through the ``catalog`` verb — any
        worker forwards mutations here and the parent moves the whole
        fleet together.
    server_options:
        Picklable :class:`~repro.server.server.ServerConfig` keywords
        applied to every worker (``max_batch``, ``policy``, ...).
    service_options:
        :class:`~repro.core.service.QueryService` keywords for the
        attach path.
    max_restarts / base_delay / max_delay / jitter / healthy_after /
    seed:
        Per-worker supervisor knobs, matching
        :class:`~repro.server.server.Supervisor`.
    start_timeout / swap_timeout:
        Seconds to wait for worker readiness at start / for swap acks
        during a reload before the straggler is killed and respawned.
    probe_interval / probe_timeout:
        Liveness probing: every ``probe_interval`` seconds the parent
        pings each worker over its control pipe; a worker silent for
        ``probe_timeout`` seconds is killed and respawned.  This is
        what bounds recovery from a *hung* (not dead) worker — its
        kernel listen queue keeps accepting connections that would
        otherwise black-hole forever.  ``probe_interval=None``
        disables probing.
    metrics_port:
        When set, the parent serves an HTTP ``GET /metrics`` on this
        port (``0`` picks a free one): each request collects every
        live worker's exposition over the control pipes and merges
        them into **one** valid scrape document — the per-worker
        ``worker="<id>"`` labels keep the series distinct, so one
        Prometheus target covers the whole fleet.
    flight_dir:
        When set, the parent's own flight recorder (label ``fleet``,
        supervision events: spawns, deaths, swaps, catalog mutations)
        spills here alongside the workers' rings, and every
        supervisor respawn triggers a dump.
    """

    def __init__(self, index, *, scheme: str = "dual-i",
                 workers: int = 2, host: str = "127.0.0.1",
                 port: int = 0,
                 tenants: list[dict] | None = None,
                 server_options: dict | None = None,
                 service_options: dict | None = None,
                 max_restarts: int | None = 8,
                 base_delay: float = 0.1, max_delay: float = 5.0,
                 jitter: float = 0.25, healthy_after: float = 30.0,
                 seed: int | None = None,
                 start_timeout: float = 60.0,
                 swap_timeout: float = 30.0,
                 probe_interval: float | None = 2.0,
                 probe_timeout: float = 10.0,
                 state: Any = None,
                 metrics_port: int | None = None,
                 flight_dir: Any = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if not hasattr(socket, "SO_REUSEPORT"):  # pragma: no cover
            raise FleetError(
                "the worker fleet needs SO_REUSEPORT accept sharding, "
                "which this platform does not offer")
        self._index = index
        self._scheme = scheme
        self._host = host
        self._requested_port = port
        self._server_options = dict(server_options or {})
        self._service_options = dict(service_options or {})
        self._max_restarts = max_restarts
        self._base_delay = base_delay
        self._max_delay = max_delay
        self._jitter = jitter
        self._healthy_after = healthy_after
        self._rng = random.Random(seed)
        self._start_timeout = start_timeout
        self._swap_timeout = swap_timeout
        self._probe_interval = probe_interval
        self._probe_timeout = probe_timeout
        self._ctx = multiprocessing.get_context("spawn")
        self._handles = [_WorkerHandle(i) for i in range(workers)]
        self._base_name = (f"{SEGMENT_PREFIX}{os.getpid()}-"
                           f"{secrets.token_hex(3)}")
        self._generation = 0
        self._published: PublishedIndex | None = None
        # The parent's catalog registry (no serving backend — the
        # default entry's service stays None): one source of truth for
        # tenant names, numeric ids, schemes, and quotas, shared with
        # the workers via the spawn manifest.
        self._catalog = CatalogService(None, scheme=scheme)
        #: Durable-state subsystem (``serve --state-dir``), or
        #: ``None``.  Only the parent carries it: every fleet-wide
        #: catalog mutation is journaled here *before* workers swap
        #: and the requester is acknowledged; workers themselves
        #: never touch the state dir.
        self._state = state
        #: The default index's durable generation (0 without
        #: ``--state-dir``); workers mirror it so `catalog list` and
        #: reload replies report journal generations fleet-wide.
        self._default_generation = 0
        if state is not None:
            snap = state.entry("default")
            if snap is not None:
                self._default_generation = snap.generation
                self._catalog.default.generation = snap.generation
            if state.recovery_seconds is not None:
                # The parent recovered once for the whole fleet; hand
                # each worker the number so its exposition carries
                # ``reach_recovery_seconds`` like a single server's.
                self._server_options["recovery_seconds"] = \
                    state.recovery_seconds
        self._tenant_pubs: dict[str, _TenantPub] = {}
        #: ``(entry, built index)`` pairs published at :meth:`start`.
        self._startup_tenants: list[tuple[CatalogEntry, Any]] = []
        for spec in (tenants or []):
            quota = (spec["quota"]
                     if isinstance(spec.get("quota"), TenantQuota)
                     else TenantQuota.from_payload(spec.get("quota")))
            entry = self._catalog.create(
                spec["name"], scheme=spec.get("scheme", scheme),
                quota=quota, index_id=spec.get("index_id"))
            if spec.get("generation"):
                # Durable boot: resume the tenant's generation count
                # where the journal left it (also used for segment
                # names, so a restarted fleet never reuses a name a
                # dying worker may still have mapped).
                entry.generation = spec["generation"]
            self._tenant_pubs[entry.name] = _TenantPub()
            self._tenant_pubs[entry.name].generation = \
                entry.generation
            if spec.get("index") is not None:
                self._startup_tenants.append((entry, spec["index"]))
        self._reserve_sock: socket.socket | None = None
        self._port: int | None = None
        self._monitor: threading.Thread | None = None
        self._stopping = threading.Event()
        #: Control messages that arrived while a reload orchestration
        #: was draining its acks; replayed afterwards.
        self._deferred: deque = deque()
        self._lock = threading.Lock()
        # Fleet-wide scrape plumbing: jobs queue in from any thread,
        # the monitor thread broadcasts and completes them.
        self._scrape_tokens = itertools.count(1)
        self._scrape_requests: deque[_ScrapeJob] = deque()
        self._scrape_active: dict[int, _ScrapeJob] = {}
        self._requested_metrics_port = metrics_port
        self._metrics_http = None
        self._metrics_thread: threading.Thread | None = None
        self._flight_dir = flight_dir
        #: Supervision-plane flight recorder (label ``fleet``): spawn,
        #: death, swap, and catalog events; dumps on every respawn.
        self.flight = FlightRecorder(1024, label="fleet")
        #: Total worker restarts performed by the fleet supervisor.
        self.restarts = 0
        #: ``(worker_id, reason, backoff seconds)`` per crash.
        self.crashes: list[tuple[int, str, float]] = []
        #: Successful fleet-wide generation swaps.
        self.swaps = 0

    # -- lifecycle ------------------------------------------------------
    @property
    def port(self) -> int:
        """The shared listening port all workers accept on."""
        if self._port is None:
            raise RuntimeError("fleet is not started")
        return self._port

    @property
    def workers(self) -> int:
        return len(self._handles)

    @property
    def generation(self) -> int:
        """The current index generation (0 at start, +1 per reload)."""
        return self._generation

    @property
    def segment(self) -> str:
        """Shared-memory segment name of the current generation."""
        return f"{self._base_name}-g{self._generation}"

    def pids(self) -> list[int]:
        """Live worker PIDs (chaos tests kill/stop these)."""
        return [handle.pid for handle in self._handles
                if handle.alive and handle.pid is not None]

    def start(self, timeout: float | None = None) -> "WorkerFleet":
        """Publish generation 0, reserve the port, spawn the fleet.

        Blocks until every worker is listening (or raises
        :class:`FleetError` after cleaning up).
        """
        timeout = self._start_timeout if timeout is None else timeout
        # Reap segments leaked by fleets whose parent died abnormally
        # (SIGKILL skips _teardown): owner-pid liveness plus a magic
        # check keep live fleets' segments untouched.
        sweep_stale_segments()
        self._published = publish_index(self._index, name=self.segment)
        try:
            for entry, tenant_index in self._startup_tenants:
                self._publish_tenant(entry, tenant_index)
        except BaseException:
            self._unlink_all()
            raise
        self._startup_tenants.clear()
        # The parent's bound-but-not-listening SO_REUSEPORT socket
        # pins the port for the fleet's whole lifetime: port 0 is
        # resolved here once, restarted workers re-bind the same
        # number, and the kernel only hashes connections across the
        # *listening* sockets, so the placeholder never steals one.
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((self._host, self._requested_port))
        except OSError:
            sock.close()
            self._unlink_all()
            raise
        self._reserve_sock = sock
        self._port = sock.getsockname()[1]
        try:
            for handle in self._handles:
                self._spawn(handle)
            deadline = time.monotonic() + timeout
            while not all(h.ready for h in self._handles):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise FleetError(
                        f"fleet start timed out: workers "
                        f"{[h.worker_id for h in self._handles if not h.ready]} "
                        f"never reported ready")
                for message in self._poll_control(remaining):
                    self._dispatch(message, during_start=True)
        except BaseException:
            self._teardown()
            raise
        self._monitor = threading.Thread(
            target=self._monitor_loop, daemon=True,
            name="repro-fleet-monitor")
        self._monitor.start()
        self.flight.record("fleet_start", workers=self.workers,
                           port=self._port)
        if self._flight_dir is not None:
            # Recorded-before-started: the spiller's immediate first
            # pass must already see fleet_start, or an early kill
            # leaves no file.
            self.flight.start_spiller(str(self._flight_dir))
        if self._requested_metrics_port is not None:
            self._start_metrics_http()
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: stop workers, unlink shared memory."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout)
            self._monitor = None
        self._teardown(timeout)

    def _teardown(self, timeout: float = 10.0) -> None:
        self._stopping.set()
        if self._metrics_http is not None:
            self._metrics_http.shutdown()
            self._metrics_http.server_close()
            self._metrics_http = None
            if self._metrics_thread is not None:
                self._metrics_thread.join(5.0)
                self._metrics_thread = None
        self.flight.record("fleet_stop")
        self.flight.stop_spiller()
        # Release any scrape callers still parked on the monitor.
        with self._lock:
            stuck = list(self._scrape_requests)
            self._scrape_requests.clear()
        stuck.extend(self._scrape_active.values())
        self._scrape_active.clear()
        for job in stuck:
            job.event.set()
        for handle in self._handles:
            if handle.conn is not None:
                try:
                    handle.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.monotonic() + timeout
        for handle in self._handles:
            if handle.process is not None:
                handle.process.join(
                    max(0.1, deadline - time.monotonic()))
                if handle.process.is_alive():
                    handle.process.kill()
                    handle.process.join(5.0)
            if handle.conn is not None:
                try:
                    handle.conn.close()
                except OSError:
                    pass
                handle.conn = None
        self._unlink_all()
        if self._reserve_sock is not None:
            self._reserve_sock.close()
            self._reserve_sock = None

    def _unlink_all(self) -> None:
        """Unlink the default and every tenant's current segment."""
        if self._published is not None:
            self._published.unlink()
            self._published = None
        for pub in self._tenant_pubs.values():
            if pub.published is not None:
                pub.published.unlink()
                pub.published = None
                pub.segment = None

    def _publish_tenant(self, entry: CatalogEntry,
                        index) -> PublishedIndex | None:
        """Budget-check and publish one tenant index generation.

        Returns the *previous* generation's segment — the caller
        unlinks it only after every worker has acked the new one, so
        in-flight attaches never race an unlink.
        """
        self._catalog.check_budget(entry, index)
        pub = self._tenant_pubs[entry.name]
        if pub.published is not None:
            pub.generation += 1
        segment = (f"{self._base_name}-i{entry.index_id}"
                   f"-g{pub.generation}")
        old = pub.published
        pub.published = publish_index(index, name=segment)
        pub.segment = segment
        return old

    def __enter__(self) -> "WorkerFleet":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- worker processes -----------------------------------------------
    def _spawn(self, handle: _WorkerHandle) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        options = dict(self._server_options)
        options["service_options"] = dict(self._service_options)
        options["default_generation"] = self._default_generation
        # Current tenant manifest: a respawned worker attaches every
        # tenant's *current* generation, not the one at fleet start.
        options["tenants"] = [
            {"name": entry.name, "index_id": entry.index_id,
             "scheme": entry.scheme, "quota": entry.quota.as_dict(),
             "generation": entry.generation,
             "segment": self._tenant_pubs[entry.name].segment}
            for entry in self._catalog.entries()
            if entry.name in self._tenant_pubs]
        process = self._ctx.Process(
            target=worker_main,
            args=(handle.worker_id, self.segment, self._scheme,
                  self._host, self._port, options, child_conn),
            daemon=True,
            name=f"repro-worker-{handle.worker_id}")
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        handle.ready = False
        handle.started_at = time.monotonic()
        handle.ping_sent = None
        handle.last_probe = time.monotonic()

    def _handle_for_conn(self, conn) -> _WorkerHandle | None:
        for handle in self._handles:
            if handle.conn is conn:
                return handle
        return None

    def _poll_control(self, timeout: float) -> list[tuple]:
        """One ``connection.wait`` round over worker pipes + sentinels.

        Returns ``("msg", handle, message)`` and ``("died", handle)``
        events; closed pipes surface as deaths once the sentinel
        fires.
        """
        conns = {h.conn: h for h in self._handles
                 if h.conn is not None}
        sentinels = {h.process.sentinel: h for h in self._handles
                     if h.process is not None and h.process.is_alive()}
        waitables = list(conns) + list(sentinels)
        if not waitables:
            time.sleep(min(timeout, 0.05))
            return []
        events: list[tuple] = []
        for obj in mp_connection.wait(waitables, timeout):
            if obj in conns:
                handle = conns[obj]
                try:
                    while handle.conn.poll():
                        events.append(("msg", handle,
                                       handle.conn.recv()))
                except (EOFError, OSError):
                    pass  # the sentinel will report the death
            else:
                events.append(("died", sentinels[obj]))
        return events

    # -- supervision ----------------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._stopping.is_set():
            while self._deferred and not self._stopping.is_set():
                self._dispatch(self._deferred.popleft())
            self._start_scrapes()
            for event in self._poll_control(0.2):
                if self._stopping.is_set():
                    break
                self._dispatch(event)
            self._run_probes()
            self._expire_scrapes()

    def _run_probes(self) -> None:
        """Ping ready workers; kill one that stayed silent too long.

        Timeouts are checked *after* this iteration's pipe drain, so a
        pong that queued while the monitor was busy (a long rebuild
        during a fleet reload) counts before the deadline does — only
        a genuinely unresponsive worker is replaced.
        """
        if self._probe_interval is None:
            return
        now = time.monotonic()
        for handle in self._handles:
            if not (handle.ready and handle.alive
                    and handle.conn is not None):
                continue
            if handle.ping_sent is not None:
                if now - handle.ping_sent > self._probe_timeout:
                    self.crashes.append(
                        (handle.worker_id,
                         "liveness probe timed out", 0.0))
                    handle.ping_sent = None
                    handle.process.kill()
            elif now - handle.last_probe >= self._probe_interval:
                handle.ping_seq += 1
                handle.last_probe = now
                try:
                    handle.conn.send(("ping", handle.ping_seq))
                except (BrokenPipeError, OSError):
                    continue
                handle.ping_sent = now

    def _dispatch(self, event: tuple,
                  during_start: bool = False) -> None:
        kind, handle = event[0], event[1]
        if kind == "died":
            if during_start:
                raise FleetError(
                    f"worker {handle.worker_id} exited during startup")
            self._restart(handle)
            return
        message = event[2]
        verb = message[0]
        if verb == "ready":
            handle.ready = True
        elif verb == "pong":
            handle.ping_sent = None
        elif verb == "reload":
            _, worker_id, token, payload = message
            self._fleet_reload(handle, token, payload)
        elif verb == "catalog":
            _, worker_id, token, payload = message
            self._fleet_catalog(handle, token, payload)
        elif verb == "scrape_result":
            _, worker_id, token, text = message
            job = self._scrape_active.get(token)
            if job is not None:
                job.results[worker_id] = text
                if set(job.results) >= job.expected:
                    self._scrape_active.pop(token, None)
                    job.event.set()
        elif verb in ("attach_failed", "start_failed"):
            # The worker exits right after sending this; the sentinel
            # delivers the restart.  Keep the reason for the crash log.
            self.crashes.append(
                (handle.worker_id, f"{verb}: {message[2]}", 0.0))
            if during_start:
                raise FleetError(
                    f"worker {handle.worker_id} failed to start: "
                    f"{message[2]}")
        # "swap_ok"/"swap_err" outside an orchestration window and
        # "bye" acknowledgements need no action here.

    def _backoff(self, consecutive: int) -> float:
        delay = min(self._base_delay * (2 ** (consecutive - 1)),
                    self._max_delay)
        if self._jitter:
            delay *= 1.0 + self._jitter * (2.0 * self._rng.random() - 1.0)
        return delay

    def _restart(self, handle: _WorkerHandle) -> None:
        """Supervisor action for one dead worker: backoff, respawn
        onto the current generation, rejoin the shared port."""
        if handle.process is not None:
            handle.process.join(0.1)
        uptime = time.monotonic() - handle.started_at
        if uptime >= self._healthy_after:
            handle.consecutive_crashes = 0  # earned a fresh budget
        handle.consecutive_crashes += 1
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:
                pass
            handle.conn = None
        handle.process = None
        handle.ready = False
        self.flight.record("worker_died", worker=handle.worker_id,
                           uptime=round(uptime, 3))
        if self._max_restarts is not None \
                and handle.consecutive_crashes > self._max_restarts:
            handle.abandoned = True
            self.crashes.append(
                (handle.worker_id, "restart budget exhausted", 0.0))
            self.flight.record("worker_abandoned",
                               worker=handle.worker_id)
            self.flight.dump(reason="abandoned")
            if not any(h.alive or not h.abandoned
                       for h in self._handles):
                # Last worker gone: nothing serves the port any more.
                self._stopping.set()
            return
        delay = self._backoff(handle.consecutive_crashes)
        self.crashes.append(
            (handle.worker_id, "worker process died", delay))
        if self._stopping.wait(delay):
            return
        self.restarts += 1
        self._spawn(handle)
        self.flight.record("worker_respawn", worker=handle.worker_id,
                           restarts=self.restarts,
                           backoff=round(delay, 3))
        # A respawn is a fault-window trigger: persist the supervision
        # ring so post-mortems see what led up to the death even if the
        # parent dies next.
        self.flight.dump(reason="respawn")

    # -- generation-aware fleet reload ----------------------------------
    def reload(self, *, graph=None, index=None,
               scheme: str | None = None,
               name: str | None = None) -> dict:
        """Parent-initiated fleet reload (same contract as the verb).

        Goes through a real worker connection on purpose, so the
        public entry point and a client-sent ``reload`` exercise the
        identical forward → rebuild → publish → swap → ack pipeline.
        ``name`` targets a tenant entry, as in the verb.
        """
        from repro.server.client import ReachClient

        with ReachClient(self._host, self.port, timeout=180.0) as client:
            return client.reload(graph=graph, index=index, scheme=scheme,
                                 name=name)

    def _fleet_reload(self, requester: _WorkerHandle, token: int,
                      payload: dict) -> None:
        """Rebuild once, move every worker, then answer the requester.

        Runs on the monitor thread; control messages that arrive while
        the acks drain are deferred, which serialises concurrent
        reload requests (the second rebuilds on top of the first's
        generation — last writer wins, same as the single server).
        """
        try:
            summary = self._rebuild_and_swap(payload)
        except Exception as exc:
            # Catch-all on purpose: this runs on the monitor thread,
            # and an escaped exception (say a KeyError from an unknown
            # scheme name) would kill the fleet's whole control plane,
            # not just this request.
            self._reply_reload(requester, token, False,
                               f"{type(exc).__name__}: {exc}")
        else:
            self._reply_reload(requester, token, True, summary)

    def _reply_reload(self, requester: _WorkerHandle, token: int,
                      ok: bool, doc) -> None:
        if requester.conn is None:
            return  # the requester died mid-reload; nobody to answer
        try:
            requester.conn.send(("reload_result", token, ok, doc))
        except (BrokenPipeError, OSError):
            pass

    @staticmethod
    def _rebuild_index(payload: dict, default_scheme: str):
        """Build or load the payload's index (shared by the default
        reload and the tenant build/load paths)."""
        graph_path = payload.get("graph")
        index_path = payload.get("index")
        if bool(graph_path) == bool(index_path):
            raise ReproError(
                "reload requires exactly one of 'graph' or 'index'")
        scheme = payload.get("scheme", default_scheme)
        if not isinstance(scheme, str):
            raise ReproError("scheme must be a string")

        from repro.core.base import build_index
        from repro.graph.io import read_edge_list

        started = time.perf_counter()
        if index_path:
            new_index = load_dual_index(index_path)
        else:
            new_index = build_index(read_edge_list(graph_path),
                                    scheme=scheme)
        build_seconds = time.perf_counter() - started
        scheme_name = type(new_index).scheme_name or scheme
        return new_index, scheme_name, build_seconds

    def _persist_install(self, name: str, index_id: int, index,
                         scheme_name: str) -> int | None:
        """Journal a new generation before the fleet serves it.

        The fleet twin of the single-server commit ordering: artifact
        first, then the fsynced ``install`` record — only after this
        returns is the segment published, workers swapped, and the
        requester acknowledged.  Returns the durable generation
        (``None`` without ``--state-dir``); failures propagate as
        build failures, so an un-persistable generation never serves.
        """
        if self._state is None:
            return None
        from repro.server.durability import index_label_bytes

        generation = self._state.next_generation(name)
        artifact = self._state.save_index(index, name, generation)
        self._state.record_install(
            name, index_id=index_id, scheme=scheme_name,
            generation=generation,
            label_bytes=index_label_bytes(index), artifact=artifact)
        return generation

    def _rebuild_and_swap(self, payload: dict) -> dict:
        name = payload.get("name")
        if name not in (None, "default"):
            entry = self._catalog.lookup(name)  # unknown_index if not
            return self._tenant_swap(entry, payload)
        new_index, scheme_name, build_seconds = self._rebuild_index(
            payload, self._scheme)
        durable_gen = self._persist_install("default", 0, new_index,
                                            scheme_name)
        if durable_gen is not None:
            self._default_generation = durable_gen
            self._catalog.default.generation = durable_gen

        old_published = self._published
        self._generation += 1
        self._published = publish_index(new_index, name=self.segment)
        self._scheme = scheme_name
        acked = self._broadcast_swap(self.segment, scheme_name, 0)
        if old_published is not None:
            old_published.unlink()
        self.swaps += 1
        self.flight.record("swap", index="default",
                           generation=self._generation,
                           workers=len(acked))
        stats = new_index.stats()
        return {
            "swapped": True,
            "index_name": "default",
            "scheme": scheme_name,
            "source": "index" if payload.get("index") else "graph",
            "nodes": stats.num_nodes,
            "edges": stats.num_edges,
            "build_seconds": build_seconds,
            "phase_seconds": dict(stats.phase_seconds),
            "index_swaps": self.swaps,
            "generation": self._generation,
            "workers": len(acked),
        }

    def _tenant_swap(self, entry: CatalogEntry, payload: dict) -> dict:
        """Rebuild one tenant's index and move the whole fleet to it.

        The per-index mirror of the default reload pipeline: publish
        the tenant's next ``/dev/shm`` generation, command every
        worker to swap *that entry only*, collect acks, then unlink
        the previous generation.  Other tenants' segments and lanes
        are untouched throughout.
        """
        new_index, scheme_name, build_seconds = self._rebuild_index(
            payload, entry.scheme)
        # Admission before the durable commit (publish re-checks, but
        # an over-budget index must never reach the journal).
        self._catalog.check_budget(entry, new_index)
        durable_gen = self._persist_install(
            entry.name, entry.index_id, new_index, scheme_name)
        old_published = self._publish_tenant(entry, new_index)
        entry.scheme = scheme_name
        if durable_gen is not None:
            entry.generation = durable_gen
        pub = self._tenant_pubs[entry.name]
        acked = self._broadcast_swap(pub.segment, scheme_name,
                                     entry.index_id)
        if old_published is not None:
            old_published.unlink()
        self.swaps += 1
        self.flight.record("swap", index=entry.name,
                           generation=pub.generation,
                           workers=len(acked))
        stats = new_index.stats()
        return {
            "swapped": True,
            "index_name": entry.name,
            "scheme": scheme_name,
            "source": "index" if payload.get("index") else "graph",
            "nodes": stats.num_nodes,
            "edges": stats.num_edges,
            "build_seconds": build_seconds,
            "phase_seconds": dict(stats.phase_seconds),
            "index_swaps": self.swaps,
            "generation": pub.generation,
            "workers": len(acked),
        }

    def _broadcast_swap(self, segment: str, scheme_name: str,
                        index_id: int) -> set:
        """Send one swap command fleet-wide and collect the acks;
        stragglers are killed and respawn onto the new generation."""
        targets = [h for h in self._handles
                   if h.conn is not None and h.alive]
        for handle in targets:
            try:
                handle.conn.send(("swap", segment, scheme_name,
                                  index_id))
            except (BrokenPipeError, OSError):
                pass
        acked = self._collect_swap_acks(targets, segment)
        for handle in targets:
            if handle not in acked and handle.alive \
                    and handle.process is not None:
                # Straggler or failed attach: kill it; the supervisor
                # respawns it directly onto the new generation.
                handle.process.kill()
        return acked

    # -- fleet-wide catalog mutations -----------------------------------
    def _fleet_catalog(self, requester: _WorkerHandle, token: int,
                       payload: dict) -> None:
        """Serve one forwarded catalog mutation and answer the
        requester (runs on the monitor thread, like reloads)."""
        try:
            result = self._catalog_mutation(payload)
        except ProtocolError as exc:
            self._reply_catalog(requester, token, False,
                                {"code": exc.code,
                                 "message": exc.message})
        except Exception as exc:
            # Same catch-all rationale as _fleet_reload: the monitor
            # thread must survive any single bad request.
            self._reply_catalog(
                requester, token, False,
                {"code": protocol.ERR_RELOAD_FAILED,
                 "message": f"{type(exc).__name__}: {exc}"})
        else:
            self._reply_catalog(requester, token, True, result)

    def _reply_catalog(self, requester: _WorkerHandle, token: int,
                       ok: bool, doc) -> None:
        if requester.conn is None:
            return
        try:
            requester.conn.send(("catalog_result", token, ok, doc))
        except (BrokenPipeError, OSError):
            pass

    def _catalog_mutation(self, payload: dict) -> dict:
        op = payload.get("op")
        if op == "create":
            quota = TenantQuota.from_payload(payload.get("quota"))
            scheme = payload.get("scheme", self._scheme)
            if not isinstance(scheme, str):
                raise ProtocolError(protocol.ERR_BAD_REQUEST,
                                    "scheme must be a string")
            entry = self._catalog.create(payload.get("name"),
                                         scheme=scheme, quota=quota)
            if self._state is not None:
                try:
                    self._state.record_create(
                        entry.name, index_id=entry.index_id,
                        scheme=scheme, quota=quota.as_dict())
                except (ReproError, OSError):
                    # Undo before replying: a create that never became
                    # durable must not exist anywhere in the fleet.
                    self._catalog.drop(entry.name)
                    raise
            self._tenant_pubs[entry.name] = _TenantPub()
            spec = {"name": entry.name, "index_id": entry.index_id,
                    "scheme": entry.scheme,
                    "quota": entry.quota.as_dict(),
                    "generation": entry.generation, "segment": None}
            # Pipe FIFO ordering makes the requester's create land
            # before its client reply is released below.
            for handle in self._handles:
                if handle.conn is not None and handle.alive:
                    try:
                        handle.conn.send(("catalog_create", spec))
                    except (BrokenPipeError, OSError):
                        pass
            self.flight.record("catalog", op="create",
                               index=entry.name)
            return {"created": entry.name, "index_id": entry.index_id,
                    "quota": entry.quota.as_dict()}
        if op == "drop":
            entry = self._catalog.drop(payload.get("name"))
            if self._state is not None:
                # Journal before the broadcast: once any worker stops
                # answering for this entry the drop must be durable.
                self._state.record_drop(entry.name)
            pub = self._tenant_pubs.pop(entry.name, None)
            for handle in self._handles:
                if handle.conn is not None and handle.alive:
                    try:
                        handle.conn.send(("catalog_drop", entry.name))
                    except (BrokenPipeError, OSError):
                        pass
            # Workers attach at spawn/swap time only, so the segment
            # can be unlinked as soon as the drop is broadcast —
            # already-attached mappings stay valid until process exit.
            if pub is not None and pub.published is not None:
                pub.published.unlink()
            self.flight.record("catalog", op="drop", index=entry.name)
            return {"dropped": entry.name, "index_id": entry.index_id}
        if op == "quota":
            entry = self._catalog.lookup(payload.get("name"))
            quota = TenantQuota.from_payload(payload.get("quota"))
            if self._state is not None \
                    and entry.index_id != DEFAULT_INDEX_ID:
                # Journal before the in-memory apply and the
                # broadcast: an acked quota must survive a restart.
                self._state.record_quota(entry.name, quota.as_dict())
            self._catalog.update_quota(entry, quota)
            self.flight.record("catalog", op="quota",
                               index=entry.name)
            for handle in self._handles:
                if handle.conn is not None and handle.alive:
                    try:
                        handle.conn.send(("catalog_quota", entry.name,
                                          quota.as_dict()))
                    except (BrokenPipeError, OSError):
                        pass
            return {"updated": entry.name, "index_id": entry.index_id,
                    "quota": quota.as_dict()}
        if op in ("build", "load"):
            entry = self._catalog.lookup(payload.get("name"))
            if entry.name not in self._tenant_pubs:
                raise ProtocolError(
                    protocol.ERR_BAD_REQUEST,
                    "use the reload verb for the default index")
            field_name = "graph" if op == "build" else "index"
            source = payload.get(field_name)
            if not isinstance(source, str) or not source:
                raise ProtocolError(
                    protocol.ERR_BAD_REQUEST,
                    f"catalog {op} requires a {field_name!r} path")
            swap_payload: dict[str, Any] = {field_name: source}
            if "scheme" in payload:
                swap_payload["scheme"] = payload["scheme"]
            return self._tenant_swap(entry, swap_payload)
        raise ProtocolError(
            protocol.ERR_BAD_REQUEST,
            f"unknown catalog op {op!r}; supported: create, build, "
            f"load, drop, quota, list")

    def _collect_swap_acks(self, targets, segment: str) -> set:
        """Drain worker pipes until every target acked the new
        generation (or the swap timeout passes).  Non-ack messages are
        deferred for the monitor loop."""
        acked: set[_WorkerHandle] = set()
        deadline = time.monotonic() + self._swap_timeout
        while len(acked) < len(targets):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            for event in self._poll_control(remaining):
                if event[0] != "msg":
                    self._deferred.append(event)
                    continue
                handle, message = event[1], event[2]
                if message[0] == "swap_ok" and message[2] == segment:
                    acked.add(handle)
                elif message[0] == "swap_err" \
                        and message[2] == segment:
                    targets = [t for t in targets if t is not handle]
                    if handle.process is not None:
                        handle.process.kill()
                else:
                    self._deferred.append(event)
        return acked

    # -- fleet-wide metrics scrape --------------------------------------
    def scrape(self, timeout: float = 5.0) -> str:
        """One merged Prometheus exposition covering every live worker.

        Callable from any thread: the job is handed to the monitor
        thread (which owns the control pipes), each ready worker
        answers with its own exposition, and the texts are merged into
        a single valid scrape document — per-worker ``worker="<id>"``
        labels keep every series attributable.  Workers that fail to
        answer within ``timeout`` are simply absent from the result,
        so a hung worker degrades the scrape instead of failing it.
        """
        job = _ScrapeJob(next(self._scrape_tokens),
                         time.monotonic() + timeout)
        if self._stopping.is_set():
            return ""
        with self._lock:
            self._scrape_requests.append(job)
        job.event.wait(timeout + 1.0)
        texts = [job.results[wid] for wid in sorted(job.results)]
        return merge_expositions(texts)

    def _start_scrapes(self) -> None:
        """Broadcast queued scrape jobs (monitor thread only)."""
        while True:
            with self._lock:
                if not self._scrape_requests:
                    return
                job = self._scrape_requests.popleft()
            targets = [h for h in self._handles
                       if h.ready and h.alive and h.conn is not None]
            for handle in targets:
                try:
                    handle.conn.send(("scrape", job.token))
                except (BrokenPipeError, OSError):
                    continue
                job.expected.add(handle.worker_id)
            if not job.expected:
                job.event.set()
            else:
                self._scrape_active[job.token] = job

    def _expire_scrapes(self) -> None:
        """Release scrape callers whose deadline passed with
        stragglers outstanding (monitor thread only)."""
        if not self._scrape_active:
            return
        now = time.monotonic()
        for token, job in list(self._scrape_active.items()):
            if now >= job.deadline:
                self._scrape_active.pop(token, None)
                job.event.set()

    @property
    def metrics_port(self) -> int | None:
        """Bound port of the fleet ``/metrics`` endpoint (``None``
        when not serving one)."""
        if self._metrics_http is None:
            return None
        return self._metrics_http.server_address[1]

    def _start_metrics_http(self) -> None:
        from http.server import (BaseHTTPRequestHandler,
                                 ThreadingHTTPServer)

        fleet = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib name)
                if self.path.split("?", 1)[0] != "/metrics":
                    self.send_error(404, "only /metrics is served")
                    return
                try:
                    body = fleet.scrape().encode("utf-8")
                except Exception as exc:
                    self.send_error(500, f"scrape failed: {exc}")
                    return
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:
                pass  # scrapes are periodic; stderr noise helps nobody

        server = ThreadingHTTPServer(
            (self._host, self._requested_metrics_port), Handler)
        self._metrics_http = server
        self._metrics_thread = threading.Thread(
            target=server.serve_forever, daemon=True,
            name="repro-fleet-metrics")
        self._metrics_thread.start()

    # -- introspection --------------------------------------------------
    def describe(self) -> dict:
        """Operational snapshot for the CLI banner and the tests."""
        return {
            "workers": self.workers,
            "port": self._port,
            "scheme": self._scheme,
            "generation": self._generation,
            "segment": self.segment,
            "restarts": self.restarts,
            "swaps": self.swaps,
            "pids": self.pids(),
            "protocol_version": protocol.PROTOCOL_VERSION,
            "tenants": [
                {"name": entry.name, "index_id": entry.index_id,
                 "scheme": entry.scheme,
                 "generation": self._tenant_pubs[entry.name].generation,
                 "segment": self._tenant_pubs[entry.name].segment}
                for entry in self._catalog.entries()
                if entry.name in self._tenant_pubs],
        }
