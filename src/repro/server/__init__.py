"""``repro.server`` — the asyncio serving gateway (stdlib + numpy).

A TCP front-end over :class:`repro.core.service.QueryService` that turns
the library into a long-running network service:

* **newline-delimited JSON protocol** (:mod:`repro.server.protocol`)
  with the verbs ``ping``, ``query``, ``batch``, ``stats``,
  ``metrics``, ``reload``, ``health``, ``ready``;
* **zero-copy binary protocol** (:mod:`repro.server.binproto`) —
  length-prefixed CRC-checked frames carrying packed ``(u32, u32)``
  pair arrays in and packed answer bitmaps out, negotiated per
  connection by a magic preamble (JSON stays the default), evaluated
  by the buffer-reusing :class:`~repro.core.fastkernel.FastKernel`
  without per-pair Python objects;
* **cross-connection micro-batching**
  (:class:`repro.server.batcher.MicroBatcher`) — queries from every
  open connection coalesce into one buffer and flush on a size or
  deadline trigger, so concurrent clients share single
  ``query_batch()`` kernel invocations;
* **admission control / backpressure** — a bounded in-flight queue
  with a configurable full-queue policy (``block`` or ``shed`` with an
  explicit ``overloaded`` error reply), per-connection request caps,
  and per-request timeouts;
* **hot index swap** — the ``reload`` verb rebuilds (or warm-starts
  from a saved index file) on a background thread and atomically swaps
  the serving :class:`~repro.core.service.QueryService`, so index
  updates never block readers;
* **observability** — everything rides on the :mod:`repro.obs` metrics
  registry (:class:`~repro.server.server.ServerMetrics`): per-request
  trace IDs with per-stage spans (parse → admission → queue_wait →
  kernel → serialize), a size-rotated structured JSON access log
  carrying trace and stage timings, a top-K slow-query log, a
  ``stats`` verb returning server counters, stage percentiles, batcher
  occupancy histograms, and ``ServiceMetrics.as_dict()``, plus a
  ``metrics`` verb and an optional HTTP ``GET /metrics`` endpoint
  (``ServerConfig.metrics_port``) serving the Prometheus text
  exposition — see ``docs/OBSERVABILITY.md``;
* **resilience** — ``health``/``ready`` probe verbs, graceful shutdown
  with a connection-drain deadline, degraded mode (a failed ``reload``
  keeps the last good index and reports ``status: degraded``), a
  :class:`~repro.server.server.Supervisor` restart loop with capped
  exponential backoff, and client-side
  :class:`~repro.server.client.RetryPolicy` (reconnect, idempotent
  retries, per-attempt timeouts, circuit breaker, error taxonomy).
  The fault injectors these are tested against live in
  :mod:`repro.testing`;
* **multi-process worker fleet** —
  :class:`~repro.server.router.WorkerFleet` (``serve --workers N``)
  spawns N worker processes that attach the index from shared memory
  (:mod:`repro.core.shm`) instead of rebuilding, share one port via
  ``SO_REUSEPORT`` accept sharding, hot-swap generations together on
  ``reload``, and sit under a worker-pool supervisor with
  liveness probing (dead *and* hung workers are replaced).

:class:`~repro.server.client.ReachClient` is the synchronous client
used by the CLI and the tests, and :mod:`repro.server.loadgen` is the
open-loop multi-connection load generator behind
``python -m repro.bench serve-load``.
"""

from repro.server.batcher import MicroBatcher, OverloadedError
from repro.server.binproto import BINARY_CODEC, MAGIC_LINE, BinaryCodec
from repro.server.client import (
    BinaryReachClient,
    CircuitOpenError,
    ReachClient,
    RetryPolicy,
    ServerReplyError,
)
from repro.server.loadgen import LoadgenResult, run_loadgen
from repro.server.protocol import ProtocolError
from repro.server.server import (
    ReachServer,
    ServerConfig,
    ServerMetrics,
    ServerThread,
    Supervisor,
)
from repro.server.router import FleetError, WorkerFleet

__all__ = [
    "BINARY_CODEC",
    "BinaryCodec",
    "BinaryReachClient",
    "MAGIC_LINE",
    "CircuitOpenError",
    "FleetError",
    "MicroBatcher",
    "OverloadedError",
    "ProtocolError",
    "ReachClient",
    "ReachServer",
    "RetryPolicy",
    "ServerConfig",
    "ServerMetrics",
    "ServerReplyError",
    "ServerThread",
    "Supervisor",
    "WorkerFleet",
    "LoadgenResult",
    "run_loadgen",
]
