"""The asyncio TCP gateway serving reachability queries.

:class:`ReachServer` listens on a TCP port, speaks the newline-delimited
JSON protocol of :mod:`repro.server.protocol`, and funnels every
``query``/``batch`` request — across *all* open connections — through
one :class:`~repro.server.batcher.MicroBatcher`, so concurrent clients
share single ``QueryService.query_batch()`` kernel invocations.

A connection may switch to the length-prefixed binary framing of
:mod:`repro.server.binproto` by sending its magic preamble as the first
request line; binary ``BATCH`` frames coalesce through a parallel
:class:`_BinaryLane` (same admission knobs, same executor) into
``QueryService.query_frames`` — packed pair bytes straight into the
buffer-reusing :class:`~repro.core.fastkernel.FastKernel`, packed
answer bitmaps straight out, no per-pair Python objects anywhere on
the path.

Concurrency model
-----------------
The event loop owns all protocol state; the numpy kernels run on a
dedicated worker thread (``run_in_executor``), which keeps the loop
responsive while a flush evaluates and lets the GIL-releasing numpy
sections overlap with socket I/O.  Index rebuilds triggered by the
``reload`` verb run on a *separate* single-thread executor, so a
rebuild never sits in front of query flushes; the swap itself is one
attribute assignment, and every flush snapshots the service exactly
once, so each flush is answered consistently by one index generation.

Backpressure
------------
Three nested bounds keep memory finite under overload: the stream
reader's line limit (malformed giants fail fast), the per-connection
in-flight request cap (the handler stops reading new lines — and TCP
therefore stops the client — while a connection has
``max_conn_inflight`` unanswered requests), and the batcher's global
``max_pending`` admission queue with its ``block``/``shed`` policy.

Use :class:`ServerThread` to run a server on a background thread with
its own event loop (tests, benchmarks, the load generator's self-serve
mode); the CLI's ``repro-reach serve`` runs the asyncio loop in the
foreground.
"""

from __future__ import annotations

import asyncio
import json
import random
import sys
import threading
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.service import QueryService
from repro.exceptions import (IndexBudgetExceeded, QueryError,
                              ReproError)
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import RECOVERY_BUCKETS, MetricsRegistry
from repro.obs.phases import PhaseProfiler
from repro.obs.prometheus import CONTENT_TYPE, render
from repro.obs.slo import SloEngine, SloObjective
from repro.obs.tracing import (BatchTicket, SlowQueryLog, SpanRecorder,
                               TraceIds)
from repro.server import binproto, protocol
from repro.server.batcher import MicroBatcher, OverloadedError
from repro.server.protocol import ProtocolError, Request
from repro.server.tenancy import (DEFAULT_INDEX_ID, CatalogEntry,
                                  CatalogService, TenantQuota)

__all__ = ["ReachServer", "ServerConfig", "ServerMetrics",
           "ServerThread", "Supervisor"]

# asyncio.timeout exists from 3.11; wait_for is the 3.10 fallback.
_asyncio_timeout = getattr(asyncio, "timeout", None)


@dataclass
class ServerConfig:
    """Tunables of one :class:`ReachServer`.

    The batching/backpressure knobs mirror the issue's serving design:
    ``max_batch`` pairs or ``max_delay`` seconds trigger a flush;
    ``max_pending``/``policy`` bound the admission queue; the
    per-connection cap and per-request timeout bound each client.
    """

    host: str = "127.0.0.1"
    #: Port to bind; ``0`` picks a free port (see ``ReachServer.port``).
    port: int = 0
    #: Micro-batch flush trigger: buffered pairs.
    max_batch: int = 512
    #: Micro-batch flush trigger: seconds after the first buffered pair.
    max_delay: float = 0.002
    #: Admission bound on in-flight pairs across all connections.
    max_pending: int = 8192
    #: Full-queue policy: ``"block"`` or ``"shed"``.
    policy: str = "block"
    #: Per-request pair cap (``batch`` verb) — ``too_large`` beyond it.
    max_request_pairs: int = 4096
    #: Per-connection cap on unanswered requests; the handler stops
    #: reading (TCP backpressure) while a connection is at the cap.
    max_conn_inflight: int = 64
    #: Seconds a single request may wait for its answer.
    request_timeout: float = 30.0
    #: Stream reader line limit in bytes.
    max_line_bytes: int = 1 << 20
    #: Graceful-shutdown deadline: seconds :meth:`ReachServer.stop`
    #: waits for in-flight requests to finish before force-closing
    #: the remaining connections.
    drain_timeout: float = 5.0
    #: Structured JSON access log: a path, ``"-"`` for stderr, or
    #: ``None`` to disable.
    access_log: str | Path | None = None
    #: Rotate a file-backed access log once it exceeds this many
    #: bytes (the old file moves to ``<path>.1``); ``None`` disables
    #: rotation.
    access_log_max_bytes: int | None = None
    #: Worker threads evaluating query flushes.
    executor_workers: int = 1
    #: Retained for construction compatibility: latency percentiles
    #: now come from fixed-bucket histograms (:mod:`repro.obs`), not a
    #: reservoir, so this knob is accepted but unused.
    latency_reservoir: int = 65536
    #: Bind an HTTP ``GET /metrics`` Prometheus scrape endpoint on
    #: this port (``0`` picks a free port — see
    #: ``ReachServer.metrics_port``); ``None`` disables it.
    metrics_port: int | None = None
    #: Capacity of the slow-query log (top-K slowest requests with
    #: their span breakdowns); ``0`` disables it.
    slow_log_size: int = 32
    #: Record per-stage spans into the ``reach_stage_seconds``
    #: histograms for 1 in this many requests (deterministic tick).
    #: Sampling keeps the hot path cheap at tens of thousands of
    #: requests per second while 1-in-8 of that traffic still gives
    #: percentile estimates thousands of samples per second; the
    #: slow-query log is exempt and considers *every* request, so the
    #: exact tail is never missed.  ``1`` records every request.
    span_sample: int = 8
    #: Keyword arguments for services built by ``reload``.
    service_options: dict = field(default_factory=dict)
    #: Optional hook applied to every service ``reload`` creates —
    #: the fault-injection seam (:mod:`repro.testing.faults` wraps
    #: services in a ``FlakyService`` here); ``None`` is a no-op.
    service_wrapper: Any = None
    #: Bind the listener with ``SO_REUSEPORT`` so several processes
    #: can share one port — the worker fleet's accept-sharding mode
    #: (the kernel distributes incoming connections among the
    #: listening workers; no userspace router sits on the hot path).
    reuse_port: bool = False
    #: Identifies this process in a worker fleet: stamped as a
    #: ``worker="<label>"`` constant label on every Prometheus sample
    #: and surfaced in the ``stats``/``health`` documents, so one
    #: aggregated scrape still attributes queue depth and stage
    #: latency per worker.  ``None`` (standalone server) adds nothing.
    worker_label: str | None = None
    #: Optional async callable ``(payload) -> summary dict`` replacing
    #: the in-process ``reload`` implementation.  A fleet worker
    #: installs a delegate here that forwards the request to the
    #: parent, which rebuilds once, publishes a new shared-memory
    #: generation, and moves every worker together — see
    #: :mod:`repro.server.worker`.
    reload_handler: Any = None
    #: Optional async callable ``(payload) -> result dict`` replacing
    #: the in-process implementation of *mutating* ``catalog`` verbs
    #: (``create``/``build``/``load``/``drop``; ``list`` always
    #: answers locally).  A fleet worker forwards mutations to the
    #: parent, which publishes per-index shared-memory segments and
    #: moves every worker's catalog together.
    catalog_handler: Any = None
    #: Optional :class:`~repro.server.durability.DurableState` giving
    #: the catalog crash-durable semantics (``serve --state-dir``).
    #: Must be recovered before the server starts; every catalog
    #: mutation (create/drop and each install generation) is journaled
    #: + fsynced *before* the client is acknowledged, and
    #: ``ready``/``stats`` report the durability status.  Not
    #: picklable — fleet workers never carry one (the parent owns
    #: durable state and republishes shared-memory segments).
    state: Any = None
    #: Boot recovery latency to export when ``state`` is absent: the
    #: fleet parent recovers once and hands each worker this plain
    #: float, so every worker's exposition still carries
    #: ``reach_recovery_seconds``.  Ignored when ``state`` is set
    #: (the state's own ``recovery_seconds`` wins).
    recovery_seconds: Any = None
    #: Default SLO objective applied to every catalog entry the first
    #: time it serves a request: a ``{"availability", "latency_ms"}``
    #: dict (``serve --slo-availability/--slo-latency-ms``) or
    #: ``None`` — then only entries declared via the ``slo`` verb are
    #: tracked, and with none declared the hot path skips SLO
    #: accounting entirely.
    slo_defaults: Any = None
    #: Directory the crash flight recorder spills to (the CLI passes
    #: ``<state-dir>/flightrec``); ``None`` keeps the ring in-memory
    #: only (the ``flight`` verb still answers).
    flight_dir: str | Path | None = None
    #: Ring capacity of the flight recorder.
    flight_capacity: int = 2048


class ServerMetrics:
    """Gateway-level metrics in ``reach_*`` families.

    Replaces the old ad-hoc counter/reservoir object: every number the
    ``stats`` verb reports now lives in a
    :class:`~repro.obs.metrics.MetricsRegistry`, so the Prometheus
    exposition (``metrics`` verb, HTTP scrape endpoint) and the
    ``stats`` document are two views of the same state.  Request
    latency percentiles come from the fixed-bucket
    ``reach_request_seconds`` histogram (estimates are bucket upper
    bounds — never optimistic) instead of a sorted reservoir, which
    makes ``observe`` O(log buckets) with zero allocation.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.started_at = time.monotonic()
        self._connections = self.registry.counter(
            "reach_connections_total", "TCP connections accepted.")
        self._open = self.registry.gauge(
            "reach_connections_open",
            "TCP connections currently open.")
        self._requests = self.registry.counter(
            "reach_requests_total", "Requests answered, by verb.",
            labels=("verb",))
        self._errors = self.registry.counter(
            "reach_errors_total", "Error replies, by error code.",
            labels=("code",))
        self._swaps = self.registry.counter(
            "reach_index_swaps_total", "Successful hot index swaps.")
        self.degraded = self.registry.gauge(
            "reach_degraded",
            "1 while serving from the last good index after a failed "
            "reload, else 0.")
        self.request_seconds = self.registry.histogram(
            "reach_request_seconds",
            "End-to-end request latency (read to reply queued).")
        #: Verb -> counter child, resolved once; ``labels()`` costs a
        #: tuple build + dict probe per call, too much at 40k req/s.
        self._verb_children: dict[str, Any] = {}
        self._lock = self.registry.lock
        # Event-loop-confined accumulators: ``observe`` is called once
        # per served request, so it does two plain dict/list writes and
        # defers the locked registry updates to ``flush`` — every 256
        # requests, and from every read path (the read paths all run on
        # the event loop, so reads through the verbs stay exact).
        self._pending_verbs: dict[str, int] = {}
        self._pending_latencies: list[float] = []

    # -- event-loop write path -----------------------------------------
    def connection_opened(self) -> None:
        self._connections.inc()
        self._open.inc()

    def connection_closed(self) -> None:
        self._open.dec()

    def observe(self, verb: str, seconds: float,
                code: str | None) -> None:
        verbs = self._pending_verbs
        verbs[verb] = verbs.get(verb, 0) + 1
        latencies = self._pending_latencies
        latencies.append(seconds)
        if code is not None:
            self._errors.labels(code).inc()
        if len(latencies) >= 256:
            self.flush()

    def flush(self) -> None:
        """Move the accumulated per-request observations into the
        registry (one lock acquisition for the whole backlog)."""
        if not self._pending_latencies:
            return
        verbs, self._pending_verbs = self._pending_verbs, {}
        latencies, self._pending_latencies = \
            self._pending_latencies, []
        children = self._verb_children
        for verb in verbs:
            if verb not in children:
                children[verb] = self._requests.labels(verb)
        hist = self.request_seconds
        with self._lock:
            for verb, n in verbs.items():
                children[verb].inc_locked(n)
            for seconds in latencies:
                hist.observe_locked(seconds)

    def swap(self) -> None:
        self._swaps.inc()

    # -- read path ------------------------------------------------------
    @property
    def connections_open(self) -> int:
        return int(self._open.value)

    @property
    def swaps(self) -> int:
        return int(self._swaps.value)

    def as_dict(self) -> dict[str, Any]:
        """The ``stats`` verb's ``server`` block (keys unchanged from
        the pre-registry implementation)."""
        self.flush()
        verb_counts = {values[0]: int(child.value)
                       for values, child in self._requests.series()}
        error_counts = {values[0]: int(child.value)
                        for values, child in self._errors.series()}
        row: dict[str, Any] = {
            "uptime_seconds": time.monotonic() - self.started_at,
            "connections_total": int(self._connections.value),
            "connections_open": self.connections_open,
            "requests_total": sum(verb_counts.values()),
            "errors_total": sum(error_counts.values()),
            "index_swaps": self.swaps,
            "verb_counts": verb_counts,
            "error_counts": error_counts,
        }
        row.update(self.request_seconds.percentiles_ms())
        return row

    def reset(self) -> None:
        """Drain counters and histograms (``metrics`` verb
        ``reset=true``); gauges describe current state and persist."""
        self.flush()
        self.registry.reset()
        self.started_at = time.monotonic()


class _Connection:
    """Per-connection serving state (event-loop-confined)."""

    __slots__ = ("id", "writer", "inflight", "resume", "out",
                 "flush_scheduled", "closed", "codec")

    def __init__(self, conn_id: int,
                 writer: asyncio.StreamWriter) -> None:
        self.id = conn_id
        self.writer = writer
        #: Unanswered requests (fast-path and task-path combined).
        self.inflight = 0
        #: Set on any completion; the read loop waits on it at the cap.
        self.resume = asyncio.Event()
        #: Reply bytes queued for the next coalesced write.
        self.out = bytearray()
        self.flush_scheduled = False
        self.closed = False
        #: Reply encoder — JSON until the binary preamble negotiates
        #: frame mode; every reply goes through ``codec.encode_*``.
        self.codec: Any = protocol.JSON_CODEC


class _FramePayload:
    """A binary ``BATCH`` payload with pair-count admission weight.

    The batcher accounts admission in *pairs* via ``len(entry)``, so
    the packed payload bytes ride inside a wrapper whose length is the
    pair count — one object per request, never per pair."""

    __slots__ = ("data", "pairs")

    def __init__(self, data: bytes, pairs: int) -> None:
        self.data = data
        self.pairs = pairs

    def __len__(self) -> int:
        return self.pairs


class _BinaryLane(MicroBatcher):
    """Micro-batcher lane for binary ``BATCH`` frames.

    Shares every admission/flush mechanism with the JSON
    :class:`MicroBatcher` (same ``max_batch``/``max_delay``/
    ``max_pending``/``policy`` knobs, same waiter-based block policy,
    same isolation rerun) but keeps payloads as packed bytes end to
    end: a flush hands the raw frame payloads to
    ``QueryService.query_frames`` and scatters back per-request
    ``(count, bitmap)`` tuples.  A separate lane — rather than mixing
    frames into the JSON batcher — because the JSON ``_execute`` path
    concatenates Python pair lists, which is exactly the per-pair
    object churn the binary protocol exists to avoid.
    """

    #: Prometheus family prefix (the JSON batcher owns ``reach_batcher``).
    _FAMILY_PREFIX = "reach_binary_lane"

    async def enqueue_when_ready(self, frame: _FramePayload,
                                 ticket: BatchTicket | None = None
                                 ) -> asyncio.Future:
        """Block-policy admission: wait for queue room, then enqueue.

        Like :meth:`submit` but returns the answer future instead of
        awaiting it, so the caller can attach its timeout/completion
        callbacks.  While one connection waits here its frame reads are
        paused — TCP backpressure, mirroring the JSON read loop.
        """
        loop = asyncio.get_running_loop()
        n = len(frame)
        while self._in_flight + n > self.max_pending:
            waiter: asyncio.Future = loop.create_future()
            self._waiters.append(waiter)
            await waiter
            if self._closed:
                raise OverloadedError("batcher is shut down")
        self._in_flight += n
        return self._enqueue(frame, n, loop, ticket)

    async def _execute(self, entries: list, num_pairs: int) -> None:
        frames = [frame.data for frame, _, _ in entries]
        flush_at = time.perf_counter()
        for _, _, ticket in entries:
            if ticket is not None:
                ticket.flush_at = flush_at
        try:
            try:
                bitmaps = await self._run_batch(frames)
            except Exception:
                await self._execute_isolated(entries)
                return
            kernel_done = time.perf_counter()
            for (frame, future, ticket), bitmap in zip(entries, bitmaps):
                if ticket is not None:
                    ticket.kernel_done = kernel_done
                if not future.done():
                    future.set_result((frame.pairs, bitmap))
        finally:
            self._release(num_pairs)

    async def _execute_isolated(self, entries: list) -> None:
        self.isolation_reruns += 1
        for frame, future, ticket in entries:
            if future.done():
                continue
            try:
                bitmaps = await self._run_batch([frame.data])
            except Exception as exc:
                self.flush_failures += 1
                if ticket is not None:
                    ticket.kernel_done = time.perf_counter()
                if not future.done():
                    future.set_exception(exc)
            else:
                if ticket is not None:
                    ticket.kernel_done = time.perf_counter()
                if not future.done():
                    future.set_result((frame.pairs, bitmaps[0]))

    def collect(self) -> list[dict]:
        families = super().collect()
        for family in families:
            family["name"] = family["name"].replace(
                "reach_batcher", self._FAMILY_PREFIX, 1)
        return families


class ReachServer:
    """Asyncio TCP gateway over a :class:`QueryService`.

    Parameters
    ----------
    service:
        The initial serving backend.  The server takes ownership: it
        closes this service (and every service created by ``reload``)
        at :meth:`stop`.
    scheme:
        Scheme name used when ``reload`` rebuilds from a graph file
        without an explicit ``scheme`` field.
    config:
        See :class:`ServerConfig`.
    """

    def __init__(self, service: QueryService, *, scheme: str = "dual-i",
                 config: ServerConfig | None = None) -> None:
        self._service = service
        self._scheme = scheme
        self._config = config or ServerConfig()
        self._server: asyncio.AbstractServer | None = None
        self._metrics_server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._batcher: MicroBatcher | None = None
        self._lane: _BinaryLane | None = None
        self._query_executor: ThreadPoolExecutor | None = None
        self._reload_executor: ThreadPoolExecutor | None = None
        self._retired: list[QueryService] = []
        self._conn_counter = 0
        self._connections: set[_Connection] = set()
        self._log_file = None
        self._owns_log_file = False
        self._log_path: Path | None = None
        self._log_bytes = 0
        #: Degradation reason, or ``None`` while healthy.  Set when a
        #: ``reload`` fails (the server keeps answering from the last
        #: good index); cleared by the next successful reload.
        self._degraded: str | None = None
        #: Set at the top of :meth:`stop`; late-accepted connections
        #: (raced past the listener close) are turned away immediately.
        self._stopping = False
        self.stats = ServerMetrics()
        self.stats.degraded.set_function(
            lambda: 1.0 if self._degraded else 0.0)
        #: Mints trace IDs for requests that arrive without one.
        self._trace_ids = TraceIds()
        self._spans = SpanRecorder(self.stats.registry)
        #: Deterministic 1-in-``span_sample`` tick for stage-histogram
        #: recording; starts one short of the period so the first
        #: request is always sampled.
        self._span_sample = max(1, self._config.span_sample)
        self._span_tick = self._span_sample - 1
        #: Build-phase durations of hot reloads, recorded into the
        #: ``reach_build_phase_seconds{phase=...}`` histogram family.
        self._build_phases = PhaseProfiler(self.stats.registry)
        self.slow_log = SlowQueryLog(self._config.slow_log_size)
        #: Named-index catalog; entry 0 ("default") is ``service``.
        self._catalog = CatalogService(service, scheme=scheme)
        self.stats.registry.register_collector(self._catalog.collect)
        #: Per-tenant SLO engine (error budgets, burn-rate alerts).
        slo_defaults = self._config.slo_defaults
        if isinstance(slo_defaults, dict):
            slo_defaults = SloObjective.from_payload(slo_defaults)
        self.slo = SloEngine(defaults=slo_defaults)
        self.stats.registry.register_collector(self.slo.collect)
        #: True while at least one entry is SLO-tracked — the hot
        #: path's one-branch gate (flipped by the engine/``slo`` verb).
        self._slo_on = self.slo.enabled
        #: Crash flight recorder: always on; spills to
        #: ``config.flight_dir`` when set (started in :meth:`start`).
        label = self._config.worker_label or "srv"
        self.flight = FlightRecorder(self._config.flight_capacity,
                                     label=label)
        #: Durable-state subsystem (``--state-dir``), or ``None``.
        self._state = self._config.state
        recovery_seconds = (self._state.recovery_seconds
                            if self._state is not None
                            else self._config.recovery_seconds)
        if recovery_seconds is not None:
            # Boot-time crash recovery just ran (journal replay +
            # artifact restore — in this process, or in the fleet
            # parent that spawned this worker); export how long it
            # took.
            self.stats.registry.histogram(
                "reach_recovery_seconds",
                "Boot-time durable-state recovery latency in seconds",
                buckets=RECOVERY_BUCKETS,
            ).observe(recovery_seconds)

    # -- lifecycle ------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (useful with ``config.port == 0``)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def metrics_port(self) -> int:
        """The bound HTTP scrape port (``config.metrics_port``)."""
        if self._metrics_server is None:
            raise RuntimeError("metrics endpoint is not enabled")
        return self._metrics_server.sockets[0].getsockname()[1]

    @property
    def service(self) -> QueryService:
        """The current serving backend (atomically swapped by reload)."""
        return self._service

    @property
    def catalog(self) -> CatalogService:
        """The named-index catalog (default entry = :attr:`service`)."""
        return self._catalog

    def add_tenant(self, name: str, service: QueryService, *,
                   scheme: str = "dual-i",
                   quota: TenantQuota | None = None,
                   index_id: int | None = None) -> CatalogEntry:
        """Register a tenant index before (or while) serving.

        The programmatic twin of the ``catalog`` verb's
        ``create``+``load`` — used by the CLI's ``--tenant`` flags and
        the fleet worker's startup attach.  The budget check runs
        against the entry's quota, so an oversized index is rejected
        with :exc:`~repro.exceptions.IndexBudgetExceeded` before it
        ever serves.
        """
        entry = self._catalog.create(name, scheme=scheme, quota=quota,
                                     index_id=index_id)
        try:
            label = self._catalog.check_budget(entry, service.index)
        except IndexBudgetExceeded:
            self._catalog.drop(name)
            raise
        self._catalog.install(entry, service, scheme=scheme,
                              label_bytes=label)
        return entry

    async def start(self) -> None:
        """Bind the listening socket and start accepting connections."""
        config = self._config
        self._loop = asyncio.get_running_loop()
        self._query_executor = ThreadPoolExecutor(
            max_workers=config.executor_workers,
            thread_name_prefix="repro-serve")
        self._reload_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-reload")
        self._batcher = MicroBatcher(
            self._run_batch, max_batch=config.max_batch,
            max_delay=config.max_delay, max_pending=config.max_pending,
            policy=config.policy)
        self._lane = _BinaryLane(
            self._run_frames, max_batch=config.max_batch,
            max_delay=config.max_delay, max_pending=config.max_pending,
            policy=config.policy)
        # The batchers keep lock-free event-loop-confined counters;
        # the collectors render them into families at scrape time.
        self.stats.registry.register_collector(self._batcher.collect)
        self.stats.registry.register_collector(self._lane.collect)
        # The default entry serves through the shared lanes; tenant
        # entries get their own lazily (see _entry_batcher).
        default = self._catalog.default
        default.batcher = self._batcher
        default.lane = self._lane
        self._open_access_log()
        self.flight.record("server_start",
                           worker=config.worker_label,
                           host=config.host, port=config.port)
        if config.flight_dir is not None:
            # Keep the flight recorder's current-dump file at most one
            # interval stale on disk, so even SIGKILL leaves the
            # pre-kill window readable.  Recorded-before-started: the
            # spiller's immediate first pass must already see the
            # server_start event, or an early kill leaves no file.
            self.flight.start_spiller(str(config.flight_dir))
        self._server = await asyncio.start_server(
            self._handle_connection, config.host, config.port,
            limit=config.max_line_bytes,
            reuse_port=config.reuse_port or None)
        if config.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics_http, config.host,
                config.metrics_port)

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI foreground mode)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self, *, drain_timeout: float | None = None) -> None:
        """Graceful shutdown: stop accepting, drain, release resources.

        The listener closes first (no new connections), then in-flight
        requests get up to ``drain_timeout`` seconds (default
        ``config.drain_timeout``) to finish and flush their replies;
        whatever is still open afterwards is force-closed so shutdown
        is bounded even with wedged clients.
        """
        if drain_timeout is None:
            drain_timeout = self._config.drain_timeout
        self._stopping = True
        self.flight.record("server_stop",
                           worker=self._config.worker_label)
        self.flight.stop_spiller()
        if self._metrics_server is not None:
            self._metrics_server.close()
        if self._server is not None:
            # close() only — waiting for wait_closed() here would
            # deadlock on interpreters where it blocks until every
            # connection handler exits (3.12.1+), which is exactly
            # what the drain below arranges.
            self._server.close()
        deadline = time.monotonic() + max(0.0, drain_timeout)
        while any(conn.inflight > 0 for conn in self._connections) \
                and time.monotonic() < deadline:
            await asyncio.sleep(0.005)
        for conn in list(self._connections):
            # Deliver any queued reply bytes, then close the socket so
            # the handler's read loop sees EOF and exits.
            self._flush_writes(conn)
            conn.closed = True
            try:
                conn.writer.close()
            except (ConnectionError, OSError):
                pass
        if self._server is not None:
            try:
                await asyncio.wait_for(self._server.wait_closed(),
                                       timeout=1.0)
            except (asyncio.TimeoutError, TimeoutError):
                pass
        if self._batcher is not None:
            await self._batcher.close()
        if self._lane is not None:
            await self._lane.close()
        for entry in self._catalog.entries():
            # Tenant entries own their lanes; the default entry's are
            # the shared ones closed above.
            if entry.batcher is not None \
                    and entry.batcher is not self._batcher:
                await entry.batcher.close()
            if entry.lane is not None and entry.lane is not self._lane:
                await entry.lane.close()
        for executor in (self._query_executor, self._reload_executor):
            if executor is not None:
                executor.shutdown(wait=True)
        closing = {id(self._service): self._service}
        for service in self._retired:
            closing.setdefault(id(service), service)
        for entry in self._catalog.entries():
            if entry.service is not None:
                closing.setdefault(id(entry.service), entry.service)
        for service in closing.values():
            service.close()
        self._retired.clear()
        if self._log_file is not None and self._owns_log_file:
            self._log_file.close()
        self._log_file = None

    # -- the shared kernel hook ----------------------------------------
    async def _run_batch(self, pairs: list) -> list:
        # One snapshot per flush: a hot swap mid-flush never mixes two
        # index generations inside one answer vector.
        service = self._service
        assert self._loop is not None and self._query_executor is not None
        return await self._loop.run_in_executor(
            self._query_executor, service.query_batch, pairs)

    async def _run_frames(self, frames: list) -> list:
        # Same snapshot discipline as _run_batch: one service (and so
        # one FastKernel generation) per binary flush.
        service = self._service
        assert self._loop is not None and self._query_executor is not None
        return await self._loop.run_in_executor(
            self._query_executor, service.query_frames, frames)

    # -- per-tenant lanes ----------------------------------------------
    def _entry_batcher(self, entry: CatalogEntry) -> MicroBatcher:
        """The entry's JSON micro-batcher, materialised on first use.

        Every tenant flushes through its own lanes so one flush never
        mixes two tenants' pairs into one kernel call, and a slow or
        overloaded tenant queue cannot delay another tenant's flushes.
        The run closure snapshots ``entry.service`` per flush — the
        same generation-consistency discipline as :meth:`_run_batch`.
        """
        if entry.batcher is None:
            config = self._config

            async def run(pairs: list, _entry=entry) -> list:
                service = _entry.service
                assert self._loop is not None \
                    and self._query_executor is not None
                return await self._loop.run_in_executor(
                    self._query_executor, service.query_batch, pairs)

            entry.batcher = MicroBatcher(
                run, max_batch=config.max_batch,
                max_delay=config.max_delay,
                max_pending=config.max_pending, policy=config.policy)
        return entry.batcher

    def _entry_lane(self, entry: CatalogEntry) -> "_BinaryLane":
        """The entry's binary lane, materialised on first use."""
        if entry.lane is None:
            config = self._config

            async def run(frames: list, _entry=entry) -> list:
                service = _entry.service
                assert self._loop is not None \
                    and self._query_executor is not None
                return await self._loop.run_in_executor(
                    self._query_executor, service.query_frames, frames)

            entry.lane = _BinaryLane(
                run, max_batch=config.max_batch,
                max_delay=config.max_delay,
                max_pending=config.max_pending, policy=config.policy)
        return entry.lane

    # -- connection handling -------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        if self._stopping:
            writer.close()
            return
        self._conn_counter += 1
        self.stats.connection_opened()
        conn = _Connection(self._conn_counter, writer)
        self._connections.add(conn)
        tasks: set[asyncio.Task] = set()

        def request_done(task: asyncio.Task) -> None:
            tasks.discard(task)
            conn.inflight -= 1
            conn.resume.set()

        served = False
        try:
            while True:
                line = await self._read_line(reader, conn)
                if not line:
                    break
                if line.isspace():
                    continue
                if line in (binproto.MAGIC_LINE,
                            binproto.MAGIC_LINE_TRACE):
                    if served:
                        # Mid-stream renegotiation would race in-flight
                        # replies; reject it and stay in JSON mode.
                        self._finish(
                            conn, None, "hello", 0, time.perf_counter(),
                            None, protocol.ERR_BAD_REQUEST,
                            "binary negotiation is only valid as the "
                            "first request of a connection")
                        continue
                    traced = line == binproto.MAGIC_LINE_TRACE
                    conn.codec = binproto.BINARY_TRACE_CODEC if traced \
                        else binproto.BINARY_CODEC
                    self._send(conn, binproto.encode_hello(
                        self._config.max_request_pairs,
                        self._config.max_line_bytes,
                        binproto.HELLO_FLAG_TRACE if traced else 0))
                    await self._serve_binary(reader, conn,
                                             traced=traced)
                    break
                served = True
                # Per-connection cap: stop reading (TCP backpressure)
                # until at least one outstanding request finishes.
                while conn.inflight >= self._config.max_conn_inflight:
                    conn.resume.clear()
                    await conn.resume.wait()
                if self._fast_serve(line, conn):
                    continue
                conn.inflight += 1
                task = asyncio.ensure_future(self._serve_line(line, conn))
                tasks.add(task)
                task.add_done_callback(request_done)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if tasks:
                await asyncio.gather(*list(tasks),
                                     return_exceptions=True)
            self._flush_writes(conn)
            conn.closed = True  # outstanding fast callbacks stop writing
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass
            self._connections.discard(conn)
            self.stats.connection_closed()

    async def _read_line(self, reader: asyncio.StreamReader,
                         conn: _Connection) -> bytes:
        """One bounded request line; ``b""`` at EOF.

        An oversized line gets a ``too_large`` error reply and is
        *discarded up to its newline* — the connection keeps serving
        subsequent requests instead of being dropped, so one malformed
        giant cannot kill a pipelined client's whole stream.
        """
        discarding = False
        while True:
            try:
                line = await reader.readuntil(b"\n")
            except asyncio.IncompleteReadError as exc:
                # EOF; a non-empty partial is a valid unterminated
                # final request (unless it is giant debris).
                return b"" if discarding else exc.partial
            except ConnectionError:
                return b""
            except asyncio.LimitOverrunError as exc:
                if not discarding:
                    discarding = True
                    self._send(conn, protocol.encode_message(
                        protocol.error_reply(
                            None, protocol.ERR_TOO_LARGE,
                            f"line exceeds "
                            f"{self._config.max_line_bytes} bytes")))
                # readuntil consumed nothing; skim the oversized data
                # in bounded chunks (constant memory) up to its newline.
                if not await reader.read(exc.consumed or 1):
                    return b""
                continue
            if discarding:
                # This chunk is the tail of the giant line, ending at
                # its newline — drop it and resume normal service.
                discarding = False
                continue
            return line

    # -- binary frame mode ----------------------------------------------
    async def _serve_binary(self, reader: asyncio.StreamReader,
                            conn: _Connection, *,
                            traced: bool = False) -> None:
        """Frame-mode read loop (after a successful negotiation).

        Implements the resync contract of :mod:`repro.server.binproto`:
        desync-class problems — bad magic, a length header beyond the
        bounded-read limit, a CRC mismatch — get one ``ERROR`` frame
        and the connection closes (a length-prefixed stream cannot
        rescan for a sentinel); in-sync request errors (including an
        ``index`` id naming no catalog entry) are answered and the
        connection keeps serving.  A frame truncated by disconnection
        just ends the connection.

        With ``traced`` (the negotiated TRACE extension) every frame
        uses the widened :data:`~repro.server.binproto.TRACE_HEADER`
        and carries a trace id that flows into the request ticket and
        back out in the reply frame.
        """
        config = self._config
        header_size = binproto.TRACE_HEADER_SIZE if traced \
            else binproto.HEADER_SIZE
        while True:
            try:
                header = await reader.readexactly(header_size)
            except (asyncio.IncompleteReadError, ConnectionError):
                return  # EOF (possibly mid-header): nothing to answer
            started = time.perf_counter()
            trace: str | None = None
            if traced:
                (magic, opcode, index_id, request_id, payload_len,
                 trace_raw, crc) = binproto.TRACE_HEADER.unpack(header)
                trace = binproto.decode_trace_field(trace_raw)
            else:
                (magic, opcode, index_id, request_id, payload_len,
                 crc) = binproto.HEADER.unpack(header)
            if magic != binproto.FRAME_MAGIC:
                self._finish(conn, request_id, "frame", 0, started,
                             None, protocol.ERR_BAD_REQUEST,
                             "frame desync (bad magic); closing "
                             "connection")
                return
            if payload_len > config.max_line_bytes:
                self._finish(conn, request_id, "frame", 0, started,
                             None, protocol.ERR_TOO_LARGE,
                             f"frame payload of {payload_len} bytes "
                             f"exceeds the {config.max_line_bytes}-"
                             f"byte limit; closing connection")
                return
            try:
                payload = await reader.readexactly(payload_len)
            except (asyncio.IncompleteReadError, ConnectionError):
                return  # truncated frame: the client went away mid-send
            if zlib.crc32(payload) != crc:
                self._finish(conn, request_id, "frame", 0, started,
                             None, protocol.ERR_BAD_REQUEST,
                             "payload CRC mismatch; closing connection")
                return
            while conn.inflight >= config.max_conn_inflight:
                conn.resume.clear()
                await conn.resume.wait()
            await self._dispatch_frame(conn, opcode, request_id,
                                       payload, started, index_id,
                                       trace)

    async def _dispatch_frame(self, conn: _Connection, opcode: int,
                              request_id: int, payload: bytes,
                              started: float,
                              index_id: int = DEFAULT_INDEX_ID,
                              trace: str | None = None) -> None:
        """Serve one validated frame (in-sync errors answer and keep
        the connection; the caller handles desync)."""
        # Traced connections get a ticket even on short paths so the
        # trace id is echoed in the reply and lands in the logs.
        early = BatchTicket(trace, started) if trace is not None \
            else None
        if opcode == binproto.OP_PING:
            self._finish(conn, request_id, "ping", 0, started, "pong",
                         ticket=early)
            return
        if opcode != binproto.OP_BATCH:
            self._finish(conn, request_id, "frame", 0, started, None,
                         protocol.ERR_BAD_REQUEST,
                         f"unknown request opcode 0x{opcode:02X}",
                         ticket=early)
            return
        if len(payload) % 8:
            self._finish(conn, request_id, "batch", 0, started, None,
                         protocol.ERR_BAD_REQUEST,
                         f"BATCH payload of {len(payload)} bytes is "
                         f"not a whole number of (u32, u32) pairs",
                         ticket=early)
            return
        num_pairs = len(payload) >> 3
        if num_pairs > self._config.max_request_pairs:
            self._finish(conn, request_id, "batch", num_pairs, started,
                         None, protocol.ERR_TOO_LARGE,
                         f"batch of {num_pairs} pairs exceeds the "
                         f"per-request cap of "
                         f"{self._config.max_request_pairs}",
                         ticket=early)
            return
        try:
            entry = (self._catalog.default
                     if index_id == DEFAULT_INDEX_ID
                     else self._catalog.resolve_id(index_id))
        except ProtocolError as exc:
            self._finish(conn, request_id, "batch", num_pairs, started,
                         None, exc.code, exc.message, ticket=early)
            return
        if num_pairs == 0:
            self._finish(conn, request_id, "batch", 0, started,
                         (0, b""), ticket=early, entry=entry)
            return
        assert self._lane is not None and self._loop is not None
        ticket = BatchTicket(trace, started)
        ticket.parse_done = time.perf_counter()
        frame = _FramePayload(payload, num_pairs)
        lane = entry.lane if entry.lane is not None \
            else self._entry_lane(entry)
        try:
            entry.admit(num_pairs)
        except OverloadedError as exc:
            self._finish(conn, request_id, "batch", num_pairs, started,
                         None, protocol.ERR_OVERLOADED, str(exc),
                         ticket=ticket, entry=entry)
            return
        try:
            future = lane.try_submit(frame, ticket)
            if future is None:
                # Block policy with a full queue: pausing this
                # connection's frame reads is the backpressure path.
                future = await lane.enqueue_when_ready(frame, ticket)
        except OverloadedError as exc:
            entry.release(num_pairs)
            self._finish(conn, request_id, "batch", num_pairs, started,
                         None, protocol.ERR_OVERLOADED, str(exc),
                         ticket=ticket, entry=entry)
            return
        conn.inflight += 1
        timer = self._loop.call_later(self._config.request_timeout,
                                      self._expire, future)
        future.add_done_callback(
            lambda fut: self._bin_done(fut, conn, request_id,
                                       num_pairs, started, timer,
                                       ticket, entry))

    def _bin_done(self, future: asyncio.Future, conn: _Connection,
                  request_id: int, num_pairs: int, started: float,
                  timer: asyncio.TimerHandle,
                  ticket: BatchTicket | None = None,
                  entry: CatalogEntry | None = None) -> None:
        timer.cancel()
        if entry is not None:
            entry.release(num_pairs)
        exc = future.exception()
        if exc is None:
            self._finish(conn, request_id, "batch", num_pairs, started,
                         future.result(), ticket=ticket, entry=entry)
        else:
            code, message = self._map_error(exc)
            self._finish(conn, request_id, "batch", num_pairs, started,
                         None, code, message, ticket=ticket,
                         entry=entry)
        conn.inflight -= 1
        conn.resume.set()

    def _fast_serve(self, line: bytes, conn: _Connection) -> bool:
        """Hot path for ``query``/``batch``: parse, enqueue, and attach
        a completion callback — all synchronously, with no per-request
        task.  Returns False to defer to the :meth:`_serve_line` task
        path, which re-parses and produces the proper error replies
        (errors are not worth optimising)."""
        started = time.perf_counter()
        try:
            doc = json.loads(line)
            verb = doc.get("verb")
            if verb == "query":
                pairs = protocol.parse_pairs(doc)
            elif verb == "batch":
                pairs = protocol.parse_pairs(
                    doc, max_pairs=self._config.max_request_pairs)
            else:
                return False
            if doc.get("index") is not None:
                # Tenant-indexed requests take the task path: catalog
                # resolution and its error taxonomy stay in one place.
                return False
            request_id = doc.get("id")
            if request_id is not None and not isinstance(
                    request_id, (str, int, float)):
                return False
        except Exception:
            return False
        assert self._batcher is not None and self._loop is not None
        trace = doc.get("trace")
        # None = mint lazily in _finish, only if a log consumes it.
        ticket = BatchTicket(trace if isinstance(trace, str) else None,
                             started)
        ticket.parse_done = time.perf_counter()
        entry = self._catalog.default
        try:
            entry.admit(len(pairs))
        except OverloadedError as exc:
            self._finish(conn, request_id, verb, len(pairs), started,
                         None, protocol.ERR_OVERLOADED, str(exc),
                         ticket=ticket, entry=entry)
            return True
        try:
            future = self._batcher.try_submit(pairs, ticket)
        except OverloadedError as exc:
            entry.release(len(pairs))
            self._finish(conn, request_id, verb, len(pairs), started,
                         None, protocol.ERR_OVERLOADED, str(exc),
                         ticket=ticket, entry=entry)
            return True
        if future is None:  # block policy, queue full: await in a task
            entry.release(len(pairs))  # the task path re-admits
            return False
        conn.inflight += 1
        timer = self._loop.call_later(self._config.request_timeout,
                                      self._expire, future)
        scalar = verb == "query"
        future.add_done_callback(
            lambda fut: self._fast_done(fut, conn, request_id, scalar,
                                        len(pairs), started, timer,
                                        ticket, entry))
        return True

    @staticmethod
    def _expire(future: asyncio.Future) -> None:
        if not future.done():
            future.set_exception(asyncio.TimeoutError())

    def _fast_done(self, future: asyncio.Future, conn: _Connection,
                   request_id: Any, scalar: bool, num_pairs: int,
                   started: float, timer: asyncio.TimerHandle,
                   ticket: BatchTicket | None = None,
                   entry: CatalogEntry | None = None) -> None:
        timer.cancel()
        if entry is not None:
            entry.release(num_pairs)
        verb = "query" if scalar else "batch"
        exc = future.exception()
        if exc is None:
            answers = future.result()
            self._finish(conn, request_id, verb, num_pairs, started,
                         answers[0] if scalar else answers,
                         ticket=ticket, entry=entry)
        else:
            code, message = self._map_error(exc)
            self._finish(conn, request_id, verb, num_pairs, started,
                         None, code, message, ticket=ticket,
                         entry=entry)
        conn.inflight -= 1
        conn.resume.set()

    def _map_error(self, exc: BaseException) -> tuple[str, str]:
        if isinstance(exc, ProtocolError):
            return exc.code, exc.message
        if isinstance(exc, OverloadedError):
            return protocol.ERR_OVERLOADED, str(exc)
        if isinstance(exc, IndexBudgetExceeded):
            return protocol.ERR_RELOAD_FAILED, str(exc)
        if isinstance(exc, QueryError):
            return protocol.ERR_UNKNOWN_NODE, str(exc)
        if isinstance(exc, asyncio.TimeoutError):
            return (protocol.ERR_TIMEOUT,
                    f"request exceeded the "
                    f"{self._config.request_timeout:.3f}s timeout")
        return protocol.ERR_INTERNAL, f"{type(exc).__name__}: {exc}"

    def _finish(self, conn: _Connection, request_id: Any, verb: str,
                num_pairs: int, started: float, result: Any,
                code: str | None = None, message: str = "",
                ticket: BatchTicket | None = None,
                entry: CatalogEntry | None = None) -> None:
        """Account one answered request and queue its reply bytes."""
        finished = time.perf_counter()
        elapsed = finished - started
        self.stats.observe(verb, elapsed, code)
        spans = None
        trace = None
        # The trace id the *client* attached (before any lazy mint):
        # only these are echoed in the reply and become exemplars.
        client_trace = ticket.trace_id if ticket is not None else None
        if self._slo_on and entry is not None:
            self.slo.record(entry.name, code is None, elapsed)
            if self.slo.transitions:
                self._drain_slo_transitions()
        if ticket is not None:
            self._span_tick += 1
            sampled = self._span_tick >= self._span_sample
            slow = elapsed > self.slow_log.floor
            if slow or self._log_file is not None:
                # Untagged requests get their ID only once something
                # will actually record it.
                trace = ticket.trace_id
                if trace is None:
                    trace = ticket.trace_id = self._trace_ids.next()
            if sampled or slow or client_trace is not None \
                    or self._log_file is not None:
                spans = ticket.spans(finished)
            if sampled:
                self._span_tick = 0
                self._spans.record(spans, client_trace)
            elif client_trace is not None:
                self._spans.note_exemplars(spans, client_trace)
            if slow:
                record = {
                    "trace": trace,
                    "ts": round(time.time(), 6),
                    "conn": conn.id,
                    "verb": verb,
                    "pairs": num_pairs,
                    "ms": round(elapsed * 1000.0, 3),
                    "status": code or "ok",
                    "stages_ms": {stage: round(sec * 1000.0, 3)
                                  for stage, sec in spans.items()},
                }
                if entry is not None:
                    record["index"] = entry.name
                self.slow_log.offer(elapsed, record)
            if client_trace is not None or code is not None or slow \
                    or sampled:
                # Flight-recorder policy: traced, errored, slow, or
                # span-sampled requests enter the ring; bulk untraced
                # successes stay off the hot path.
                self.flight.record(
                    "request", verb=verb, conn=conn.id,
                    pairs=num_pairs,
                    ms=round(elapsed * 1000.0, 3),
                    status=code or "ok",
                    trace=trace if trace is not None else client_trace,
                    index=entry.name if entry is not None else None)
        elif code is not None:
            self.flight.record("request", verb=verb, conn=conn.id,
                               pairs=num_pairs,
                               ms=round(elapsed * 1000.0, 3),
                               status=code)
        if self._log_file is not None:
            self._log_access(conn.id, verb, num_pairs, elapsed, code,
                             trace=trace, spans=spans,
                             index=entry.name if entry is not None
                             else None)
        # The codec seam: JSON and binary replies share this one call
        # site (JsonCodec keeps the hand-formatted bool fast paths that
        # used to live inline here; BinaryCodec emits frames).  Only
        # client-traced requests pass a trace — the untraced call
        # shape (and its fast paths) is untouched.
        if code is not None:
            payload = conn.codec.encode_error(request_id, code, message) \
                if client_trace is None else conn.codec.encode_error(
                    request_id, code, message, client_trace)
        else:
            payload = conn.codec.encode_ok(request_id, result) \
                if client_trace is None else conn.codec.encode_ok(
                    request_id, result, client_trace)
        self._send(conn, payload)

    def _drain_slo_transitions(self) -> None:
        """Move queued SLO alert transitions into the access log and
        the flight recorder."""
        while self.slo.transitions:
            event = self.slo.transitions.popleft()
            self.flight.record("slo_alert", **{
                key: event[key] for key in
                ("index", "severity", "active", "burn_long",
                 "burn_short")})
            self._log_event("slo_alert", event)

    def _send(self, conn: _Connection, payload: bytes) -> None:
        """Queue reply bytes; one write per loop iteration coalesces
        every reply a flush completion produced for this connection."""
        if conn.closed:
            return
        conn.out += payload
        if not conn.flush_scheduled:
            conn.flush_scheduled = True
            assert self._loop is not None
            self._loop.call_soon(self._flush_writes, conn)

    def _flush_writes(self, conn: _Connection) -> None:
        conn.flush_scheduled = False
        if conn.closed or not conn.out:
            return
        data = bytes(conn.out)
        del conn.out[:]
        try:
            conn.writer.write(data)
        except (ConnectionError, OSError):
            pass  # client went away; the read loop will notice

    async def _serve_line(self, line: bytes,
                          conn: _Connection) -> None:
        started = time.perf_counter()
        request_id: Any = None
        verb = "?"
        num_pairs = 0
        code: str | None = None
        message = ""
        result: Any = None
        ticket: BatchTicket | None = None
        entry: CatalogEntry | None = None
        try:
            doc = protocol.decode_message(line)
            request_id = doc.get("id") if isinstance(doc.get("id"),
                                                     (str, int, float)) \
                else None
            trace = doc.get("trace")
            ticket = BatchTicket(
                trace if isinstance(trace, str) else None, started)
            request = protocol.parse_request(doc)
            verb = request.verb
            ticket.parse_done = time.perf_counter()
            result, num_pairs, entry = await self._dispatch(request,
                                                            ticket)
        except (ConnectionError, asyncio.CancelledError):
            raise
        except Exception as exc:  # defensive: never kill the connection
            code, message = self._map_error(exc)
        self._finish(conn, request_id, verb, num_pairs, started,
                     result, code, message, ticket=ticket, entry=entry)

    # -- verb dispatch --------------------------------------------------
    async def _dispatch(self, request: Request,
                        ticket: BatchTicket | None = None
                        ) -> tuple[Any, int, "CatalogEntry | None"]:
        assert self._batcher is not None
        verb = request.verb
        if verb == "ping":
            return "pong", 0, None
        if verb == "health":
            return self.health_snapshot(), 0, None
        if verb == "ready":
            return self.ready_snapshot(), 0, None
        if verb == "query":
            pairs = protocol.parse_pairs(request.payload)
            entry = self._catalog.resolve(request.payload.get("index"))
            answers = await self._submit(entry, pairs, ticket)
            return answers[0], 1, entry
        if verb == "batch":
            pairs = protocol.parse_pairs(
                request.payload,
                max_pairs=self._config.max_request_pairs)
            entry = self._catalog.resolve(request.payload.get("index"))
            answers = await self._submit(entry, pairs, ticket)
            return answers, len(pairs), entry
        if verb == "stats":
            return self.stats_snapshot(
                reset=bool(request.payload.get("reset"))), 0, None
        if verb == "metrics":
            return self.metrics_snapshot(
                reset=bool(request.payload.get("reset"))), 0, None
        if verb == "reload":
            return await self._reload(request.payload), 0, None
        if verb == "catalog":
            return await self._catalog_op(request.payload), 0, None
        if verb == "slo":
            return self._slo_op(request.payload), 0, None
        if verb == "flight":
            return self._flight_op(request.payload), 0, None
        raise ProtocolError(protocol.ERR_UNKNOWN_VERB,
                            f"unknown verb {verb!r}")

    def _slo_op(self, payload: dict) -> dict:
        """The ``slo`` verb: declare an objective and/or report.

        With an ``objective`` field, declares it for the entry named
        by ``index`` (default: the default index) before reporting;
        without one, reports only.
        """
        objective = payload.get("objective")
        if objective is not None:
            name = payload.get("index")
            if name is None or name == "default":
                name = self._catalog.default.name
            else:
                # Validate the entry exists (raises unknown_index).
                name = self._catalog.resolve(name).name
            try:
                parsed = SloObjective.from_payload(objective)
            except ReproError as exc:
                raise ProtocolError(protocol.ERR_BAD_REQUEST,
                                    str(exc)) from None
            self.slo.set_objective(name, parsed)
            self._slo_on = True
            self.flight.record("slo_objective", index=name,
                               **parsed.as_dict())
        return self.slo.report()

    def _flight_op(self, payload: dict) -> dict:
        """The ``flight`` verb: snapshot (and optionally dump) the
        flight recorder."""
        doc = {
            "label": self.flight.label,
            "capacity": self.flight.capacity,
            "events": self.flight.snapshot(),
            "dumps": self.flight.dumps,
        }
        if payload.get("dump"):
            doc["dump_path"] = self.flight.dump(reason="verb")
        return doc

    async def _submit(self, entry: CatalogEntry, pairs: list,
                      ticket: BatchTicket | None = None) -> list:
        batcher = entry.batcher if entry.batcher is not None \
            else self._entry_batcher(entry)
        entry.admit(len(pairs))
        try:
            # asyncio.timeout (3.11+) is much cheaper than wait_for,
            # which wraps the coroutine in an extra Task — this sits on
            # the per-request hot path.
            if _asyncio_timeout is None:  # pragma: no cover - py3.10
                return await asyncio.wait_for(
                    batcher.submit(pairs, ticket),
                    self._config.request_timeout)
            async with _asyncio_timeout(self._config.request_timeout):
                return await batcher.submit(pairs, ticket)
        finally:
            entry.release(len(pairs))

    def health_snapshot(self) -> dict:
        """The ``health`` verb's liveness document.

        ``status`` is ``"degraded"`` after a failed reload (the server
        keeps answering from the last good index) and flips back to
        ``"ok"`` on the next successful swap.
        """
        doc = {
            "status": "degraded" if self._degraded else "ok",
            "reason": self._degraded,
            "uptime_seconds": time.monotonic() - self.stats.started_at,
            "index_swaps": self.stats.swaps,
            "connections_open": self.stats.connections_open,
        }
        if self._config.worker_label is not None:
            doc["worker"] = self._config.worker_label
        return doc

    def ready_snapshot(self) -> dict:
        """The ``ready`` verb's readiness document.

        With a durable state dir, readiness additionally requires that
        boot-time recovery completed — the catalog matches the
        journal — so a load balancer never routes to a server still
        replaying its state.
        """
        ready = (self._server is not None and self._batcher is not None
                 and self._service is not None)
        doc = {
            "ready": ready,
            "degraded": self._degraded is not None,
            "scheme": self._scheme,
        }
        if self._state is not None:
            doc["ready"] = ready and self._state.recovered
            doc["durable"] = {
                "recovered": self._state.recovered,
                "seq": self._state.status()["seq"],
                "recovery_seconds": self._state.recovery_seconds,
            }
        return doc

    def stats_snapshot(self, reset: bool = False) -> dict:
        """The ``stats`` verb's nested counter document.

        With ``reset``, the *service* counter window and the slow-query
        log are drained atomically as they are read (an increment
        racing the reset lands in this snapshot or the next window,
        never nowhere); the server/batcher lifetime counters are never
        reset by this verb, matching the original semantics.
        """
        assert self._batcher is not None
        service = self._service
        return {
            "protocol_version": protocol.PROTOCOL_VERSION,
            "scheme": self._scheme,
            "worker": self._config.worker_label,
            "degraded": self._degraded,
            "server": self.stats.as_dict(),
            "stages": self._spans.percentiles_ms(),
            "stage_exemplars": self._spans.exemplars(reset=reset),
            "slow_queries": self.slow_log.snapshot(reset=reset),
            "batcher": self._batcher.stats(),
            "binary_lane": (self._lane.stats()
                            if self._lane is not None else None),
            "catalog": self._catalog.describe(),
            "durability": (self._state.status()
                           if self._state is not None else None),
            "service": {
                "vectorised": service.vectorised,
                **service.metrics.as_dict(reset=reset),
            },
        }

    def metrics_snapshot(self, reset: bool = False) -> dict:
        """The ``metrics`` verb's reply: the Prometheus exposition of
        the gateway and current-service registries.

        With ``reset``, counters and histograms are drained atomically
        per child *as the text is rendered*, so scrape windows never
        lose increments; gauges and the batcher's collector output
        describe live state and persist.
        """
        text = self.metrics_exposition(reset=reset)
        if reset:
            self.stats.started_at = time.monotonic()
            self._service.metrics.started_at = time.monotonic()
            self.slow_log.reset()
        return {"content_type": CONTENT_TYPE, "exposition": text}

    def metrics_exposition(self, reset: bool = False) -> str:
        """Prometheus text for the HTTP endpoint / ``metrics`` verb."""
        self.stats.flush()
        const_labels = None
        if self._config.worker_label is not None:
            const_labels = {"worker": self._config.worker_label}
        return render(self.stats.registry,
                      self._service.metrics.registry, reset=reset,
                      const_labels=const_labels)

    # -- hot index swap -------------------------------------------------
    def install_service(self, new_service: QueryService,
                        scheme: str | None = None) -> QueryService:
        """Atomically swap the serving backend to ``new_service``.

        The single generation-swap primitive: the in-process ``reload``
        and the fleet worker's parent-commanded swap both land here, so
        the bookkeeping (swap counter, degraded flag, parking the old
        service until shutdown) cannot diverge between the two paths.
        Every micro-batch flush snapshots the service it answers from,
        so in-flight flushes finish on the old generation and later
        flushes see the new one — never a mix.  Returns the retired
        service.
        """
        old = self._service
        self._service = new_service
        if scheme is not None:
            self._scheme = scheme
        # The catalog's default entry mirrors the serving backend, so
        # tenant-aware paths (admission accounting, per-tenant metrics,
        # the catalog table) stay in lockstep with the swap.
        self._catalog.install(self._catalog.default, new_service,
                              scheme=self._scheme)
        self._degraded = None
        self.stats.swap()
        # The old service may still be answering an in-progress flush
        # on the worker thread, so closing it here would block; it is
        # parked and closed at stop.
        self._retired.append(old)
        return old

    def install_tenant(self, entry: CatalogEntry,
                       new_service: QueryService, *,
                       scheme: str | None = None,
                       label_bytes: int | None = None
                       ) -> QueryService | None:
        """Hot-swap a tenant entry's serving backend.

        The per-index twin of :meth:`install_service` — used by the
        named ``reload`` path and the fleet worker's parent-commanded
        per-index swap.  The retiring service is parked until shutdown
        (in-flight flushes hold their per-flush snapshot of it).
        """
        old = self._catalog.install(entry, new_service, scheme=scheme,
                                    label_bytes=label_bytes)
        if old is not None:
            self._retired.append(old)
        self.stats.swap()
        return old

    async def drop_tenant(self, name: str) -> CatalogEntry:
        """Drop a named catalog entry and drain its lanes.

        The programmatic twin of the ``catalog drop`` verb — used by
        the fleet worker's parent-commanded drop.
        """
        entry = self._catalog.drop(name)
        await self._retire_entry(entry)
        self.slo.drop(entry.name)
        return entry

    def note_degraded(self, reason: str) -> None:
        """Enter degraded mode (a failed swap keeps the last good
        index serving; ``health`` reports the reason).

        Entering degraded mode is a flight-recorder dump trigger: the
        ring as of the fault lands in ``flight_dir`` for offline
        debugging."""
        entering = self._degraded is None
        self._degraded = reason
        self.flight.record("degraded", reason=reason)
        if entering:
            self.flight.dump(reason="degraded")

    async def _reload(self, payload: dict) -> dict:
        if self._config.reload_handler is not None:
            # Fleet mode: the parent rebuilds once and swaps every
            # worker via install_service; this process only forwards.
            try:
                return await self._config.reload_handler(payload)
            except ProtocolError:
                raise
            except (ReproError, OSError) as exc:
                self.note_degraded(f"{type(exc).__name__}: {exc}")
                raise ProtocolError(protocol.ERR_RELOAD_FAILED,
                                    str(exc)) from None
        # An optional ``name`` field targets a catalog entry; absent
        # (or "default") reloads the default serving backend.  The
        # ``index`` field stays the saved-index *path*, as it always
        # was.
        entry = self._catalog.lookup(payload.get("name"))
        is_default = entry.index_id == DEFAULT_INDEX_ID
        graph_path = payload.get("graph")
        index_path = payload.get("index")
        if bool(graph_path) == bool(index_path):
            raise ProtocolError(
                protocol.ERR_BAD_REQUEST,
                "reload requires exactly one of 'graph' or 'index'")
        scheme = payload.get("scheme",
                             self._scheme if is_default else entry.scheme)
        if not isinstance(scheme, str):
            raise ProtocolError(protocol.ERR_BAD_REQUEST,
                                "scheme must be a string")

        def rebuild():
            from repro.core.base import build_index
            from repro.core.serialize import load_dual_index
            from repro.graph.io import read_edge_list

            started = time.perf_counter()
            if index_path:
                index = load_dual_index(index_path)
            else:
                index = build_index(read_edge_list(graph_path),
                                    scheme=scheme)
            return index, time.perf_counter() - started

        assert self._loop is not None and self._reload_executor is not None
        try:
            index, seconds = await self._loop.run_in_executor(
                self._reload_executor, rebuild)
        except (ReproError, OSError) as exc:
            # Degraded mode: keep serving the last good index and say
            # so — a failed swap must never take the service down.  A
            # failed *tenant* reload degrades only that entry's answer
            # (it keeps its last good index), never the whole server.
            if is_default:
                self.note_degraded(f"{type(exc).__name__}: {exc}")
            raise ProtocolError(protocol.ERR_RELOAD_FAILED,
                                str(exc)) from None
        scheme_name = type(index).scheme_name or scheme
        label: int | None = None
        if not is_default:
            # Admission (budget) runs before the durable commit: an
            # over-budget index must never reach the journal.
            try:
                label = self._catalog.check_budget(entry, index)
            except IndexBudgetExceeded as exc:
                raise ProtocolError(protocol.ERR_RELOAD_FAILED,
                                    str(exc)) from None
        if self._state is not None:
            await self._persist_install(entry, index, scheme_name,
                                        label)
        new_service = QueryService(index,
                                   **self._config.service_options)
        if self._config.service_wrapper is not None:
            new_service = self._config.service_wrapper(new_service)
        if is_default:
            self.install_service(new_service, scheme_name)
        else:
            self.install_tenant(entry, new_service, scheme=scheme_name,
                                label_bytes=label)
        stats = index.stats()
        for phase, phase_secs in stats.phase_seconds.items():
            self._build_phases.record(phase, phase_secs)
        return {
            "swapped": True,
            "index_name": entry.name,
            "generation": entry.generation,
            "scheme": entry.scheme,
            "source": "index" if index_path else "graph",
            "nodes": stats.num_nodes,
            "edges": stats.num_edges,
            "build_seconds": seconds,
            "phase_seconds": dict(stats.phase_seconds),
            "index_swaps": self.stats.swaps,
        }

    async def _persist_install(self, entry: CatalogEntry, index,
                               scheme_name: str,
                               label: int | None) -> None:
        """Make a freshly built generation durable *before* it serves.

        Runs on the reload executor (artifact write + fsync can take
        a while on big indexes): save the new generation's artifact,
        then append+fsync the journal ``install`` record — the commit
        point.  Only after this returns does the in-memory install
        happen and the client get its acknowledgement, so an acked
        swap survives any crash; a crash *before* the journal fsync
        leaves an unreferenced artifact that recovery GCs.
        """
        state = self._state
        name = entry.name
        index_id = entry.index_id

        def persist() -> None:
            from repro.server.durability import index_label_bytes

            generation = state.next_generation(name)
            artifact = state.save_index(index, name, generation)
            state.record_install(
                name, index_id=index_id, scheme=scheme_name,
                generation=generation,
                label_bytes=(label if label is not None
                             else index_label_bytes(index)),
                artifact=artifact)

        assert self._loop is not None \
            and self._reload_executor is not None
        try:
            await self._loop.run_in_executor(self._reload_executor,
                                             persist)
        except (ReproError, OSError) as exc:
            # A generation that cannot be made durable must not serve:
            # the swap is refused and the last good index keeps
            # answering (degraded when it was the default's swap).
            if index_id == DEFAULT_INDEX_ID:
                self._degraded = f"{type(exc).__name__}: {exc}"
            raise ProtocolError(
                protocol.ERR_RELOAD_FAILED,
                f"durable persist failed: {exc}") from None

    # -- catalog verbs --------------------------------------------------
    async def _catalog_op(self, payload: dict) -> Any:
        """Serve one ``catalog`` request (op shapes documented in
        :mod:`repro.server.tenancy`).

        ``list`` always answers from the local catalog; mutations
        (``create``/``build``/``load``/``drop``/``quota``) go through
        the fleet delegate when one is configured, so every worker's
        catalog moves together.
        """
        op = payload.get("op")
        if not isinstance(op, str):
            raise ProtocolError(protocol.ERR_BAD_REQUEST,
                                "catalog requires an 'op' field")
        if op == "list":
            return {"indexes": self._catalog.describe()}
        if op not in ("create", "build", "load", "drop", "quota"):
            raise ProtocolError(
                protocol.ERR_BAD_REQUEST,
                f"unknown catalog op {op!r}; supported: create, build, "
                f"load, drop, quota, list")
        if self._config.catalog_handler is not None:
            try:
                return await self._config.catalog_handler(payload)
            except ProtocolError:
                raise
            except (ReproError, OSError) as exc:
                raise ProtocolError(protocol.ERR_RELOAD_FAILED,
                                    str(exc)) from None
        if op == "create":
            quota = TenantQuota.from_payload(payload.get("quota"))
            scheme = payload.get("scheme", self._scheme)
            if not isinstance(scheme, str):
                raise ProtocolError(protocol.ERR_BAD_REQUEST,
                                    "scheme must be a string")
            entry = self._catalog.create(payload.get("name"),
                                         scheme=scheme, quota=quota)
            if self._state is not None:
                try:
                    self._state.record_create(
                        entry.name, index_id=entry.index_id,
                        scheme=scheme, quota=quota.as_dict())
                except (ReproError, OSError) as exc:
                    # Undo before replying: a create that never became
                    # durable must not exist anywhere.
                    self._catalog.drop(entry.name)
                    raise ProtocolError(
                        protocol.ERR_RELOAD_FAILED,
                        f"durable journal append failed: {exc}"
                    ) from None
            self.flight.record("catalog", op="create",
                               index=entry.name)
            return {"created": entry.name, "index_id": entry.index_id,
                    "quota": entry.quota.as_dict()}
        if op == "quota":
            entry = self._catalog.lookup(payload.get("name"))
            quota = TenantQuota.from_payload(payload.get("quota"))
            if self._state is not None \
                    and entry.index_id != DEFAULT_INDEX_ID:
                # Journal + fsync *before* the in-memory apply, like
                # create: an acked quota change must survive a crash.
                # (The default entry is not a journaled catalog row,
                # so its quota stays runtime-only.)
                try:
                    self._state.record_quota(entry.name,
                                             quota.as_dict())
                except (ReproError, OSError) as exc:
                    raise ProtocolError(
                        protocol.ERR_RELOAD_FAILED,
                        f"durable journal append failed: {exc}"
                    ) from None
            self._catalog.update_quota(entry, quota)
            self.flight.record("catalog", op="quota",
                               index=entry.name)
            return {"updated": entry.name, "index_id": entry.index_id,
                    "quota": quota.as_dict()}
        if op == "drop":
            entry = self._catalog.drop(payload.get("name"))
            if self._state is not None:
                # Journal after the in-memory drop (which did the
                # validation); a journal-append failure here leaves
                # the entry durable, so a restart resurrects it — the
                # error reply tells the operator the drop did not
                # commit.
                try:
                    self._state.record_drop(entry.name)
                except (ReproError, OSError) as exc:
                    await self._retire_entry(entry)
                    raise ProtocolError(
                        protocol.ERR_RELOAD_FAILED,
                        f"durable journal append failed: {exc}"
                    ) from None
            await self._retire_entry(entry)
            self.slo.drop(entry.name)
            self.flight.record("catalog", op="drop", index=entry.name)
            return {"dropped": entry.name, "index_id": entry.index_id}
        # build / load: install an index into an existing named entry
        # (the tenant twin of ``reload``, which owns the machinery).
        entry = self._catalog.lookup(payload.get("name"))
        if entry.index_id == DEFAULT_INDEX_ID:
            raise ProtocolError(
                protocol.ERR_BAD_REQUEST,
                "use the reload verb for the default index")
        field_name = "graph" if op == "build" else "index"
        source = payload.get(field_name)
        if not isinstance(source, str) or not source:
            raise ProtocolError(
                protocol.ERR_BAD_REQUEST,
                f"catalog {op} requires a {field_name!r} path")
        reload_payload: dict[str, Any] = {"name": entry.name,
                                          field_name: source}
        if "scheme" in payload:
            reload_payload["scheme"] = payload["scheme"]
        return await self._reload(reload_payload)

    async def _retire_entry(self, entry: CatalogEntry) -> None:
        """Drain a dropped entry: close its lanes, park its service.

        Closing the lanes flushes everything already enqueued (those
        queries answer from the entry's per-flush service snapshot) and
        wakes blocked waiters with ``overloaded``; requests arriving
        after the drop answer ``unknown_index`` at resolution.
        """
        if entry.batcher is not None \
                and entry.batcher is not self._batcher:
            await entry.batcher.close()
        if entry.lane is not None and entry.lane is not self._lane:
            await entry.lane.close()
        entry.batcher = None
        entry.lane = None
        if entry.service is not None:
            self._retired.append(entry.service)
            entry.service = None

    # -- Prometheus HTTP scrape endpoint --------------------------------
    async def _handle_metrics_http(self, reader: asyncio.StreamReader,
                                   writer: asyncio.StreamWriter
                                   ) -> None:
        """Minimal HTTP/1.0-style handler: ``GET /metrics`` only.

        One request per connection (``Connection: close``), which is
        all a Prometheus scraper needs and keeps the handler tiny —
        the endpoint exists so standard scrape/alerting infrastructure
        works without speaking the JSON protocol.
        """
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=5.0)
            parts = request_line.decode("latin-1").split()
            # Drain the headers (bounded by the reader's default limit).
            while True:
                header = await asyncio.wait_for(reader.readline(),
                                                timeout=5.0)
                if header in (b"\r\n", b"\n", b""):
                    break
            if len(parts) >= 2 and parts[0] == "GET" \
                    and parts[1].split("?", 1)[0] == "/metrics":
                body = self.metrics_exposition().encode("utf-8")
                head = (f"HTTP/1.0 200 OK\r\n"
                        f"Content-Type: {CONTENT_TYPE}\r\n"
                        f"Content-Length: {len(body)}\r\n"
                        f"Connection: close\r\n\r\n")
            else:
                body = b"not found\n"
                head = (f"HTTP/1.0 404 Not Found\r\n"
                        f"Content-Type: text/plain\r\n"
                        f"Content-Length: {len(body)}\r\n"
                        f"Connection: close\r\n\r\n")
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
        except (ConnectionError, OSError, UnicodeDecodeError,
                asyncio.TimeoutError, TimeoutError,
                asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass

    # -- access log -----------------------------------------------------
    def _open_access_log(self) -> None:
        target = self._config.access_log
        if target is None:
            self._log_file = None
        elif target == "-":
            self._log_file = sys.stderr
            self._owns_log_file = False
        else:
            self._log_path = Path(target)
            self._log_file = self._log_path.open("a", encoding="utf-8")
            self._owns_log_file = True
            try:
                self._log_bytes = self._log_path.stat().st_size
            except OSError:
                self._log_bytes = 0

    def _rotate_access_log(self) -> None:
        """Move the full log to ``<path>.1`` and start a fresh file.

        One rotation generation bounds disk use at roughly twice
        ``access_log_max_bytes`` without the bookkeeping of a numbered
        chain; the displaced ``.1`` file is overwritten.
        """
        assert self._log_file is not None and self._log_path is not None
        try:
            self._log_file.close()
            self._log_path.replace(
                self._log_path.with_name(self._log_path.name + ".1"))
            self._log_file = self._log_path.open("a", encoding="utf-8")
            self._log_bytes = 0
        except OSError:
            self._log_file = None  # rotation failed; stop logging

    def _log_event(self, event: str, fields: dict) -> None:
        """One non-request access-log line (SLO alert transitions):
        same sink, same JSON shape, distinguished by an ``event``
        field instead of a ``verb``."""
        if self._log_file is None:
            return
        record: dict[str, Any] = {"ts": round(time.time(), 6),
                                  "event": event}
        record.update({key: value for key, value in fields.items()
                       if key != "ts"})
        try:
            self._log_file.write(
                json.dumps(record, separators=(",", ":")) + "\n")
            self._log_file.flush()
        except (OSError, ValueError):
            self._log_file = None

    def _log_access(self, conn_id: int, verb: str, num_pairs: int,
                    seconds: float, code: str | None,
                    trace: str | None = None,
                    spans: dict[str, float] | None = None,
                    index: str | None = None) -> None:
        if self._log_file is None:
            return
        record: dict[str, Any] = {
            "ts": round(time.time(), 6),
            "conn": conn_id,
            "verb": verb,
            "pairs": num_pairs,
            "ms": round(seconds * 1000.0, 3),
            "status": code or "ok",
        }
        if index is not None:
            record["index"] = index
        if trace is not None:
            record["trace"] = trace
        if spans is not None:
            record["stages_ms"] = {
                stage: round(sec * 1000.0, 3)
                for stage, sec in spans.items()}
        try:
            line = json.dumps(record, separators=(",", ":")) + "\n"
            self._log_file.write(line)
            self._log_file.flush()
        except (OSError, ValueError):
            self._log_file = None  # log target died; keep serving
            return
        max_bytes = self._config.access_log_max_bytes
        if max_bytes is not None and self._owns_log_file:
            self._log_bytes += len(line)
            if self._log_bytes > max_bytes:
                self._rotate_access_log()


class Supervisor:
    """Restart a crashed serving task with capped exponential backoff.

    ``factory`` builds and runs one *generation*: an async callable
    that returns on clean shutdown and raises when the serving task
    crashes.  Each crash is recorded and the factory is re-run after a
    backoff delay that doubles from ``base_delay`` up to ``max_delay``
    (with deterministic ±``jitter`` when a ``seed`` is given).  A
    generation that stays up for ``healthy_after`` seconds resets the
    backoff and the restart budget — so a long-lived server gets a
    fresh allowance for the next incident, while a crash loop exhausts
    ``max_restarts`` and re-raises the final exception.

    ``CancelledError`` always propagates: supervision never swallows a
    deliberate shutdown.
    """

    def __init__(self, factory, *, max_restarts: int | None = 8,
                 base_delay: float = 0.1, max_delay: float = 5.0,
                 jitter: float = 0.25, healthy_after: float = 30.0,
                 seed: int | None = None, on_restart=None) -> None:
        if base_delay <= 0 or max_delay < base_delay:
            raise ValueError(
                "need 0 < base_delay <= max_delay, got "
                f"{base_delay}/{max_delay}")
        self._factory = factory
        self._max_restarts = max_restarts
        self._base_delay = base_delay
        self._max_delay = max_delay
        self._jitter = jitter
        self._healthy_after = healthy_after
        self._on_restart = on_restart
        self._rng = random.Random(seed)
        #: Total restarts performed over the supervisor's lifetime.
        self.restarts = 0
        #: ``(exception repr, backoff seconds)`` per crash, in order.
        self.crashes: list[tuple[str, float]] = []

    def _backoff(self, consecutive: int) -> float:
        delay = min(self._base_delay * (2 ** (consecutive - 1)),
                    self._max_delay)
        if self._jitter:
            delay *= 1.0 + self._jitter * (2.0 * self._rng.random() - 1.0)
        return delay

    async def run(self) -> None:
        """Run generations until one exits cleanly or the budget is
        spent (the last crash's exception is re-raised)."""
        consecutive = 0
        while True:
            started = time.monotonic()
            try:
                await self._factory()
                return
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                if time.monotonic() - started >= self._healthy_after:
                    consecutive = 0  # it ran healthily; fresh budget
                consecutive += 1
                if self._max_restarts is not None \
                        and consecutive > self._max_restarts:
                    raise
                delay = self._backoff(consecutive)
                self.restarts += 1
                self.crashes.append((repr(exc), delay))
                if self._on_restart is not None:
                    self._on_restart(exc, delay, self.restarts)
                await asyncio.sleep(delay)


class ServerThread:
    """Run a :class:`ReachServer` on a dedicated background thread.

    The thread owns its own event loop; :meth:`start` blocks until the
    listening socket is bound (so ``.port`` is valid) and re-raises any
    startup failure.  Used by the tests, the ``serve-load`` benchmark,
    and the load generator's self-serve mode.
    """

    def __init__(self, server: ReachServer) -> None:
        self.server = server
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None

    def start(self, timeout: float = 30.0) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-server")
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("server thread failed to start in time")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as exc:  # surface bind errors to start()
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        try:
            await self._stop_event.wait()
        finally:
            await self.server.stop()

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self, timeout: float = 30.0) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout)
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
