"""Durable service state: journaled catalog persistence + recovery.

Until now the gateway's catalog — which indexes exist, their quotas,
and which generation is live — died with the process; every restart
meant rebuilding tenants from ``--tenant`` flags.  This module gives
``serve --state-dir DIR`` a write-ahead durability contract:

* an **append-only journal** (``journal.log``) of catalog mutations.
  Each record is ``magic | length | crc32`` framing around a JSON
  payload carrying a monotonically increasing ``seq`` and one of three
  ops: ``create`` (name, id, scheme, quota), ``install`` (a new index
  generation became live: generation, label bytes, artifact path) and
  ``drop``.  Appends are flushed and ``fsync``\\ ed before the caller
  acknowledges its client, so an acked mutation survives power loss;
* **checkpoint compaction**: every ``checkpoint_interval`` records the
  whole catalog is folded into ``MANIFEST.json`` — written with the
  same atomic tmp+fsync+rename+sha256 pattern as index files
  (:func:`repro.core.serialize.write_atomic_json`) — and the journal
  is truncated, bounding journal growth and replay time;
* **per-tenant index artifacts** under ``indexes/`` named
  ``<name>-g<generation>.json`` (plain :func:`save_dual_index` files),
  with retention GC keeping the last ``retain_generations`` per tenant
  and removing orphans;
* **recovery** (:meth:`DurableState.recover`): load the manifest,
  replay journal records with ``seq`` beyond it, and restore the
  catalog to its last durable state.  A *torn trailing record* — the
  expected signature of SIGKILL/power-loss mid-append — is silently
  truncated (that mutation was never acked).  Damage anywhere *before*
  the tail means the file itself is corrupt: it is quarantined to
  ``*.corrupt`` and the typed
  :class:`~repro.exceptions.CorruptJournalError` is raised.

Crash atomicity hinges on ordering.  A mutation is **committed** the
instant its journal record is fsynced; artifacts are saved *before*
the journal record that references them, and in-memory catalog
installs happen *after*.  So a crash at any point leaves the durable
catalog in exactly the pre- or post-mutation state: before the fsync
the new artifact is an unreferenced orphan (GC'd on recovery), after
it the mutation is fully visible on restart.

The ``chaos --crash-restart`` soak
(:func:`repro.testing.chaos.run_crash_restart_soak`) SIGKILLs a live
server at randomized points — mid-mutation, mid-checkpoint,
mid-manifest-swap — and asserts exactly this contract.
"""

from __future__ import annotations

import json
import os
import re
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.core.serialize import (content_checksum, load_dual_index,
                                  save_dual_index, write_atomic_json)
from repro.exceptions import (CorruptIndexError, CorruptJournalError,
                              ReproError)

__all__ = [
    "BootCatalog",
    "index_label_bytes",
    "DurableState",
    "EntryState",
    "RecoveryReport",
    "RestoredEntry",
    "restore_catalog",
]

JOURNAL_NAME = "journal.log"
MANIFEST_NAME = "MANIFEST.json"
INDEX_DIR = "indexes"

MANIFEST_FORMAT = "repro-state-manifest"
MANIFEST_VERSION = 1

#: Journal record framing: 2-byte magic, u32 payload length, u32 crc32
#: of the payload, then the UTF-8 JSON payload itself.
RECORD_MAGIC = b"RJ"
_HEADER = struct.Struct("<2sII")

#: Upper bound on one record's payload (catalog metadata is tiny; a
#: larger claimed length can only be corruption).
MAX_RECORD_BYTES = 1 << 24

_ARTIFACT_RE = re.compile(r"^(?P<name>.+)-g(?P<gen>\d+)\.json$")


@dataclass
class EntryState:
    """One catalog entry's durable snapshot (manifest/journal form)."""

    name: str
    index_id: int
    scheme: str
    generation: int = 0
    quota: dict = field(default_factory=dict)
    label_bytes: int = 0
    #: State-dir-relative path of the live generation's saved index,
    #: or ``None`` for a created-but-never-installed entry.
    artifact: str | None = None

    def as_doc(self) -> dict:
        return {
            "name": self.name,
            "index_id": self.index_id,
            "scheme": self.scheme,
            "generation": self.generation,
            "quota": dict(self.quota),
            "label_bytes": self.label_bytes,
            "artifact": self.artifact,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "EntryState":
        return cls(name=doc["name"], index_id=int(doc["index_id"]),
                   scheme=doc["scheme"],
                   generation=int(doc.get("generation", 0)),
                   quota=dict(doc.get("quota") or {}),
                   label_bytes=int(doc.get("label_bytes", 0)),
                   artifact=doc.get("artifact"))


@dataclass
class RecoveryReport:
    """What :meth:`DurableState.recover` found and did."""

    #: Wall seconds spent recovering (manifest + journal replay + GC;
    #: artifact loads done by :func:`restore_catalog` add to
    #: :attr:`DurableState.recovery_seconds` separately).
    seconds: float = 0.0
    entries: int = 0
    checkpoint_seq: int = 0
    replayed_records: int = 0
    #: Bytes of torn trailing journal dropped by truncation (0 on a
    #: clean shutdown).
    truncated_bytes: int = 0
    removed_artifacts: int = 0
    #: Human-readable notes (truncation, orphan GC, quarantines added
    #: later by the artifact-restore pass).
    notes: list = field(default_factory=list)


def _scan_journal(data: bytes):
    """Parse journal bytes into ``(records, good_end, error)``.

    ``good_end`` is the byte offset just past the last intact record.
    ``error`` is ``None`` when everything past ``good_end`` is a torn
    tail (safe to truncate), or a human-readable string when the
    damage is *mid-file* — i.e. verifiably-written data follows it —
    which recovery must treat as corruption.
    """
    records = []
    pos = 0
    n = len(data)
    while pos < n:
        if n - pos < _HEADER.size:
            return records, pos, None  # torn: partial header at EOF
        magic, length, crc = _HEADER.unpack_from(data, pos)
        if magic != RECORD_MAGIC:
            if not any(data[pos:]):
                return records, pos, None  # zero-filled tail
            return records, pos, (
                f"bad record magic {magic!r} at offset {pos}")
        if length > MAX_RECORD_BYTES:
            return records, pos, (
                f"record at offset {pos} claims {length} bytes "
                f"(limit {MAX_RECORD_BYTES})")
        body_start = pos + _HEADER.size
        end = body_start + length
        if end > n:
            return records, pos, None  # torn: truncated payload
        payload = data[body_start:end]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            if end == n:
                # CRC failure on the *final* record: a partially
                # persisted append (e.g. zero-filled sectors), not
                # mid-file damage.
                return records, pos, None
            return records, pos, (
                f"payload CRC mismatch at offset {pos}")
        try:
            doc = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            if end == n:
                return records, pos, None
            return records, pos, (
                f"undecodable record payload at offset {pos}")
        records.append(doc)
        pos = end
    return records, pos, None


def _encode_record(doc: dict) -> bytes:
    payload = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(RECORD_MAGIC, len(payload),
                        zlib.crc32(payload) & 0xFFFFFFFF) + payload


class DurableState:
    """The ``--state-dir`` subsystem: journal, checkpoints, artifacts.

    Thread-safe: the server appends from both its event loop (catalog
    create/drop) and its reload executor (index installs); one lock
    serialises every journal append, checkpoint, and GC.

    Call :meth:`recover` exactly once before serving; :meth:`status`
    feeds the ``stats``/``catalog list`` durability block.
    """

    def __init__(self, state_dir, *, checkpoint_interval: int = 64,
                 retain_generations: int = 2) -> None:
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if retain_generations < 1:
            raise ValueError("retain_generations must be >= 1")
        self.state_dir = Path(state_dir)
        self.checkpoint_interval = int(checkpoint_interval)
        self.retain_generations = int(retain_generations)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        (self.state_dir / INDEX_DIR).mkdir(exist_ok=True)
        self._lock = threading.Lock()
        self._entries: dict[str, EntryState] = {}
        self._seq = 0
        self._checkpoint_seq = 0
        self._records_since_checkpoint = 0
        self._journal = None
        self._checkpoints = 0
        self._appended = 0
        self.recovered = False
        self.recovery_seconds: float | None = None

    # -- paths ----------------------------------------------------------
    @property
    def journal_path(self) -> Path:
        return self.state_dir / JOURNAL_NAME

    @property
    def manifest_path(self) -> Path:
        return self.state_dir / MANIFEST_NAME

    def artifact_path(self, relative: str) -> Path:
        return self.state_dir / relative

    # -- recovery -------------------------------------------------------
    def recover(self) -> RecoveryReport:
        """Rebuild the durable catalog from manifest + journal.

        Raises :class:`CorruptJournalError` after quarantining the
        damaged file when the manifest fails verification or the
        journal is damaged mid-file.  A torn trailing record is
        truncated away silently (noted in the report).
        """
        started = time.monotonic()
        report = RecoveryReport()
        with self._lock:
            self._recover_manifest(report)
            self._recover_journal(report)
            report.entries = len(self._entries)
            removed = self._gc_artifacts_locked(drop_future=True)
            report.removed_artifacts = len(removed)
            if removed:
                report.notes.append(
                    f"removed {len(removed)} orphaned artifact(s)")
            self._journal = open(self.journal_path, "ab")
            self.recovered = True
        report.seconds = time.monotonic() - started
        self.recovery_seconds = report.seconds
        return report

    def _quarantine_file(self, path: Path) -> str:
        """Rename ``path`` out of the way as ``*.corrupt`` and return
        the new name (suffixed with a counter on collision)."""
        target = path.with_name(path.name + ".corrupt")
        n = 1
        while target.exists():
            target = path.with_name(f"{path.name}.corrupt.{n}")
            n += 1
        os.replace(path, target)
        return target.name

    def _recover_manifest(self, report: RecoveryReport) -> None:
        try:
            raw = self.manifest_path.read_bytes()
        except FileNotFoundError:
            return  # fresh state dir (or pre-first-checkpoint crash)
        try:
            doc = json.loads(raw.decode("utf-8"))
            if not isinstance(doc, dict):
                raise ValueError("not a JSON object")
        except (ValueError, UnicodeDecodeError) as exc:
            where = self._quarantine_file(self.manifest_path)
            raise CorruptJournalError(
                f"{self.manifest_path}: not valid JSON ({exc}); "
                f"quarantined to {where}", quarantined=where)
        if doc.get("format") != MANIFEST_FORMAT \
                or doc.get("version") != MANIFEST_VERSION:
            where = self._quarantine_file(self.manifest_path)
            raise CorruptJournalError(
                f"{self.manifest_path}: unrecognised manifest "
                f"format/version; quarantined to {where}",
                quarantined=where)
        if doc.get("checksum") != content_checksum(doc):
            where = self._quarantine_file(self.manifest_path)
            raise CorruptJournalError(
                f"{self.manifest_path}: content checksum mismatch; "
                f"quarantined to {where}", quarantined=where)
        self._checkpoint_seq = self._seq = int(doc.get("seq", 0))
        for entry_doc in doc.get("entries", []):
            entry = EntryState.from_doc(entry_doc)
            self._entries[entry.name] = entry

    def _recover_journal(self, report: RecoveryReport) -> None:
        try:
            data = self.journal_path.read_bytes()
        except FileNotFoundError:
            return
        records, good_end, error = _scan_journal(data)
        if error is not None:
            where = self._quarantine_file(self.journal_path)
            raise CorruptJournalError(
                f"{self.journal_path}: {error} (mid-journal damage, "
                f"not a torn tail); quarantined to {where} — the "
                f"catalog recovers from the last checkpoint on the "
                f"next start", quarantined=where)
        replayed = 0
        last_seq = self._checkpoint_seq
        for doc in records:
            seq = int(doc.get("seq", 0))
            if seq <= self._checkpoint_seq:
                # A checkpoint landed between manifest swap and journal
                # truncation when the process died: already folded in.
                continue
            if seq <= last_seq:
                where = self._quarantine_file(self.journal_path)
                raise CorruptJournalError(
                    f"{self.journal_path}: non-monotonic seq {seq} "
                    f"after {last_seq}; quarantined to {where}",
                    quarantined=where)
            last_seq = seq
            self._apply_locked(doc)
            replayed += 1
        self._seq = max(self._seq, last_seq)
        report.checkpoint_seq = self._checkpoint_seq
        report.replayed_records = replayed
        self._records_since_checkpoint = replayed
        if good_end < len(data):
            torn = len(data) - good_end
            with open(self.journal_path, "ab") as handle:
                handle.truncate(good_end)
                handle.flush()
                os.fsync(handle.fileno())
            report.truncated_bytes = torn
            report.notes.append(
                f"truncated {torn} torn trailing byte(s) — the "
                f"in-flight mutation was never acknowledged")

    def _apply_locked(self, doc: dict) -> None:
        op = doc.get("op")
        name = doc.get("name")
        if op == "create":
            self._entries[name] = EntryState(
                name=name, index_id=int(doc["index_id"]),
                scheme=doc["scheme"],
                quota=dict(doc.get("quota") or {}))
        elif op == "install":
            entry = self._entries.get(name)
            if entry is None:
                # The default entry is installed without an explicit
                # create record.
                entry = EntryState(name=name,
                                   index_id=int(doc["index_id"]),
                                   scheme=doc["scheme"])
                self._entries[name] = entry
            entry.scheme = doc["scheme"]
            entry.generation = int(doc["generation"])
            entry.label_bytes = int(doc.get("label_bytes", 0))
            entry.artifact = doc.get("artifact")
        elif op == "quota":
            entry = self._entries.get(name)
            if entry is not None:
                # A quota record for a since-dropped entry replays as a
                # no-op: the drop is the later, winning mutation.
                entry.quota = dict(doc.get("quota") or {})
        elif op == "drop":
            self._entries.pop(name, None)
        # Unknown ops from a future version replay as no-ops rather
        # than bricking recovery.

    # -- read side ------------------------------------------------------
    def entry(self, name: str) -> EntryState | None:
        with self._lock:
            return self._entries.get(name)

    def entries(self) -> list[EntryState]:
        with self._lock:
            return list(self._entries.values())

    def next_generation(self, name: str) -> int:
        with self._lock:
            entry = self._entries.get(name)
            return (entry.generation + 1) if entry is not None else 1

    # -- mutation records ----------------------------------------------
    def record_create(self, name: str, *, index_id: int, scheme: str,
                      quota: dict | None = None) -> None:
        """Journal a tenant creation (fsynced before returning)."""
        with self._lock:
            self._append_locked({
                "op": "create", "name": name, "index_id": index_id,
                "scheme": scheme, "quota": dict(quota or {})})
            self._entries[name] = EntryState(
                name=name, index_id=index_id, scheme=scheme,
                quota=dict(quota or {}))
            self._maybe_checkpoint_locked()

    def record_install(self, name: str, *, index_id: int, scheme: str,
                       generation: int, label_bytes: int,
                       artifact: str | None) -> None:
        """Journal a new live generation (fsynced before returning).

        This is the commit point of a build/load/reload: callers save
        the artifact first, journal second, and only then install the
        new service in memory and acknowledge their client.
        """
        doc = {"op": "install", "name": name, "index_id": index_id,
               "scheme": scheme, "generation": generation,
               "label_bytes": label_bytes, "artifact": artifact}
        with self._lock:
            self._append_locked(doc)
            self._apply_locked(doc)
            self._maybe_checkpoint_locked()

    def record_quota(self, name: str, quota: dict) -> None:
        """Journal a quota replacement (fsynced before returning).

        Journal-first like every mutation: the gateway only applies
        the new limits in memory after this returns, so an
        acknowledged quota survives a crash-restart.
        """
        doc = {"op": "quota", "name": name, "quota": dict(quota)}
        with self._lock:
            self._append_locked(doc)
            self._apply_locked(doc)
            self._maybe_checkpoint_locked()

    def record_drop(self, name: str) -> None:
        """Journal a tenant drop (fsynced before returning)."""
        with self._lock:
            self._append_locked({"op": "drop", "name": name})
            self._entries.pop(name, None)
            self._maybe_checkpoint_locked()

    def _append_locked(self, doc: dict) -> None:
        if self._journal is None:
            raise CorruptJournalError(
                "DurableState.recover() must run before mutations")
        doc = dict(doc)
        doc["seq"] = self._seq + 1
        self._journal.write(_encode_record(doc))
        self._journal.flush()
        os.fsync(self._journal.fileno())
        self._seq += 1
        self._appended += 1
        self._records_since_checkpoint += 1

    def _maybe_checkpoint_locked(self) -> None:
        # Called by the record_* methods *after* applying the record
        # in memory — the checkpoint must fold in the very mutation
        # that tripped the interval, or truncation would lose it.
        if self._records_since_checkpoint >= self.checkpoint_interval:
            self._checkpoint_locked()

    # -- artifacts ------------------------------------------------------
    def save_index(self, index, name: str, generation: int) -> str:
        """Atomically save ``index`` as ``name``'s ``generation``
        artifact; returns the state-dir-relative path to journal."""
        relative = f"{INDEX_DIR}/{name}-g{generation}.json"
        save_dual_index(index, self.state_dir / relative)
        return relative

    def quarantine_artifact(self, relative: str) -> str:
        """Rename a damaged artifact to ``*.corrupt`` (satellite of
        recovery: load failures must never take the service down)."""
        with self._lock:
            return self._quarantine_file(self.artifact_path(relative))

    def _gc_artifacts_locked(self, *, drop_future: bool) -> list[str]:
        """Remove artifacts no durable entry can ever load again.

        Keeps, per entry, generations in
        ``[generation - retain + 1, generation]`` plus — unless
        ``drop_future`` (recovery, when no install can be in flight) —
        any *newer* generation, which is an in-progress save that has
        not reached its journal commit yet.  ``*.corrupt`` quarantines
        are never touched; stray ``*.tmp`` files from a crashed
        atomic write are swept during recovery.
        """
        index_dir = self.state_dir / INDEX_DIR
        removed = []
        for child in sorted(index_dir.iterdir()):
            if child.name.endswith(".corrupt") \
                    or ".corrupt." in child.name:
                continue
            if child.name.endswith(".tmp"):
                if drop_future:
                    child.unlink(missing_ok=True)
                    removed.append(child.name)
                continue
            match = _ARTIFACT_RE.match(child.name)
            if match is None:
                continue  # not ours; leave it alone
            entry = self._entries.get(match.group("name"))
            gen = int(match.group("gen"))
            keep = False
            if entry is not None:
                floor = entry.generation - self.retain_generations + 1
                keep = gen >= floor and (not drop_future
                                         or gen <= entry.generation)
            if not keep:
                child.unlink(missing_ok=True)
                removed.append(child.name)
        return removed

    # -- checkpointing --------------------------------------------------
    def checkpoint(self) -> None:
        """Fold the catalog into the manifest and truncate the journal.

        Also runs automatically every ``checkpoint_interval`` journal
        appends.  Atomic: the manifest swap is tmp+fsync+rename, and a
        crash between the swap and the journal truncation is harmless
        because replay skips records with ``seq`` at or below the
        manifest's.
        """
        with self._lock:
            self._checkpoint_locked()

    def _checkpoint_locked(self) -> None:
        doc = {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "seq": self._seq,
            "entries": [entry.as_doc()
                        for entry in self._entries.values()],
        }
        doc["checksum"] = content_checksum(doc)
        write_atomic_json(doc, self.manifest_path)
        if self._journal is not None:
            os.ftruncate(self._journal.fileno(), 0)
            os.fsync(self._journal.fileno())
        self._checkpoint_seq = self._seq
        self._records_since_checkpoint = 0
        self._checkpoints += 1
        self._gc_artifacts_locked(drop_future=False)

    # -- introspection --------------------------------------------------
    def status(self) -> dict:
        """The durability block served by ``stats``/``catalog list``."""
        with self._lock:
            try:
                journal_bytes = self.journal_path.stat().st_size
            except OSError:
                journal_bytes = 0
            index_dir = self.state_dir / INDEX_DIR
            artifacts = quarantined = 0
            for root in (self.state_dir, index_dir):
                for child in root.iterdir():
                    if child.is_dir():
                        continue
                    if ".corrupt" in child.name:
                        quarantined += 1
                    elif root is index_dir \
                            and _ARTIFACT_RE.match(child.name):
                        artifacts += 1
            return {
                "state_dir": str(self.state_dir),
                "recovered": self.recovered,
                "recovery_seconds": self.recovery_seconds,
                "seq": self._seq,
                "checkpoint_seq": self._checkpoint_seq,
                "journal_records": self._records_since_checkpoint,
                "journal_bytes": journal_bytes,
                "checkpoint_interval": self.checkpoint_interval,
                "checkpoints": self._checkpoints,
                "appended_records": self._appended,
                "entries": len(self._entries),
                "artifacts": artifacts,
                "quarantined": quarantined,
            }

    def close(self) -> None:
        with self._lock:
            if self._journal is not None:
                self._journal.close()
                self._journal = None


# -- boot-time catalog restore ------------------------------------------

@dataclass
class RestoredEntry:
    """One catalog entry ready to register at server/fleet boot."""

    name: str
    index_id: int
    scheme: str
    generation: int
    quota: dict
    #: The loaded index object, or ``None`` for a registered-but-empty
    #: entry (never installed, or its artifact was quarantined).
    index: Any = None


@dataclass
class BootCatalog:
    """What :func:`restore_catalog` hands the CLI bootstrap."""

    default: RestoredEntry
    tenants: list = field(default_factory=list)
    #: Human-readable boot notes (restored generations, fresh builds).
    notes: list = field(default_factory=list)
    #: Degraded-mode reasons (quarantined artifacts) — surfaced via
    #: ``ReachServer.note_degraded`` and the operator log.
    degraded: list = field(default_factory=list)


def _load_entry_index(state: DurableState, snap: EntryState,
                      boot: BootCatalog):
    """Load one entry's artifact, quarantining corruption
    (satellite contract: a damaged file must never fail startup)."""
    if snap.artifact is None:
        return None
    path = state.artifact_path(snap.artifact)
    try:
        return load_dual_index(path)
    except FileNotFoundError:
        boot.degraded.append(
            f"index {snap.name!r}: artifact {snap.artifact} is "
            f"missing; entry restored empty")
        return None
    except CorruptIndexError as exc:
        where = state.quarantine_artifact(snap.artifact)
        boot.degraded.append(
            f"index {snap.name!r}: corrupt artifact quarantined to "
            f"{INDEX_DIR}/{where} ({exc})")
        return None


def restore_catalog(state: DurableState, *,
                    default_factory: Callable[[], tuple],
                    ) -> BootCatalog:
    """Turn recovered :class:`EntryState` metadata into live indexes.

    ``default_factory`` lazily builds/loads the default index from the
    CLI's graph arguments; it is only invoked when the state dir has
    no durable default generation or that generation's artifact is
    corrupt (rebuild fallback) and must return ``(index, scheme)``.
    A freshly built default is saved + journaled here, so the *next*
    start restores it without the factory.

    Tenant entries with quarantined/missing artifacts come back with
    ``index=None`` — registered but empty (queries answer
    ``unknown_index``-style errors until the operator rebuilds) — and
    a degraded note, never a startup failure.
    """
    started = time.monotonic()
    boot = BootCatalog(default=None)  # type: ignore[arg-type]
    default_snap = None
    tenant_snaps = []
    for snap in sorted(state.entries(), key=lambda s: s.index_id):
        if snap.index_id == 0:
            default_snap = snap
        else:
            tenant_snaps.append(snap)

    default_index = None
    if default_snap is not None:
        default_index = _load_entry_index(state, default_snap, boot)
    if default_index is not None:
        boot.default = RestoredEntry(
            name=default_snap.name, index_id=0,
            scheme=default_snap.scheme,
            generation=default_snap.generation,
            quota=dict(default_snap.quota), index=default_index)
        boot.notes.append(
            f"default index restored at generation "
            f"{default_snap.generation}")
    else:
        # Fresh state dir, or the durable default was quarantined:
        # (re)build from the CLI graph and make it durable now.
        index, scheme = default_factory()
        generation = state.next_generation("default")
        artifact = state.save_index(index, "default", generation)
        label_bytes = index_label_bytes(index)
        state.record_install("default", index_id=0, scheme=scheme,
                             generation=generation,
                             label_bytes=label_bytes,
                             artifact=artifact)
        boot.default = RestoredEntry(
            name="default", index_id=0, scheme=scheme,
            generation=generation, quota={}, index=index)
        boot.notes.append(
            f"default index built fresh as generation {generation}")

    for snap in tenant_snaps:
        index = _load_entry_index(state, snap, boot)
        boot.tenants.append(RestoredEntry(
            name=snap.name, index_id=snap.index_id,
            scheme=snap.scheme, generation=snap.generation,
            quota=dict(snap.quota), index=index))
    if tenant_snaps:
        loaded = sum(1 for t in boot.tenants if t.index is not None)
        boot.notes.append(
            f"restored {len(tenant_snaps)} tenant(s), "
            f"{loaded} with live indexes")
    if state.recovery_seconds is not None:
        state.recovery_seconds += time.monotonic() - started
    return boot


def index_label_bytes(index) -> int:
    """Best-effort label footprint for durable metadata (same measure
    as the catalog's admission accounting; 0 when unavailable)."""
    try:
        return int(index.stats().total_space_bytes)
    except (ReproError, AttributeError, TypeError, ValueError):
        return 0
