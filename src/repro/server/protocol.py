"""Wire protocol of the serving gateway: newline-delimited JSON.

Every message — request or reply — is one JSON object on one line,
UTF-8 encoded, terminated by ``\\n``.  Requests carry a client-chosen
``id`` (echoed verbatim in the reply so pipelined clients can match
responses), a ``verb``, and verb-specific fields:

===========  ========================================  =================
verb         request fields                            result
===========  ========================================  =================
``ping``     —                                         ``"pong"``
``query``    ``u``, ``v``                              ``true``/``false``
``batch``    ``pairs``: ``[[u, v], ...]``              list of booleans
``stats``    optional ``reset``: ``true``              nested stats dict
``metrics``  optional ``reset``: ``true``              Prometheus text
                                                       exposition dict
``reload``   ``graph`` *or* ``index`` path, optional   swap summary dict
             ``scheme``
``health``   —                                         liveness dict with
                                                       ``status`` ``"ok"``
                                                       or ``"degraded"``
``ready``    —                                         readiness dict
``catalog``  ``op``: ``create``/``build``/``load``/    op-specific dict
             ``drop``/``quota``/``list``, plus op      (``list`` returns
             fields (see :mod:`repro.server.tenancy`)  the index table)
``slo``      optional ``index`` plus ``objective``:    SLO report dict
             ``{availability, latency_ms}`` to         (see
             declare; report-only when absent          :mod:`repro.obs.slo`)
``flight``   optional ``dump``: ``true`` to also       flight-recorder
             write a dump file                         snapshot dict
===========  ========================================  =================

``query`` and ``batch`` additionally accept an optional ``index``
field naming the catalog entry (tenant index) to serve from; absent
or ``"default"`` targets the default index, so every pre-catalog
client keeps working unchanged.  ``reload`` targets a named entry via
an optional ``name`` field instead — its ``index`` field was already
the saved-index *path* and keeps that meaning.  An unknown name
answers with the ``unknown_index`` error code.

Any request may carry an optional ``trace`` string: the gateway
propagates it into the access log, the per-stage span histograms, and
the slow-query log (and mints one when absent), so a client-observed
latency can be joined to its server-side stage breakdown.  A reply to
a request that *carried* a trace echoes it back as a top-level
``trace`` field; untraced requests get the unchanged (fast-path)
reply shape.

``health`` and ``ready`` are the orchestration probes: ``health``
answers as long as the event loop is alive and reports ``degraded``
(plus a ``reason``) after a failed ``reload`` left the server on its
last good index; ``ready`` says whether the server is accepting and
answering queries.  With a durable state dir (``serve --state-dir``)
the ``ready`` result additionally carries a ``durable`` block —
``{"recovered": bool, "seq": int, "recovery_seconds": float}`` — and
stays ``ready: false`` until boot recovery has replayed the journal,
so an orchestrator never routes traffic to a half-recovered catalog.

Replies are ``{"id": ..., "ok": true, "result": ...}`` on success and
``{"id": ..., "ok": false, "error": <code>, "message": ...}`` on
failure.  Error codes are the ``ERR_*`` constants below; ``overloaded``
is the explicit admission-control shed reply, so clients can
distinguish load shedding from hard failures and retry with backoff.

Node names follow the serialisation rules of
:mod:`repro.core.serialize`: JSON scalars only (str/int/float/bool).

Newline-JSON is the *default* codec; a client may negotiate the
length-prefixed binary framing of :mod:`repro.server.binproto` by
sending its magic preamble as the first request line of a connection.
Reply encoding for both codecs lives behind one seam —
:class:`JsonCodec` here and
:class:`~repro.server.binproto.BinaryCodec` there — so the gateway's
``_finish`` path has exactly one encode call site per reply.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.exceptions import ReproError

__all__ = [
    "JSON_CODEC",
    "JsonCodec",
    "PROTOCOL_VERSION",
    "VERBS",
    "ProtocolError",
    "Request",
    "decode_message",
    "encode_message",
    "error_reply",
    "ok_reply",
    "parse_pairs",
    "parse_request",
]

PROTOCOL_VERSION = 1

#: Verbs the gateway understands.
VERBS = ("ping", "query", "batch", "stats", "metrics", "reload",
         "health", "ready", "catalog", "slo", "flight")

# Error codes carried in the ``error`` field of failure replies.
ERR_BAD_REQUEST = "bad_request"
ERR_UNKNOWN_VERB = "unknown_verb"
ERR_UNKNOWN_NODE = "unknown_node"
ERR_OVERLOADED = "overloaded"
ERR_TOO_LARGE = "too_large"
ERR_TIMEOUT = "timeout"
ERR_RELOAD_FAILED = "reload_failed"
ERR_INTERNAL = "internal"
ERR_UNKNOWN_INDEX = "unknown_index"

_SCALAR_TYPES = (str, int, float, bool)


class ProtocolError(ReproError):
    """A malformed or unserviceable request (maps to an error reply)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass(frozen=True)
class Request:
    """A decoded request line."""

    id: Any
    verb: str
    payload: dict


def encode_message(doc: dict) -> bytes:
    """One protocol message as a newline-terminated JSON line."""
    return json.dumps(doc, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes | str) -> dict:
    """Parse one received line into a message dict.

    Raises
    ------
    ProtocolError
        With code ``bad_request`` when the line is not a JSON object.
    """
    try:
        doc = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(ERR_BAD_REQUEST,
                            f"invalid JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise ProtocolError(
            ERR_BAD_REQUEST,
            f"expected a JSON object, got {type(doc).__name__}")
    return doc


def parse_request(doc: dict) -> Request:
    """Validate a decoded message as a request.

    Raises
    ------
    ProtocolError
        ``bad_request`` on a malformed envelope, ``unknown_verb`` on a
        verb outside :data:`VERBS`.
    """
    request_id = doc.get("id")
    if request_id is not None and not isinstance(request_id,
                                                 (str, int, float)):
        raise ProtocolError(ERR_BAD_REQUEST,
                            "id must be a JSON scalar when present")
    verb = doc.get("verb")
    if not isinstance(verb, str):
        raise ProtocolError(ERR_BAD_REQUEST, "missing verb")
    if verb not in VERBS:
        raise ProtocolError(
            ERR_UNKNOWN_VERB,
            f"unknown verb {verb!r}; supported: {', '.join(VERBS)}")
    return Request(id=request_id, verb=verb, payload=doc)


def _check_node(value: Any) -> Any:
    if not isinstance(value, _SCALAR_TYPES) or value is None:
        raise ProtocolError(
            ERR_BAD_REQUEST,
            f"node must be a JSON scalar, got {type(value).__name__}")
    return value


def parse_pairs(payload: dict, *,
                max_pairs: int | None = None) -> list[tuple]:
    """Extract the ``(u, v)`` pair list of a ``query``/``batch`` request.

    ``query`` requests carry ``u``/``v`` fields; ``batch`` requests a
    ``pairs`` list of two-element arrays.

    Raises
    ------
    ProtocolError
        ``bad_request`` on missing/malformed fields, ``too_large`` when
        the pair count exceeds ``max_pairs`` (the per-request cap).
    """
    if payload.get("verb") == "query":
        if "u" not in payload or "v" not in payload:
            raise ProtocolError(ERR_BAD_REQUEST,
                                "query requires 'u' and 'v'")
        return [(_check_node(payload["u"]), _check_node(payload["v"]))]
    raw = payload.get("pairs")
    if not isinstance(raw, list):
        raise ProtocolError(ERR_BAD_REQUEST,
                            "batch requires a 'pairs' array")
    if max_pairs is not None and len(raw) > max_pairs:
        raise ProtocolError(
            ERR_TOO_LARGE,
            f"batch of {len(raw)} pairs exceeds the per-request cap "
            f"of {max_pairs}")
    pairs = []
    for item in raw:
        if not isinstance(item, (list, tuple)) or len(item) != 2:
            raise ProtocolError(ERR_BAD_REQUEST,
                                "each pair must be a [u, v] array")
        pairs.append((_check_node(item[0]), _check_node(item[1])))
    return pairs


def ok_reply(request_id: Any, result: Any) -> dict:
    """A success reply envelope."""
    return {"id": request_id, "ok": True, "result": result}


def error_reply(request_id: Any, code: str, message: str) -> dict:
    """A failure reply envelope."""
    return {"id": request_id, "ok": False, "error": code,
            "message": message}


class JsonCodec:
    """Reply encoder of the newline-JSON protocol.

    The gateway's single JSON encode path: the hand-formatted
    fast cases (scalar bool and homogeneous bool-list results with
    integer ids — the serving hot path, where direct byte formatting
    beats ``json.dumps`` ~8x for small replies and ~2x for full
    batches) and the general ``json.dumps`` fallback live together
    here, byte-for-byte equivalent and tested as such, instead of
    being an ad-hoc special case inside the server's ``_finish``.
    """

    name = "json"

    @staticmethod
    def encode_ok(request_id: Any, result: Any,
                  trace: str | None = None) -> bytes:
        if trace is not None:
            # Traced replies echo the client's trace id; they take the
            # general path so the untraced hot path stays byte-for-byte
            # (and cycle-for-cycle) what it was.
            doc = ok_reply(request_id, result)
            doc["trace"] = trace
            return encode_message(doc)
        if (result is True or result is False) \
                and type(request_id) is int:
            return b'{"id":%d,"ok":true,"result":%s}\n' % (
                request_id, b"true" if result else b"false")
        if type(result) is list and type(request_id) is int \
                and result and type(result[0]) is bool:
            return b'{"id":%d,"ok":true,"result":[%s]}\n' % (
                request_id,
                b",".join(b"true" if r else b"false" for r in result))
        return encode_message(ok_reply(request_id, result))

    @staticmethod
    def encode_error(request_id: Any, code: str, message: str,
                     trace: str | None = None) -> bytes:
        doc = error_reply(request_id, code, message)
        if trace is not None:
            doc["trace"] = trace
        return encode_message(doc)


#: Shared stateless codec instance (the per-connection default).
JSON_CODEC = JsonCodec()
