"""Cross-connection micro-batching with bounded admission.

The dual-labeling kernels answer a 512-pair batch in barely more time
than a single pair (see ``tests/test_service.py``'s >=5x acceptance
test), so the gateway's throughput hinges on *coalescing*: queries
arriving on different connections within a small window should share
one ``query_batch()`` invocation.  :class:`MicroBatcher` implements the
standard size-or-deadline trigger:

* every submitted request appends its pairs to one shared buffer;
* the buffer flushes immediately once it holds ``max_batch`` pairs, or
  after ``max_delay`` seconds from the first buffered request —
  whichever comes first (``max_delay <= 0`` or ``max_batch <= 1``
  degenerates to one flush per request, the unbatched baseline the
  ``serve-load`` benchmark compares against);
* each flush dispatches **one** evaluation of the concatenated pair
  vector and scatters the answer slices back to the per-request
  futures.

Admission control bounds memory: at most ``max_pending`` pairs may be
in flight (buffered or evaluating).  Over capacity, ``policy="block"``
makes ``submit`` wait (backpressure propagates to the socket via the
connection handler), while ``policy="shed"`` raises
:class:`OverloadedError` immediately, which the gateway turns into an
explicit ``overloaded`` error reply.

A failing flush (e.g. one request naming an unknown node) is isolated
by re-evaluating each member request separately, so a bad query cannot
poison the answers of the connections it happened to share a flush
with.

The class is event-loop-confined: every method must be called from the
loop that runs the flush tasks (the gateway guarantees this).
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Awaitable, Callable

from repro.exceptions import ReproError
from repro.obs.tracing import BatchTicket

__all__ = ["MicroBatcher", "OverloadedError"]


class OverloadedError(ReproError):
    """The admission queue is full and the policy is ``shed``."""


def _bucket(value: int) -> int:
    """Histogram bucket: ``value`` rounded up to a power of two."""
    bucket = 1
    while bucket < value:
        bucket *= 2
    return bucket


class MicroBatcher:
    """Coalesce concurrent query submissions into shared kernel calls.

    Parameters
    ----------
    run_batch:
        Async callable evaluating one concatenated pair list (the
        gateway runs ``QueryService.query_batch`` on a worker thread).
    max_batch:
        Flush as soon as this many pairs are buffered.
    max_delay:
        Flush this many seconds after the first buffered request.
    max_pending:
        Admission bound on in-flight pairs (buffered + evaluating).
    policy:
        ``"block"`` (default) or ``"shed"`` — what to do when a
        submission would exceed ``max_pending``.
    """

    def __init__(self, run_batch: Callable[[list], Awaitable[list]], *,
                 max_batch: int = 512, max_delay: float = 0.002,
                 max_pending: int = 8192, policy: str = "block") -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {max_pending}")
        if policy not in ("block", "shed"):
            raise ValueError(
                f"policy must be 'block' or 'shed', got {policy!r}")
        self._run_batch = run_batch
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.max_pending = max_pending
        self.policy = policy
        self._entries: list[
            tuple[list, asyncio.Future, BatchTicket | None]] = []
        self._buffered = 0
        self._in_flight = 0
        self._timer: asyncio.TimerHandle | None = None
        self._waiters: deque[asyncio.Future] = deque()
        self._tasks: set[asyncio.Task] = set()
        self._closed = False
        # Counters (read by the gateway's ``stats`` verb).
        self.flushes = 0
        self.multi_query_flushes = 0
        self.flushed_pairs = 0
        self.flushed_requests = 0
        self.max_flush_pairs = 0
        self.shed_requests = 0
        self.isolation_reruns = 0
        #: individual requests that ultimately failed (their future got
        #: the kernel exception after the isolation rerun also raised).
        self.flush_failures = 0
        #: requests-per-flush histogram, power-of-two buckets.
        self.occupancy: dict[int, int] = {}
        #: pairs-per-flush histogram, power-of-two buckets.
        self.flush_sizes: dict[int, int] = {}

    # -- public API -----------------------------------------------------
    def try_submit(self, pairs: list,
                   ticket: BatchTicket | None = None
                   ) -> "asyncio.Future | None":
        """Synchronous fast path: enqueue without awaiting.

        Returns the future that will carry the answers, or ``None``
        when the admission queue is full under ``policy="block"`` (the
        caller must fall back to the awaiting :meth:`submit`).  This
        path exists because the gateway calls it once per request:
        skipping the coroutine round-trip is a measurable win on the
        serving hot path.

        ``ticket`` (when given) collects the trace stamps — admission
        complete, flush start, kernel done — that the gateway turns
        into per-stage spans.

        Raises
        ------
        OverloadedError
            Under ``policy="shed"`` when the queue is full, and under
            either policy when a single request exceeds the whole
            queue capacity.
        """
        loop = asyncio.get_running_loop()
        if self._closed:
            raise OverloadedError("batcher is shut down")
        n = len(pairs)
        if n == 0:
            future: asyncio.Future = loop.create_future()
            future.set_result([])
            return future
        if n > self.max_pending:
            self.shed_requests += 1
            raise OverloadedError(
                f"request of {n} pairs exceeds the admission queue "
                f"capacity of {self.max_pending}")
        if self._in_flight + n > self.max_pending:
            if self.policy == "shed":
                self.shed_requests += 1
                raise OverloadedError(
                    f"admission queue full ({self._in_flight} pairs "
                    f"in flight, capacity {self.max_pending})")
            return None
        self._in_flight += n
        return self._enqueue(pairs, n, loop, ticket)

    async def submit(self, pairs: list,
                     ticket: BatchTicket | None = None) -> list:
        """Answers for one request's pairs, via a shared flush.

        Raises
        ------
        OverloadedError
            Under ``policy="shed"`` when the queue is full, and under
            either policy when a single request exceeds the whole
            queue capacity.
        """
        future = self.try_submit(pairs, ticket)
        if future is None:
            # Block policy with a full queue: wait for room.
            loop = asyncio.get_running_loop()
            n = len(pairs)
            while self._in_flight + n > self.max_pending:
                waiter: asyncio.Future = loop.create_future()
                self._waiters.append(waiter)
                await waiter
                if self._closed:
                    raise OverloadedError("batcher is shut down")
            self._in_flight += n
            future = self._enqueue(pairs, n, loop, ticket)
        return await future

    def _enqueue(self, pairs: list, n: int,
                 loop: asyncio.AbstractEventLoop,
                 ticket: BatchTicket | None = None) -> asyncio.Future:
        future: asyncio.Future = loop.create_future()
        if ticket is not None:
            ticket.enqueued_at = time.perf_counter()
        self._entries.append((pairs, future, ticket))
        self._buffered += n
        if self._buffered >= self.max_batch or self.max_delay <= 0:
            self._flush()
        elif self._timer is None:
            self._timer = loop.call_later(self.max_delay, self._flush)
        return future

    @property
    def in_flight(self) -> int:
        """Pairs admitted but not yet answered."""
        return self._in_flight

    async def close(self) -> None:
        """Flush the buffer and wait for outstanding evaluations."""
        self._closed = True
        self._flush()
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():
                waiter.set_exception(
                    OverloadedError("batcher is shut down"))
        if self._tasks:
            await asyncio.gather(*list(self._tasks),
                                 return_exceptions=True)

    def stats(self) -> dict:
        """Counter snapshot for the ``stats`` verb."""
        return {
            "max_batch": self.max_batch,
            "max_delay_ms": self.max_delay * 1000.0,
            "max_pending": self.max_pending,
            "policy": self.policy,
            "in_flight_pairs": self._in_flight,
            "flushes": self.flushes,
            "multi_query_flushes": self.multi_query_flushes,
            "flushed_requests": self.flushed_requests,
            "flushed_pairs": self.flushed_pairs,
            "mean_flush_pairs": (self.flushed_pairs / self.flushes
                                 if self.flushes else 0.0),
            "max_flush_pairs": self.max_flush_pairs,
            "shed_requests": self.shed_requests,
            "isolation_reruns": self.isolation_reruns,
            "flush_failures": self.flush_failures,
            "occupancy_histogram": {
                str(k): v for k, v in sorted(self.occupancy.items())},
            "flush_pairs_histogram": {
                str(k): v for k, v in sorted(self.flush_sizes.items())},
        }

    def collect(self) -> list[dict]:
        """Scrape-time metric families for the Prometheus exposition.

        The batcher's counters are plain event-loop-confined ints (no
        locks on the hot path); this renders them into the collector
        shape :meth:`repro.obs.metrics.MetricsRegistry
        .register_collector` expects.  Power-of-two occupancy and
        flush-size buckets are exposed as labelled gauges rather than
        Prometheus histograms because they count *flushes per bucket*,
        not cumulative observations.
        """
        counters = (
            ("flushes", self.flushes, "Micro-batch flushes."),
            ("multi_query_flushes", self.multi_query_flushes,
             "Flushes coalescing more than one request."),
            ("flushed_requests", self.flushed_requests,
             "Requests answered through flushes."),
            ("flushed_pairs", self.flushed_pairs,
             "Pairs evaluated through flushes."),
            ("shed_requests", self.shed_requests,
             "Requests rejected by admission control."),
            ("isolation_reruns", self.isolation_reruns,
             "Failed flushes re-evaluated per request."),
            ("flush_failures", self.flush_failures,
             "Requests that failed even in isolation."),
        )
        families = [
            {"name": f"reach_batcher_{name}_total", "type": "counter",
             "help": help_text, "samples": [({}, value)]}
            for name, value, help_text in counters]
        families.append({
            "name": "reach_batcher_in_flight_pairs", "type": "gauge",
            "help": "Pairs admitted but not yet answered.",
            "samples": [({}, self._in_flight)]})
        families.append({
            "name": "reach_batcher_occupancy_flushes", "type": "gauge",
            "help": "Flushes per power-of-two requests-per-flush "
                    "bucket.",
            "samples": [({"bucket": str(k)}, v) for k, v in
                        sorted(self.occupancy.items())]})
        families.append({
            "name": "reach_batcher_flush_pairs_flushes",
            "type": "gauge",
            "help": "Flushes per power-of-two pairs-per-flush bucket.",
            "samples": [({"bucket": str(k)}, v) for k, v in
                        sorted(self.flush_sizes.items())]})
        return families

    # -- admission ------------------------------------------------------
    def _release(self, n: int) -> None:
        self._in_flight -= n
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)

    # -- flushing -------------------------------------------------------
    def _flush(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._entries:
            return
        entries = self._entries
        self._entries = []
        self._buffered = 0
        num_pairs = sum(len(pairs) for pairs, _, _ in entries)
        self.flushes += 1
        self.flushed_requests += len(entries)
        self.flushed_pairs += num_pairs
        if len(entries) > 1:
            self.multi_query_flushes += 1
        if num_pairs > self.max_flush_pairs:
            self.max_flush_pairs = num_pairs
        bucket = _bucket(len(entries))
        self.occupancy[bucket] = self.occupancy.get(bucket, 0) + 1
        bucket = _bucket(num_pairs)
        self.flush_sizes[bucket] = self.flush_sizes.get(bucket, 0) + 1
        task = asyncio.ensure_future(self._execute(entries, num_pairs))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _execute(self, entries: list, num_pairs: int) -> None:
        pairs = [pair for entry_pairs, _, _ in entries
                 for pair in entry_pairs]
        flush_at = time.perf_counter()
        for _, _, ticket in entries:
            if ticket is not None:
                ticket.flush_at = flush_at
        try:
            try:
                answers = await self._run_batch(pairs)
            except Exception:
                await self._execute_isolated(entries)
                return
            kernel_done = time.perf_counter()
            offset = 0
            for entry_pairs, future, ticket in entries:
                n = len(entry_pairs)
                if ticket is not None:
                    ticket.kernel_done = kernel_done
                if not future.done():
                    future.set_result(list(answers[offset:offset + n]))
                offset += n
        finally:
            self._release(num_pairs)

    async def _execute_isolated(self, entries: list) -> None:
        """Fallback after a failed flush: evaluate per request so one
        bad query (unknown node, say) only fails its own submitter."""
        self.isolation_reruns += 1
        for entry_pairs, future, ticket in entries:
            if future.done():
                continue
            try:
                answers = await self._run_batch(list(entry_pairs))
            except Exception as exc:
                self.flush_failures += 1
                if ticket is not None:
                    ticket.kernel_done = time.perf_counter()
                if not future.done():
                    future.set_exception(exc)
            else:
                if ticket is not None:
                    ticket.kernel_done = time.perf_counter()
                if not future.done():
                    future.set_result(list(answers))
