"""The gateway's binary wire protocol: length-prefixed frames.

PR 5's tracing showed parse/serialize as first-class request stages —
newline-JSON pays ``json.loads`` plus per-pair Python object churn on
every request before the vectorised kernel ever runs.  This module
defines the zero-copy alternative: struct-packed ``(u32 src, u32 dst)``
pair arrays in, packed answer bitmaps out, decoded server-side with
``np.frombuffer`` straight into the
:class:`~repro.core.fastkernel.FastKernel`'s reusable buffers.

Negotiation
-----------
JSON stays the default (and the differential oracle).  A client opts in
by sending :data:`MAGIC_LINE` — ``REPRO-BINARY/1\\n`` — as the **first**
request line of a connection.  Because the preamble is itself a
newline-terminated line, a JSON-only server reads it as a request and
answers with a normal ``bad_request`` error reply (invalid JSON), which
is how a binary client detects a server that cannot negotiate (see
``docs/RUNBOOK.md``).  A server that *can* answers with a ``HELLO``
frame and the connection speaks frames in both directions from then on.
Negotiation is only valid before the first served request; a later
magic line on a JSON connection is rejected with ``bad_request`` and the
connection stays in JSON mode (mid-stream renegotiation would race
in-flight replies).

TRACE extension
---------------
Distributed tracing is a *negotiated* extension: a client that wants
trace ids on the wire sends :data:`MAGIC_LINE_TRACE`
(``REPRO-BINARY/1 trace\\n``) instead of the plain preamble.  The
server acknowledges with a ``HELLO`` whose payload carries a fourth
``u32 flags`` word with :data:`HELLO_FLAG_TRACE` set (the ``HELLO``
itself stays a standard frame so either peer can parse it), and from
the first post-``HELLO`` byte the connection speaks **traced frames**
in both directions: the standard header widened by a 16-byte
NUL-padded ASCII trace-id field between ``payload_len`` and ``crc32``
(:data:`TRACE_HEADER`, 32 bytes).  Replies echo the request's trace id
verbatim.  Un-negotiated peers are untouched — the plain preamble
yields the plain three-word ``HELLO`` and 24-byte frames,
byte-identical to v1.

Frame layout (all integers little-endian)::

    offset 0   u8   magic        0xB7
    offset 1   u8   opcode
    offset 2   u16  index        catalog index id on request frames
                                 (0 = the default index, so v1 clients
                                 are unchanged); must be zero on reply
                                 frames
    offset 4   u32  request_id   echoed verbatim in the reply
    offset 8   u32  payload_len  bytes; bounded by the server's
                                 ``max_line_bytes`` read limit
    offset 12  u32  crc32        zlib.crc32 of the payload
    offset 16  payload

Request opcodes:

========  ===========  ================================================
opcode    name         payload
========  ===========  ================================================
``0x01``  ``BATCH``    ``n`` packed ``(u32 src, u32 dst)`` pairs
                       (``payload_len == 8 * n``; node ids are the
                       dense integer node names of generated graphs)
``0x02``  ``PING``     empty
========  ===========  ================================================

Reply opcodes:

========  ===========  ================================================
``0x7E``  ``HELLO``    ``u32 version, u32 max_pairs, u32 max_frame``
``0x81``  ``ANSWERS``  ``u32 count`` + ``ceil(count/8)`` bitmap bytes;
                       bit ``i & 7`` of byte ``i >> 3`` (LSB-first) is
                       the answer for pair ``i``
``0x82``  ``PONG``     empty
``0xFF``  ``ERROR``    ``u8 code`` + UTF-8 message; codes mirror the
                       JSON protocol's ``ERR_*`` strings (see
                       :data:`ERROR_CODES`)
========  ===========  ================================================

Error handling & resync
-----------------------
A length-prefixed stream cannot resynchronise after corruption (there
is no sentinel to scan for), so the contract is connection-level: a
frame whose magic or CRC is wrong — or whose length header exceeds the
bounded-read limit — gets **one** ``ERROR`` frame and the connection
is closed; the client reconnects and renegotiates.  Errors that leave
the stream in sync (unknown opcode, a ragged batch length, per-request
pair caps, unknown node ids, an ``index`` id naming no catalog entry —
wire code 9, ``unknown_index``) are answered with an ``ERROR`` frame
for that ``request_id`` and the connection keeps serving.  The CRC exists precisely for the chaos harness's ``garble``
fault: a flipped bit in an answer bitmap must surface as a transport
error, never as a silently wrong answer.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any

import numpy as np

from repro.server import protocol
from repro.server.protocol import ProtocolError

__all__ = [
    "BINARY_CODEC",
    "BINARY_TRACE_CODEC",
    "BINARY_VERSION",
    "BinaryCodec",
    "ERROR_CODES",
    "ERROR_NAMES",
    "FRAME_MAGIC",
    "HEADER",
    "HEADER_SIZE",
    "HELLO_FLAG_TRACE",
    "MAGIC_LINE",
    "MAGIC_LINE_TRACE",
    "OP_ANSWERS",
    "OP_BATCH",
    "OP_ERROR",
    "OP_HELLO",
    "OP_PING",
    "OP_PONG",
    "TRACE_HEADER",
    "TRACE_HEADER_SIZE",
    "TRACE_ID_BYTES",
    "TraceBinaryCodec",
    "decode_hello",
    "decode_trace_field",
    "encode_answers",
    "encode_error_frame",
    "encode_frame",
    "encode_hello",
    "encode_pairs",
    "encode_trace_frame",
    "pack_bitmap",
    "trace_field",
    "unpack_bitmap",
]

#: Protocol revision carried in the ``HELLO`` frame.
BINARY_VERSION = 1

#: The negotiation preamble a client sends as its first request line.
MAGIC_LINE = b"REPRO-BINARY/1\n"

#: The preamble variant requesting the TRACE extension.
MAGIC_LINE_TRACE = b"REPRO-BINARY/1 trace\n"

#: ``HELLO`` flags word bit: the connection speaks traced frames.
HELLO_FLAG_TRACE = 0x1

#: First byte of every frame.
FRAME_MAGIC = 0xB7

#: ``magic, opcode, reserved, request_id, payload_len, crc32``.
HEADER = struct.Struct("<BBHIII")
HEADER_SIZE = HEADER.size

#: Width of the traced-frame trace-id field (NUL-padded ASCII).
TRACE_ID_BYTES = 16

#: The traced-frame header: the standard header widened by a 16-byte
#: trace-id field between ``payload_len`` and ``crc32``.
TRACE_HEADER = struct.Struct("<BBHII16sI")
TRACE_HEADER_SIZE = TRACE_HEADER.size

# Request opcodes.
OP_BATCH = 0x01
OP_PING = 0x02
# Reply opcodes.
OP_HELLO = 0x7E
OP_ANSWERS = 0x81
OP_PONG = 0x82
OP_ERROR = 0xFF

#: JSON error-code string -> one-byte wire code.
ERROR_CODES = {
    protocol.ERR_BAD_REQUEST: 1,
    protocol.ERR_UNKNOWN_VERB: 2,
    protocol.ERR_UNKNOWN_NODE: 3,
    protocol.ERR_OVERLOADED: 4,
    protocol.ERR_TOO_LARGE: 5,
    protocol.ERR_TIMEOUT: 6,
    protocol.ERR_RELOAD_FAILED: 7,
    protocol.ERR_INTERNAL: 8,
    protocol.ERR_UNKNOWN_INDEX: 9,
}
#: One-byte wire code -> JSON error-code string.
ERROR_NAMES = {byte: name for name, byte in ERROR_CODES.items()}

#: Node-id cap: pairs are u32 on the wire.
MAX_NODE_ID = 0xFFFFFFFF


def encode_frame(opcode: int, request_id: int, payload: bytes = b"",
                 *, index: int = 0) -> bytes:
    """One wire frame: header (with CRC) plus payload.

    ``index`` is the catalog index id carried in the u16 header field
    of request frames (0 targets the default index); reply frames
    always leave it zero.
    """
    return HEADER.pack(FRAME_MAGIC, opcode, index & 0xFFFF,
                       request_id & 0xFFFFFFFF, len(payload),
                       zlib.crc32(payload)) + payload


def trace_field(trace: str | None) -> bytes:
    """The 16-byte wire form of a trace id (NUL-padded, truncated)."""
    if not trace:
        return b"\x00" * TRACE_ID_BYTES
    raw = trace.encode("ascii", "replace")[:TRACE_ID_BYTES]
    return raw.ljust(TRACE_ID_BYTES, b"\x00")


def decode_trace_field(field: bytes) -> str | None:
    """The trace id carried in a traced-frame header (``None``: unset)."""
    raw = field.rstrip(b"\x00")
    if not raw:
        return None
    return raw.decode("ascii", "replace")


def encode_trace_frame(opcode: int, request_id: int,
                       payload: bytes = b"", *, index: int = 0,
                       trace: str | None = None) -> bytes:
    """One traced wire frame (TRACE-extension connections only)."""
    return TRACE_HEADER.pack(FRAME_MAGIC, opcode, index & 0xFFFF,
                             request_id & 0xFFFFFFFF, len(payload),
                             trace_field(trace),
                             zlib.crc32(payload)) + payload


def encode_pairs(pairs) -> bytes:
    """A ``BATCH`` payload from a ``(src, dst)`` pair sequence."""
    arr = np.asarray(pairs, dtype="<u4")
    if arr.size and (arr.ndim != 2 or arr.shape[1] != 2):
        raise ValueError(
            f"pairs must be an (n, 2) sequence, got shape {arr.shape}")
    return arr.tobytes()


def encode_hello(max_pairs: int, max_frame_bytes: int,
                 flags: int = 0) -> bytes:
    """The server's negotiation acknowledgement.

    With a non-zero ``flags`` word (the TRACE extension) the payload
    grows a fourth ``u32``; the ``HELLO`` frame itself always uses the
    standard 24-byte header so either peer can parse it.
    """
    if flags:
        payload = struct.pack("<IIII", BINARY_VERSION, max_pairs,
                              max_frame_bytes, flags)
    else:
        payload = struct.pack("<III", BINARY_VERSION, max_pairs,
                              max_frame_bytes)
    return encode_frame(OP_HELLO, 0, payload)


def decode_hello(payload: bytes) -> dict[str, int]:
    """``{"version", "max_pairs", "max_frame_bytes", "flags"}`` of a
    ``HELLO`` (``flags`` is 0 on a plain three-word payload)."""
    if len(payload) < 12:
        raise ProtocolError(protocol.ERR_BAD_REQUEST,
                            f"HELLO payload of {len(payload)} bytes is "
                            f"too short")
    version, max_pairs, max_frame = struct.unpack_from("<III", payload)
    flags = struct.unpack_from("<I", payload, 12)[0] \
        if len(payload) >= 16 else 0
    return {"version": version, "max_pairs": max_pairs,
            "max_frame_bytes": max_frame, "flags": flags}


def pack_bitmap(answers) -> bytes:
    """LSB-first answer bitmap bytes for a boolean vector."""
    arr = np.asarray(answers, dtype=bool)
    return np.packbits(arr, bitorder="little").tobytes()


def unpack_bitmap(count: int, bitmap: bytes) -> list[bool]:
    """The boolean answers of an ``ANSWERS`` bitmap (length checked)."""
    need = (count + 7) >> 3
    if len(bitmap) < need:
        raise ProtocolError(
            protocol.ERR_BAD_REQUEST,
            f"bitmap of {len(bitmap)} bytes cannot hold {count} answers")
    if count == 0:
        return []
    bits = np.unpackbits(np.frombuffer(bitmap, dtype=np.uint8,
                                       count=need),
                         count=count, bitorder="little")
    return bits.astype(bool).tolist()


def encode_answers(request_id: int, count: int, bitmap: bytes) -> bytes:
    """An ``ANSWERS`` reply frame (``u32 count`` + packed bitmap)."""
    return encode_frame(OP_ANSWERS, request_id,
                        struct.pack("<I", count) + bitmap)


def encode_error_frame(request_id: Any, code: str,
                       message: str) -> bytes:
    """An ``ERROR`` reply frame; unknown codes map to ``internal``."""
    byte = ERROR_CODES.get(code, ERROR_CODES[protocol.ERR_INTERNAL])
    rid = request_id if isinstance(request_id, int) else 0
    return encode_frame(OP_ERROR, rid,
                        bytes([byte]) + message.encode("utf-8"))


class BinaryCodec:
    """Reply encoder of the binary protocol — the frame-mode half of
    the gateway's codec seam (its JSON counterpart is
    :class:`repro.server.protocol.JsonCodec`; ``_finish`` picks one per
    connection).  Successful results arrive as ``(count, bitmap_bytes)``
    tuples from :meth:`repro.core.service.QueryService.query_frames`,
    or the string ``"pong"``."""

    name = "binary"

    @staticmethod
    def encode_ok(request_id: Any, result: Any,
                  trace: str | None = None) -> bytes:
        if type(result) is tuple:
            return encode_answers(request_id, result[0], result[1])
        if result == "pong":
            return encode_frame(OP_PONG, request_id)
        # Defensive: only batch/ping are dispatched on binary
        # connections, so any other result shape is a server bug.
        return encode_error_frame(
            request_id, protocol.ERR_INTERNAL,
            f"result of type {type(result).__name__} is not "
            f"expressible in the binary protocol")

    @staticmethod
    def encode_error(request_id: Any, code: str, message: str,
                     trace: str | None = None) -> bytes:
        return encode_error_frame(request_id, code, message)


class TraceBinaryCodec:
    """Reply encoder for TRACE-extension connections: the same frames
    as :class:`BinaryCodec` but in the widened traced-header layout,
    echoing each request's trace id back in its reply."""

    name = "binary+trace"

    @staticmethod
    def encode_ok(request_id: Any, result: Any,
                  trace: str | None = None) -> bytes:
        if type(result) is tuple:
            payload = struct.pack("<I", result[0]) + result[1]
            return encode_trace_frame(OP_ANSWERS, request_id, payload,
                                      trace=trace)
        if result == "pong":
            return encode_trace_frame(OP_PONG, request_id, trace=trace)
        return TraceBinaryCodec.encode_error(
            request_id, protocol.ERR_INTERNAL,
            f"result of type {type(result).__name__} is not "
            f"expressible in the binary protocol", trace)

    @staticmethod
    def encode_error(request_id: Any, code: str, message: str,
                     trace: str | None = None) -> bytes:
        byte = ERROR_CODES.get(code, ERROR_CODES[protocol.ERR_INTERNAL])
        rid = request_id if isinstance(request_id, int) else 0
        return encode_trace_frame(OP_ERROR, rid,
                                  bytes([byte]) +
                                  message.encode("utf-8"), trace=trace)


#: Shared stateless codec instances.
BINARY_CODEC = BinaryCodec()
BINARY_TRACE_CODEC = TraceBinaryCodec()
