"""Multi-tenant index catalog and per-tenant admission control.

One gateway process can now serve many independent reachability
indexes — one per tenant — through a **catalog** of named entries.
The default entry (name ``"default"``, numeric id ``0``) is the index
the server was started with, so every pre-catalog client keeps working
unchanged: a request without an ``index`` field (JSON) or with a zero
index id (binary) serves from the default entry.

Each :class:`CatalogEntry` owns an independent
:class:`~repro.core.service.QueryService` plus — materialised lazily
by the gateway — its own micro-batcher lanes, so one tenant's flushes
never mix pairs into another tenant's kernel calls.  Layered on top is
per-tenant **admission**: a :class:`TenantQuota` bounds concurrent
requests (``max_inflight``), pairs admitted but unanswered
(``max_pending``), request rate (token bucket, ``rate``/``burst``),
and the index's label footprint (``max_label_bytes``, enforced at
build/load time via :exc:`~repro.exceptions.IndexBudgetExceeded`).
Admission runs at the gateway *before* the shared event loop hands the
request to a batcher, so an over-quota tenant is shed with an
``overloaded`` reply while every other tenant keeps its full queue.

Catalog verbs (JSON protocol, ``verb="catalog"``)::

    {"verb": "catalog", "op": "create", "name": ..., "scheme": ...,
     "quota": {"max_inflight": ..., "max_pending": ..., "rate": ...,
               "burst": ..., "max_label_bytes": ...}}
    {"verb": "catalog", "op": "build", "name": ..., "graph": path}
    {"verb": "catalog", "op": "load", "name": ..., "index": path}
    {"verb": "catalog", "op": "quota", "name": ..., "quota": {...}}
    {"verb": "catalog", "op": "drop", "name": ...}
    {"verb": "catalog", "op": "list"}

``create`` registers the entry (and its numeric id, used as the u16
``index`` header field of binary request frames); ``build``/``load``
install its index; ``quota`` replaces the entry's admission limits at
runtime (journaled through the durable state layer when one is
configured, so the limits survive a restart); ``drop`` removes it
(in-flight queries finish against the retiring service).  Unknown
names answer with the ``unknown_index`` error code.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass
from typing import Any, Iterable

from repro.core.service import QueryService
from repro.exceptions import IndexBudgetExceeded
from repro.server.batcher import OverloadedError
from repro.server.protocol import (
    ERR_BAD_REQUEST,
    ERR_UNKNOWN_INDEX,
    ProtocolError,
)

__all__ = [
    "DEFAULT_INDEX",
    "DEFAULT_INDEX_ID",
    "MAX_INDEX_ID",
    "CatalogEntry",
    "CatalogService",
    "TenantQuota",
]

#: Name and id of the entry every index-less request serves from.
DEFAULT_INDEX = "default"
DEFAULT_INDEX_ID = 0

#: Ids ride the u16 header field of binary request frames.
MAX_INDEX_ID = 0xFFFF

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits of one catalog entry (``None`` = unlimited).

    Attributes
    ----------
    max_inflight:
        Concurrent admitted requests.
    max_pending:
        Pairs admitted into the tenant's lanes but not yet answered.
    rate:
        Sustained requests/second (token bucket).
    burst:
        Token-bucket depth; defaults to ``max(1, 2 * rate)``.
    max_label_bytes:
        Logical label bytes the tenant's index may occupy; checked when
        an index is built or loaded into the entry, never mid-query.
    """

    max_inflight: int | None = None
    max_pending: int | None = None
    rate: float | None = None
    burst: int | None = None
    max_label_bytes: int | None = None

    def as_dict(self) -> dict[str, Any]:
        return {"max_inflight": self.max_inflight,
                "max_pending": self.max_pending,
                "rate": self.rate, "burst": self.burst,
                "max_label_bytes": self.max_label_bytes}

    @classmethod
    def from_payload(cls, doc: Any) -> "TenantQuota":
        """Validate a request's ``quota`` object into a quota.

        Raises
        ------
        ProtocolError
            ``bad_request`` on non-numeric or negative fields.
        """
        if doc is None:
            return cls()
        if not isinstance(doc, dict):
            raise ProtocolError(ERR_BAD_REQUEST,
                                "quota must be a JSON object")
        known = ("max_inflight", "max_pending", "rate", "burst",
                 "max_label_bytes")
        unknown = sorted(set(doc) - set(known))
        if unknown:
            raise ProtocolError(
                ERR_BAD_REQUEST,
                f"unknown quota fields: {', '.join(unknown)}")
        values: dict[str, Any] = {}
        for field_name in known:
            value = doc.get(field_name)
            if value is None:
                continue
            if isinstance(value, bool) \
                    or not isinstance(value, (int, float)) or value <= 0:
                raise ProtocolError(
                    ERR_BAD_REQUEST,
                    f"quota field {field_name!r} must be a positive "
                    f"number")
            values[field_name] = (float(value) if field_name == "rate"
                                  else int(value))
        return cls(**values)


class CatalogEntry:
    """One named index: service, generation, quota, and admission state.

    The admission counters are plain ints mutated only from the
    gateway's event loop (the same confinement discipline as the
    micro-batcher's counters), so the per-request hot path takes no
    locks.
    """

    __slots__ = ("name", "index_id", "scheme", "service", "generation",
                 "quota", "label_bytes", "admitted", "shed", "inflight",
                 "pending_pairs", "batcher", "lane",
                 "_tokens", "_token_stamp")

    def __init__(self, name: str, index_id: int, *,
                 scheme: str = "dual-i",
                 service: QueryService | None = None,
                 quota: TenantQuota | None = None,
                 label_bytes: int = 0) -> None:
        self.name = name
        self.index_id = index_id
        self.scheme = scheme
        self.service = service
        self.generation = 0
        self.quota = quota or TenantQuota()
        self.label_bytes = label_bytes
        # Admission/accounting counters (event-loop-confined ints).
        self.admitted = 0
        self.shed = 0
        self.inflight = 0
        self.pending_pairs = 0
        # Per-entry micro-batcher lanes; the gateway materialises them
        # lazily on the entry's first query so idle tenants cost
        # nothing.
        self.batcher = None
        self.lane = None
        quota_rate = self.quota.rate
        self._tokens = (float(self.quota.burst)
                        if self.quota.burst is not None
                        else max(1.0, 2.0 * quota_rate)
                        if quota_rate is not None else 0.0)
        self._token_stamp = time.monotonic()

    # -- admission ------------------------------------------------------
    def admit(self, num_pairs: int) -> None:
        """Admit one request of ``num_pairs`` pairs, or shed it.

        Raises
        ------
        OverloadedError
            When the tenant is over any of its quotas; the gateway
            answers ``overloaded`` without touching the batcher.
        """
        quota = self.quota
        if quota.max_inflight is not None \
                and self.inflight >= quota.max_inflight:
            self.shed += 1
            raise OverloadedError(
                f"tenant {self.name!r} is at its inflight quota of "
                f"{quota.max_inflight} requests")
        if quota.max_pending is not None \
                and self.pending_pairs + num_pairs > quota.max_pending:
            self.shed += 1
            raise OverloadedError(
                f"tenant {self.name!r} would exceed its pending-pairs "
                f"quota of {quota.max_pending}")
        if quota.rate is not None:
            now = time.monotonic()
            burst = (float(quota.burst) if quota.burst is not None
                     else max(1.0, 2.0 * quota.rate))
            self._tokens = min(
                burst,
                self._tokens + (now - self._token_stamp) * quota.rate)
            self._token_stamp = now
            if self._tokens < 1.0:
                self.shed += 1
                raise OverloadedError(
                    f"tenant {self.name!r} is over its rate quota of "
                    f"{quota.rate:g} requests/s")
            self._tokens -= 1.0
        self.admitted += 1
        self.inflight += 1
        self.pending_pairs += num_pairs

    def release(self, num_pairs: int) -> None:
        """Return one admitted request's budget (answered or failed)."""
        self.inflight -= 1
        self.pending_pairs -= num_pairs

    # -- reporting ------------------------------------------------------
    def describe(self) -> dict[str, Any]:
        """The entry's row in ``catalog list`` / stats snapshots."""
        return {
            "name": self.name,
            "index_id": self.index_id,
            "scheme": self.scheme,
            "generation": self.generation,
            "loaded": self.service is not None,
            "label_bytes": self.label_bytes,
            "quota": self.quota.as_dict(),
            "admitted": self.admitted,
            "shed": self.shed,
            "inflight": self.inflight,
            "pending_pairs": self.pending_pairs,
        }


def _index_label_bytes(index: Any) -> int:
    """Logical label footprint of an index (0 when unreported)."""
    try:
        return int(index.stats().total_space_bytes)
    except Exception:
        return 0


class CatalogService:
    """The gateway's registry of named indexes.

    Owns name → entry and id → entry resolution, entry lifecycle
    (create / install / drop), label-size budget enforcement, and the
    per-tenant metric families.  All mutation happens on the gateway's
    event loop; readers (the Prometheus collector runs on scrape
    threads) only traverse immutable snapshots of plain ints, matching
    the batcher's lock-free convention.
    """

    def __init__(self, default_service: QueryService, *,
                 scheme: str = "dual-i",
                 quota: TenantQuota | None = None) -> None:
        default = CatalogEntry(
            DEFAULT_INDEX, DEFAULT_INDEX_ID, scheme=scheme,
            service=default_service, quota=quota,
            label_bytes=(_index_label_bytes(default_service.index)
                         if default_service is not None else 0))
        self._by_name: dict[str, CatalogEntry] = {DEFAULT_INDEX: default}
        self._by_id: dict[int, CatalogEntry] = {DEFAULT_INDEX_ID: default}
        self._next_id = DEFAULT_INDEX_ID + 1

    # -- resolution -----------------------------------------------------
    @property
    def default(self) -> CatalogEntry:
        return self._by_name[DEFAULT_INDEX]

    def entries(self) -> list[CatalogEntry]:
        """Every entry, default first then by numeric id."""
        return [self._by_id[key] for key in sorted(self._by_id)]

    def names(self) -> list[str]:
        return [entry.name for entry in self.entries()]

    def lookup(self, name: Any) -> CatalogEntry:
        """The entry registered under ``name`` (loaded or not).

        ``None`` and ``"default"`` resolve to the default entry.

        Raises
        ------
        ProtocolError
            ``unknown_index`` for unregistered names, ``bad_request``
            for non-string names.
        """
        if name is None:
            return self._by_name[DEFAULT_INDEX]
        if not isinstance(name, str):
            raise ProtocolError(ERR_BAD_REQUEST,
                                "index must be a string name")
        entry = self._by_name.get(name)
        if entry is None:
            known = ", ".join(self.names())
            raise ProtocolError(
                ERR_UNKNOWN_INDEX,
                f"unknown index {name!r}; registered: {known}")
        return entry

    def resolve(self, name: Any) -> CatalogEntry:
        """The *serveable* entry for ``name`` (must have an index).

        Raises
        ------
        ProtocolError
            ``unknown_index`` when the name is unregistered or the
            entry has no index loaded yet.
        """
        entry = self.lookup(name)
        if entry.service is None:
            raise ProtocolError(
                ERR_UNKNOWN_INDEX,
                f"index {entry.name!r} has no data; build or load it "
                f"first")
        return entry

    def lookup_id(self, index_id: int) -> CatalogEntry:
        """The entry registered under a numeric id (loaded or not).

        Raises
        ------
        ProtocolError
            ``unknown_index`` for unregistered ids.
        """
        entry = self._by_id.get(index_id)
        if entry is None:
            raise ProtocolError(
                ERR_UNKNOWN_INDEX,
                f"unknown index id {index_id}; registered: "
                + ", ".join(f"{e.name}={e.index_id}"
                            for e in self.entries()))
        return entry

    def resolve_id(self, index_id: int) -> CatalogEntry:
        """The serveable entry for a binary-frame index id."""
        entry = self.lookup_id(index_id)
        if entry.service is None:
            raise ProtocolError(
                ERR_UNKNOWN_INDEX,
                f"index {entry.name!r} (id {index_id}) has no data; "
                f"build or load it first")
        return entry

    # -- lifecycle ------------------------------------------------------
    def create(self, name: Any, *, scheme: str = "dual-i",
               quota: TenantQuota | None = None,
               index_id: int | None = None) -> CatalogEntry:
        """Register an empty entry under ``name``.

        Raises
        ------
        ProtocolError
            ``bad_request`` on invalid/duplicate names or exhausted
            index-id space.
        """
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise ProtocolError(
                ERR_BAD_REQUEST,
                "index names are 1-64 chars of [A-Za-z0-9._-] starting "
                "with an alphanumeric")
        if name in self._by_name:
            raise ProtocolError(ERR_BAD_REQUEST,
                                f"index {name!r} already exists")
        if index_id is None:
            index_id = self._next_id
        if index_id in self._by_id:
            raise ProtocolError(ERR_BAD_REQUEST,
                                f"index id {index_id} is already taken")
        if not DEFAULT_INDEX_ID <= index_id <= MAX_INDEX_ID:
            raise ProtocolError(
                ERR_BAD_REQUEST,
                f"index id space exhausted (max {MAX_INDEX_ID})")
        entry = CatalogEntry(name, index_id, scheme=scheme, quota=quota)
        self._by_name[name] = entry
        self._by_id[index_id] = entry
        self._next_id = max(self._next_id, index_id + 1)
        return entry

    def check_budget(self, entry: CatalogEntry, index: Any) -> int:
        """Label bytes of ``index``, validated against the quota.

        Raises
        ------
        IndexBudgetExceeded
            When the footprint exceeds the entry's
            ``max_label_bytes``.
        """
        label_bytes = _index_label_bytes(index)
        budget = entry.quota.max_label_bytes
        if budget is not None and label_bytes > budget:
            raise IndexBudgetExceeded(entry.name, label_bytes, budget)
        return label_bytes

    def install(self, entry: CatalogEntry, service: QueryService, *,
                scheme: str | None = None,
                label_bytes: int | None = None
                ) -> QueryService | None:
        """Swap ``service`` into ``entry``; returns the retiring one.

        The caller (the gateway, which owns service lifecycles) parks
        the returned service until in-flight queries drain.  Budget
        enforcement happens in :meth:`check_budget` *before* the
        expensive build — this method never fails.
        """
        old = entry.service
        entry.service = service
        if scheme is not None:
            entry.scheme = scheme
        entry.label_bytes = (label_bytes if label_bytes is not None
                             else _index_label_bytes(service.index))
        entry.generation += 1
        return old

    def update_quota(self, entry: CatalogEntry,
                     quota: TenantQuota) -> TenantQuota:
        """Replace ``entry``'s quota in place; returns the old quota.

        The token bucket is refilled to the new burst so a *loosened*
        rate limit takes effect immediately instead of serving the
        first seconds from the old bucket; inflight/pending counters
        are untouched (they describe admitted work, not policy).
        """
        old = entry.quota
        entry.quota = quota
        quota_rate = quota.rate
        entry._tokens = (float(quota.burst)
                         if quota.burst is not None
                         else max(1.0, 2.0 * quota_rate)
                         if quota_rate is not None else 0.0)
        entry._token_stamp = time.monotonic()
        return old

    def drop(self, name: Any) -> CatalogEntry:
        """Unregister ``name`` and return its entry.

        The entry's service and lanes stay attached to the returned
        object; the gateway retires them (in-flight queries keep their
        per-flush service snapshot, so they complete correctly).

        Raises
        ------
        ProtocolError
            ``bad_request`` for the default entry, ``unknown_index``
            for unregistered names.
        """
        entry = self.lookup(name)
        if entry.index_id == DEFAULT_INDEX_ID:
            raise ProtocolError(ERR_BAD_REQUEST,
                                "the default index cannot be dropped")
        del self._by_name[entry.name]
        del self._by_id[entry.index_id]
        return entry

    # -- reporting ------------------------------------------------------
    def describe(self) -> list[dict[str, Any]]:
        return [entry.describe() for entry in self.entries()]

    def collect(self) -> Iterable[dict]:
        """Per-tenant metric families for the Prometheus exposition.

        One series per entry, labelled ``{index="<name>"}`` —
        catalog names are operator-chosen and bounded (u16 id space,
        practically dozens), so the label cardinality stays small.
        """
        entries = self.entries()

        def family(name: str, kind: str, help_text: str,
                   value_of) -> dict:
            return {"name": name, "type": kind, "help": help_text,
                    "samples": [({"index": entry.name},
                                 value_of(entry))
                                for entry in entries]}

        return [
            family("reach_tenant_requests_total", "counter",
                   "Requests admitted per catalog index.",
                   lambda e: e.admitted),
            family("reach_tenant_shed_total", "counter",
                   "Requests shed by per-tenant admission control.",
                   lambda e: e.shed),
            family("reach_tenant_inflight", "gauge",
                   "Admitted requests currently in flight per index.",
                   lambda e: e.inflight),
            family("reach_tenant_pending_pairs", "gauge",
                   "Pairs admitted but unanswered per index.",
                   lambda e: e.pending_pairs),
            family("reach_tenant_label_bytes", "gauge",
                   "Logical label footprint per index.",
                   lambda e: e.label_bytes),
            family("reach_tenant_generation", "gauge",
                   "Hot-swap generation per index.",
                   lambda e: e.generation),
        ]
