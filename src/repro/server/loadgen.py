"""Open-loop multi-connection load generator for the gateway.

Drives a :class:`~repro.server.server.ReachServer` with ``connections``
concurrent TCP connections, each keeping up to ``pipeline`` requests in
flight (optionally paced to a target aggregate ``rate``), and records
completions, per-code error counts, and client-side latency
percentiles.  Because senders do not wait for replies before issuing
the next request (up to the window), queries from many connections land
inside the server's micro-batch window — exactly the traffic shape the
cross-connection batcher exists for.

The generator is pure asyncio and runs in one thread;
:func:`run_loadgen` is the synchronous entry point used by
``repro-reach loadgen`` and ``python -m repro.bench serve-load``.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.server.protocol import encode_message

__all__ = ["LoadgenResult", "run_loadgen"]


@dataclass
class LoadgenResult:
    """Aggregate outcome of one load-generation run."""

    connections: int
    pipeline: int
    batch_size: int
    duration_seconds: float
    sent: int = 0
    completed: int = 0
    ok: int = 0
    #: queries answered (requests × pairs per request)
    queries: int = 0
    #: error-code -> count over all connections
    errors: dict[str, int] = field(default_factory=dict)
    latencies_ms: list[float] = field(default_factory=list)

    @property
    def error_total(self) -> int:
        return sum(self.errors.values())

    @property
    def queries_per_second(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return self.queries / self.duration_seconds

    def percentile(self, q: float) -> float:
        """Client-observed latency percentile in milliseconds."""
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

    def as_dict(self) -> dict[str, Any]:
        """Flat report row (for ``format_kv_table`` / JSON)."""
        return {
            "connections": self.connections,
            "pipeline": self.pipeline,
            "batch_size": self.batch_size,
            "duration_seconds": self.duration_seconds,
            "sent": self.sent,
            "completed": self.completed,
            "ok": self.ok,
            "errors": self.error_total,
            "error_codes": dict(sorted(self.errors.items())),
            "queries": self.queries,
            "queries_per_second": self.queries_per_second,
            "latency_p50_ms": self.percentile(0.50),
            "latency_p95_ms": self.percentile(0.95),
            "latency_p99_ms": self.percentile(0.99),
        }


#: Track the client-side latency of every Nth request — enough for
#: stable percentiles without a timestamp dict write per message.
_LATENCY_SAMPLE = 4


async def _drive_connection(host: str, port: int,
                            pairs: Sequence[tuple],
                            frames: "list[bytes] | None", offset: int,
                            deadline: float, pipeline: int,
                            batch_size: int, send_interval: float,
                            result: LoadgenResult) -> None:
    """One connection: burst sender + bulk reply reader.

    The sender fills the whole free window in one coalesced write (one
    syscall per burst instead of one per request) and the reader
    consumes replies in 64 KiB chunks; both matter because the
    generator must outrun the server it measures from a single thread.
    """
    reader, writer = await asyncio.open_connection(host, port)
    n = len(pairs)
    inflight = 0
    closed = False
    wake = asyncio.Event()
    sampled: dict[int, float] = {}  # sampled id -> sent_at

    async def read_replies() -> None:
        nonlocal closed, inflight
        buffer = b""
        while True:
            chunk = await reader.read(1 << 16)
            if not chunk:
                closed = True
                wake.set()
                return
            lines = (buffer + chunk).split(b"\n")
            buffer = lines.pop()
            now = time.perf_counter()
            for line in lines:
                if not line:
                    continue
                rid: Any = None
                if line.startswith(b'{"id":') and b'"ok":true' in line:
                    result.ok += 1
                    result.queries += batch_size
                    if sampled:
                        try:
                            rid = int(line[6:line.index(b",", 6)])
                        except ValueError:
                            rid = None
                else:
                    reply = json.loads(line)
                    rid = reply.get("id")
                    if reply.get("ok"):
                        result.ok += 1
                        result.queries += batch_size
                    else:
                        code = reply.get("error", "unknown")
                        result.errors[code] = \
                            result.errors.get(code, 0) + 1
                result.completed += 1
                inflight -= 1
                sent_at = sampled.pop(rid, None)
                if sent_at is not None:
                    result.latencies_ms.append((now - sent_at) * 1000.0)
            wake.set()

    reader_task = asyncio.ensure_future(read_replies())
    # One watchdog for the whole run (not a timeout per send): at the
    # deadline it wakes a sender blocked on a stalled/dead server.
    loop = asyncio.get_running_loop()
    watchdog = loop.call_at(
        loop.time() + max(0.0, deadline - time.perf_counter()),
        wake.set)
    try:
        position = offset
        next_id = 0
        while not closed and time.perf_counter() < deadline:
            if inflight >= pipeline:
                wake.clear()
                await wake.wait()
                continue
            burst = bytearray()
            # Pacing caps a burst at one request; open loop fills the
            # free window.
            limit = 1 if send_interval > 0 else pipeline - inflight
            for _ in range(limit):
                next_id += 1
                if next_id % _LATENCY_SAMPLE == 0:
                    sampled[next_id] = time.perf_counter()
                if frames is not None:
                    burst += b'{"id":%d,' % next_id
                    burst += frames[position % n]
                    position += 1
                else:
                    chunk = [list(pairs[(position + i) % n])
                             for i in range(batch_size)]
                    burst += encode_message(
                        {"id": next_id, "verb": "batch",
                         "pairs": chunk})
                    position += batch_size
            inflight += limit
            result.sent += limit
            writer.write(bytes(burst))
            await writer.drain()
            if send_interval > 0:
                await asyncio.sleep(send_interval)
        # Drain: wait (bounded) for the outstanding window.
        drain_deadline = time.perf_counter() + 5.0
        while inflight > 0 and not closed \
                and time.perf_counter() < drain_deadline:
            await asyncio.sleep(0.005)
    finally:
        watchdog.cancel()
        reader_task.cancel()
        try:
            await reader_task
        except (asyncio.CancelledError, ConnectionError):
            pass
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _run(host: str, port: int, pairs: Sequence[tuple],
               connections: int, duration: float, pipeline: int,
               batch_size: int, rate: float | None) -> LoadgenResult:
    result = LoadgenResult(connections=connections, pipeline=pipeline,
                           batch_size=batch_size,
                           duration_seconds=duration)
    # Open-loop pacing: a target aggregate request rate splits evenly
    # into per-connection send intervals; rate=None sends at will.
    send_interval = (connections / rate) if rate else 0.0
    # Precompute the invariant tail of every single-query frame ONCE,
    # before the clock starts — the senders then only splice the id in
    # front.  Built per connection this serialization work scales with
    # the connection count and eats the measurement window.
    frames: list[bytes] | None = None
    if batch_size == 1:
        frames = [
            json.dumps({"verb": "query", "u": u, "v": v},
                       separators=(",", ":"))[1:].encode() + b"\n"
            for u, v in pairs]
    started = time.perf_counter()
    deadline = started + duration
    stride = max(1, len(pairs) // max(1, connections))
    await asyncio.gather(*[
        _drive_connection(host, port, pairs, frames, i * stride,
                          deadline, pipeline, batch_size,
                          send_interval, result)
        for i in range(connections)])
    result.duration_seconds = time.perf_counter() - started
    return result


def run_loadgen(host: str, port: int, pairs: Sequence[tuple], *,
                connections: int = 8, duration: float = 2.0,
                pipeline: int = 4, batch_size: int = 1,
                rate: float | None = None) -> LoadgenResult:
    """Drive the gateway at ``host:port`` and return the aggregate.

    Parameters
    ----------
    pairs:
        Query pool; each connection cycles through it from a distinct
        offset.
    connections:
        Concurrent TCP connections.
    duration:
        Seconds to keep sending.
    pipeline:
        Max in-flight requests per connection (the open-loop window).
    batch_size:
        Pairs per request: ``1`` sends ``query`` verbs, larger values
        send ``batch`` verbs of that many pairs.
    rate:
        Optional aggregate requests/second pacing target.
    """
    if not pairs:
        raise ValueError("loadgen needs a non-empty pair pool")
    if connections < 1 or pipeline < 1 or batch_size < 1:
        raise ValueError(
            "connections, pipeline, and batch_size must be >= 1")
    return asyncio.run(_run(host, port, list(pairs), connections,
                            duration, pipeline, batch_size, rate))
