"""Open-loop multi-connection load generator for the gateway.

Drives a :class:`~repro.server.server.ReachServer` with ``connections``
concurrent TCP connections, each keeping up to ``pipeline`` requests in
flight (optionally paced to a target aggregate ``rate``), and records
completions, per-code error counts, and client-side latency
percentiles.  Because senders do not wait for replies before issuing
the next request (up to the window), queries from many connections land
inside the server's micro-batch window — exactly the traffic shape the
cross-connection batcher exists for.

The generator is also the measurement half of the chaos harness
(:mod:`repro.testing.chaos`): a dropped connection is tallied as
``reset`` (plus one per request that was in flight), a failed connect
as ``connect_failed``, an undecodable reply as ``garbled`` — and the
sender *reconnects* and keeps driving until the deadline, so a fault
mid-run measures recovery instead of aborting the experiment.  Passing
``expected`` (the direct :class:`~repro.core.service.QueryService`
answers for the pair pool) makes every reply differentially checked:
``wrong_answers`` must stay zero under any fault schedule, because the
resilience layer is allowed to *fail* requests, never to answer them
incorrectly.

The generator speaks both wire protocols: ``protocol="json"`` (the
default) drives newline-JSON ``query``/``batch`` verbs, while
``protocol="binary"`` negotiates :mod:`repro.server.binproto` framing
(magic preamble, then struct-packed pair payloads in and answer
bitmaps out) with the request frames precomputed before the clock
starts.  A JSON-only server answers the preamble with a JSON error
line; the generator tallies that as ``binary_unsupported`` and stops
that connection instead of reconnect-spinning.  Frame-level corruption
(bad magic, CRC mismatch) counts as ``garbled`` and forces a
reconnect, matching the server's resync-by-reconnect contract.

Multi-tenant servers are first-class targets: ``index`` aims every
request at one named catalog entry (the JSON ``index`` field, or the
u16 catalog id in each binary frame header), and :func:`run_loadgen_mix`
drives several tenants *concurrently* from one event loop — each with
its own pair pool, expected answers, and per-tenant
:class:`LoadgenResult` — which is how the isolation soak loads tenant A
while differentially verifying tenant B.

The generator is pure asyncio and runs in one thread;
:func:`run_loadgen` is the synchronous entry point used by
``repro-reach loadgen`` and ``python -m repro.bench serve-load``.
"""

from __future__ import annotations

import asyncio
import json
import struct
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.server import binproto
from repro.server.protocol import encode_message

__all__ = ["LoadgenResult", "run_loadgen", "run_loadgen_mix"]


@dataclass
class LoadgenResult:
    """Aggregate outcome of one load-generation run."""

    connections: int
    pipeline: int
    batch_size: int
    duration_seconds: float
    #: Every Nth request's latency was recorded (1 = all of them).
    latency_sample: int = 1
    #: Catalog entry the run targeted (``None`` = the default index).
    index: "str | int | None" = None
    sent: int = 0
    completed: int = 0
    ok: int = 0
    #: queries answered (requests × pairs per request)
    queries: int = 0
    #: error-code -> count over all connections; transport-level codes
    #: (``reset``, ``connect_failed``, ``garbled``) share the table
    #: with server reply codes (``overloaded``, ``timeout``, ...).
    errors: dict[str, int] = field(default_factory=dict)
    #: times a connection was re-established after a drop
    reconnects: int = 0
    #: replies that contradicted the ``expected`` answers
    wrong_answers: int = 0
    #: up to 10 ``(u, v, got, want)`` samples of wrong answers
    mismatch_samples: list = field(default_factory=list)
    latencies_ms: list[float] = field(default_factory=list)

    @property
    def error_total(self) -> int:
        return sum(self.errors.values())

    @property
    def queries_per_second(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return self.queries / self.duration_seconds

    def count_error(self, code: str, n: int = 1) -> None:
        self.errors[code] = self.errors.get(code, 0) + n

    def percentile(self, q: float) -> float:
        """Client-observed latency percentile in milliseconds."""
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

    def error_breakdown(self) -> dict[str, int]:
        """Sorted error-code table plus the verification counters —
        the block the CLI prints and the chaos smoke gates on."""
        table = dict(sorted(self.errors.items()))
        table["total_errors"] = self.error_total
        table["reconnects"] = self.reconnects
        table["wrong_answers"] = self.wrong_answers
        return table

    def as_dict(self) -> dict[str, Any]:
        """Flat report row (for ``format_kv_table`` / JSON)."""
        row: dict[str, Any] = {
            "index": "default" if self.index is None else self.index,
            "connections": self.connections,
            "pipeline": self.pipeline,
            "batch_size": self.batch_size,
            "duration_seconds": self.duration_seconds,
            "sent": self.sent,
            "completed": self.completed,
            "ok": self.ok,
            "errors": self.error_total,
            "error_codes": dict(sorted(self.errors.items())),
            "reconnects": self.reconnects,
            "wrong_answers": self.wrong_answers,
            "queries": self.queries,
            "queries_per_second": self.queries_per_second,
            "latency_sample": self.latency_sample,
            "latency_p50_ms": self.percentile(0.50),
            "latency_p95_ms": self.percentile(0.95),
            "latency_p99_ms": self.percentile(0.99),
        }
        if self.latency_sample > 1:
            # 1-in-N sampling thins the tail: with few samples past the
            # 99th percentile the p99 estimate is noisy and can only
            # miss extremes, never invent them.
            row["latency_note"] = (
                f"latencies sampled 1-in-{self.latency_sample}; tail "
                f"percentiles (p99) are estimates from "
                f"{len(self.latencies_ms)} samples")
        return row


async def _drive_session(reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter,
                         pairs: Sequence[tuple],
                         expected: "Sequence[bool] | None",
                         frames: "list[bytes] | None",
                         position: int, next_id: int, deadline: float,
                         pipeline: int, batch_size: int,
                         send_interval: float, latency_sample: int,
                         result: LoadgenResult,
                         index: "str | None" = None,
                         trace: bool = False) -> tuple[int, int, int]:
    """Drive one connection until it drops or the deadline passes.

    Returns ``(position, next_id, lost)`` so a reconnecting caller can
    resume the pair cursor and id sequence; ``lost`` is the number of
    requests that were in flight when the connection died.
    """
    n = len(pairs)
    inflight = 0
    closed = False
    wake = asyncio.Event()
    sampled: dict[int, float] = {}  # sampled id -> sent_at
    pending: dict[int, int] = {}    # id -> pool position (verify mode)

    def check_answers(start: int, answers: Any) -> None:
        if not isinstance(answers, list):
            answers = [answers]
        for i, got in enumerate(answers):
            want = expected[(start + i) % n]
            if bool(got) != bool(want):
                result.wrong_answers += 1
                if len(result.mismatch_samples) < 10:
                    u, v = pairs[(start + i) % n]
                    result.mismatch_samples.append(
                        (u, v, bool(got), bool(want)))

    async def read_replies() -> None:
        nonlocal closed, inflight
        buffer = b""
        while True:
            try:
                chunk = await reader.read(1 << 16)
            except (ConnectionError, OSError):
                chunk = b""
            if not chunk:
                closed = True
                wake.set()
                return
            lines = (buffer + chunk).split(b"\n")
            buffer = lines.pop()
            now = time.perf_counter()
            for line in lines:
                if not line:
                    continue
                rid: Any = None
                if expected is None and line.startswith(b'{"id":') \
                        and b'"ok":true' in line:
                    # Fast path: counting only, no verification.
                    result.ok += 1
                    result.queries += batch_size
                    if sampled:
                        try:
                            rid = int(line[6:line.index(b",", 6)])
                        except ValueError:
                            rid = None
                else:
                    try:
                        reply = json.loads(line)
                    except ValueError:
                        result.count_error("garbled")
                        result.completed += 1
                        inflight -= 1
                        wake.set()
                        continue
                    rid = reply.get("id")
                    if reply.get("ok"):
                        result.ok += 1
                        result.queries += batch_size
                        if expected is not None and rid in pending:
                            check_answers(pending[rid],
                                          reply.get("result"))
                    else:
                        code = reply.get("error", "unknown")
                        result.count_error(code)
                pending.pop(rid, None)
                result.completed += 1
                inflight -= 1
                sent_at = sampled.pop(rid, None)
                if sent_at is not None:
                    result.latencies_ms.append((now - sent_at) * 1000.0)
            wake.set()

    reader_task = asyncio.ensure_future(read_replies())
    # One watchdog for the whole session (not a timeout per send): at
    # the deadline it wakes a sender blocked on a stalled/dead server.
    loop = asyncio.get_running_loop()
    watchdog = loop.call_at(
        loop.time() + max(0.0, deadline - time.perf_counter()),
        wake.set)
    try:
        while not closed and time.perf_counter() < deadline:
            if inflight >= pipeline:
                wake.clear()
                if not closed and time.perf_counter() < deadline:
                    await wake.wait()
                continue
            burst = bytearray()
            # Pacing caps a burst at one request; open loop fills the
            # free window.
            limit = 1 if send_interval > 0 else pipeline - inflight
            for _ in range(limit):
                next_id += 1
                if next_id % latency_sample == 0:
                    sampled[next_id] = time.perf_counter()
                if expected is not None:
                    pending[next_id] = position
                if frames is not None:
                    burst += b'{"id":%d,' % next_id
                    burst += frames[position % n]
                    position += 1
                else:
                    chunk = [list(pairs[(position + i) % n])
                             for i in range(batch_size)]
                    message = {"id": next_id, "verb": "batch",
                               "pairs": chunk}
                    if index is not None:
                        message["index"] = index
                    if trace:
                        message["trace"] = "lg-%d" % next_id
                    burst += encode_message(message)
                    position += batch_size
            inflight += limit
            result.sent += limit
            try:
                writer.write(bytes(burst))
                await writer.drain()
            except (ConnectionError, OSError):
                closed = True
                break
            if send_interval > 0:
                await asyncio.sleep(send_interval)
        # Drain: wait (bounded) for the outstanding window.
        drain_deadline = time.perf_counter() + 5.0
        while inflight > 0 and not closed \
                and time.perf_counter() < drain_deadline:
            await asyncio.sleep(0.005)
    finally:
        watchdog.cancel()
        reader_task.cancel()
        try:
            await reader_task
        except (asyncio.CancelledError, ConnectionError, OSError):
            pass
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return position, next_id, max(0, inflight)


class _BinaryUnsupported(Exception):
    """The server answered the magic preamble with a JSON line."""


def _bin_prefix(index_id: int) -> bytes:
    """Invariant head of every ``BATCH`` request frame: magic, opcode,
    and the u16 catalog index id (0 = the default index).  The sender
    splices ``request_id`` and the precomputed ``(payload_len, crc,
    payload)`` tail behind it."""
    return struct.pack("<BBH", binproto.FRAME_MAGIC,
                       binproto.OP_BATCH, index_id)


async def _drive_session_binary(reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter,
                                pairs: Sequence[tuple],
                                expected: "Sequence[bool] | None",
                                tails: "list[bytes]",
                                position: int, next_id: int,
                                deadline: float, pipeline: int,
                                batch_size: int, send_interval: float,
                                latency_sample: int,
                                result: LoadgenResult,
                                prefix: bytes = _bin_prefix(0),
                                ) -> tuple[int, int, int]:
    """Binary-protocol twin of :func:`_drive_session`.

    Sends :data:`~repro.server.binproto.MAGIC_LINE` first, then frames
    assembled from the precomputed per-position ``tails``.  Raises
    :class:`_BinaryUnsupported` when the server replies to the preamble
    with a JSON line (a server without binary support parses the magic
    as a malformed request).
    """
    n = len(pairs)
    inflight = 0
    closed = False
    unsupported = False
    wake = asyncio.Event()
    sampled: dict[int, float] = {}  # sampled rid -> sent_at
    pending: dict[int, int] = {}    # rid -> pool position (verify mode)
    header = binproto.HEADER
    hsize = binproto.HEADER_SIZE

    def check_bitmap(start: int, payload: bytes) -> None:
        if len(payload) < 4:
            result.count_error("garbled")
            return
        count = struct.unpack_from("<I", payload)[0]
        try:
            answers = binproto.unpack_bitmap(count, payload[4:])
        except Exception:
            result.count_error("garbled")
            return
        for i, got in enumerate(answers):
            want = expected[(start + i) % n]
            if bool(got) != bool(want):
                result.wrong_answers += 1
                if len(result.mismatch_samples) < 10:
                    u, v = pairs[(start + i) % n]
                    result.mismatch_samples.append(
                        (u, v, bool(got), bool(want)))

    async def read_replies() -> None:
        nonlocal closed, inflight, unsupported
        buffer = bytearray()
        while True:
            try:
                chunk = await reader.read(1 << 16)
            except (ConnectionError, OSError):
                chunk = b""
            if not chunk:
                closed = True
                wake.set()
                return
            buffer += chunk
            if buffer[:1] == b"{":
                # A JSON-only server read the magic preamble as a
                # request and answered with a JSON error line.
                unsupported = True
                closed = True
                wake.set()
                return
            now = time.perf_counter()
            while len(buffer) >= hsize:
                magic, opcode, _reserved, rid, plen, crc = \
                    header.unpack_from(buffer)
                if magic != binproto.FRAME_MAGIC:
                    # Desynchronised reply stream: there is no sentinel
                    # to scan for, so drop the connection and let the
                    # caller reconnect (mirrors the server's contract).
                    result.count_error("garbled")
                    closed = True
                    wake.set()
                    return
                if len(buffer) < hsize + plen:
                    break
                payload = bytes(buffer[hsize:hsize + plen])
                del buffer[:hsize + plen]
                if zlib.crc32(payload) != crc:
                    result.count_error("garbled")
                    closed = True
                    wake.set()
                    return
                if opcode == binproto.OP_HELLO:
                    continue  # negotiation ack, not a reply
                if opcode == binproto.OP_ANSWERS:
                    result.ok += 1
                    result.queries += batch_size
                    if expected is not None and rid in pending:
                        check_bitmap(pending[rid], payload)
                elif opcode == binproto.OP_PONG:
                    result.ok += 1
                elif opcode == binproto.OP_ERROR:
                    code = payload[0] if payload else 0
                    result.count_error(
                        binproto.ERROR_NAMES.get(code, "internal"))
                else:
                    result.count_error("garbled")
                pending.pop(rid, None)
                result.completed += 1
                inflight -= 1
                sent_at = sampled.pop(rid, None)
                if sent_at is not None:
                    result.latencies_ms.append(
                        (now - sent_at) * 1000.0)
            wake.set()

    try:
        writer.write(binproto.MAGIC_LINE)
        await writer.drain()
    except (ConnectionError, OSError):
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        return position, next_id, 0

    reader_task = asyncio.ensure_future(read_replies())
    loop = asyncio.get_running_loop()
    watchdog = loop.call_at(
        loop.time() + max(0.0, deadline - time.perf_counter()),
        wake.set)
    pack_rid = struct.Struct("<I").pack
    try:
        while not closed and time.perf_counter() < deadline:
            if inflight >= pipeline:
                wake.clear()
                if not closed and time.perf_counter() < deadline:
                    await wake.wait()
                continue
            burst = bytearray()
            limit = 1 if send_interval > 0 else pipeline - inflight
            for _ in range(limit):
                next_id += 1
                rid = next_id & 0xFFFFFFFF
                if next_id % latency_sample == 0:
                    sampled[rid] = time.perf_counter()
                if expected is not None:
                    pending[rid] = position % n
                burst += prefix
                burst += pack_rid(rid)
                burst += tails[position % n]
                position += batch_size
            inflight += limit
            result.sent += limit
            try:
                writer.write(bytes(burst))
                await writer.drain()
            except (ConnectionError, OSError):
                closed = True
                break
            if send_interval > 0:
                await asyncio.sleep(send_interval)
        drain_deadline = time.perf_counter() + 5.0
        while inflight > 0 and not closed \
                and time.perf_counter() < drain_deadline:
            await asyncio.sleep(0.005)
    finally:
        watchdog.cancel()
        reader_task.cancel()
        try:
            await reader_task
        except (asyncio.CancelledError, ConnectionError, OSError):
            pass
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    if unsupported:
        raise _BinaryUnsupported
    return position, next_id, max(0, inflight)


async def _drive_connection(host: str, port: int,
                            pairs: Sequence[tuple],
                            expected: "Sequence[bool] | None",
                            frames: "list[bytes] | None",
                            tails: "list[bytes] | None", offset: int,
                            deadline: float, pipeline: int,
                            batch_size: int, send_interval: float,
                            latency_sample: int,
                            result: LoadgenResult,
                            index: "str | None" = None,
                            prefix: bytes = _bin_prefix(0),
                            trace: bool = False) -> None:
    """One logical connection: reconnects after drops until the
    deadline, so the generator keeps measuring through faults.

    ``tails`` selects the binary session; a server that turns out to be
    JSON-only ends the connection for good (reconnecting could never
    succeed) after tallying ``binary_unsupported``.
    """
    position = offset
    next_id = offset * 1_000_000  # distinct id spaces per connection
    reconnect_delay = 0.02
    first = True
    while time.perf_counter() < deadline:
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except (ConnectionError, OSError):
            result.count_error("connect_failed")
            await asyncio.sleep(min(
                reconnect_delay, max(0.0,
                                     deadline - time.perf_counter())))
            reconnect_delay = min(reconnect_delay * 2, 0.5)
            continue
        if not first:
            result.reconnects += 1
        first = False
        reconnect_delay = 0.02
        if tails is not None:
            try:
                position, next_id, lost = await _drive_session_binary(
                    reader, writer, pairs, expected, tails, position,
                    next_id, deadline, pipeline, batch_size,
                    send_interval, latency_sample, result, prefix)
            except _BinaryUnsupported:
                result.count_error("binary_unsupported")
                return
        else:
            position, next_id, lost = await _drive_session(
                reader, writer, pairs, expected, frames, position,
                next_id, deadline, pipeline, batch_size, send_interval,
                latency_sample, result, index, trace)
        if time.perf_counter() >= deadline:
            break
        # The session ended early: the server dropped us.  Anything
        # still in flight is lost — tally and reconnect.
        if lost:
            result.count_error("reset", lost)
            result.completed += lost
        await asyncio.sleep(0.01)


def _binary_tails(pairs: Sequence[tuple],
                  batch_size: int) -> list[bytes]:
    """Per-start-position ``(payload_len, crc32, payload)`` frame tails.

    The pair pool is packed once into a doubled ``(u32, u32)`` byte
    string so any wrapping window of ``batch_size`` pairs is one
    contiguous slice; position ``s``'s tail carries the pairs
    ``pairs[s % n] .. pairs[(s + batch_size - 1) % n]``.
    """
    n = len(pairs)
    flat: list[int] = []
    for u, v in pairs:
        flat.append(u)
        flat.append(v)
    try:
        pool = struct.pack(f"<{2 * n}I", *flat)
    except struct.error:
        raise ValueError(
            "binary protocol needs integer node ids in [0, 2**32); "
            "the pair pool contains ids outside that range") from None
    reps = 1 + (batch_size + n - 1) // n  # windows may wrap > once
    view = memoryview(pool * reps)
    plen = 8 * batch_size
    size = struct.Struct("<II")
    return [
        size.pack(plen, zlib.crc32(view[8 * s:8 * s + plen]))
        + bytes(view[8 * s:8 * s + plen])
        for s in range(n)]


def _prepare_stream(host: str, port: int, pairs: Sequence[tuple],
                    connections: int, pipeline: int,
                    batch_size: int, rate: float | None,
                    expected: "Sequence[bool] | None",
                    latency_sample: int, protocol: str,
                    index: "str | int | None",
                    result: LoadgenResult,
                    trace: bool = False):
    """Precompute one stream's frames and return a factory that makes
    its connection coroutines for a given deadline (shared by the
    single and the mix runners).

    Precomputes the invariant part of every request ONCE, before the
    clock starts — the senders then only splice the id in front.
    Built per connection this serialization work scales with the
    connection count and eats the measurement window; callers take
    their start timestamp AFTER this returns.
    """
    # Open-loop pacing: a target aggregate request rate splits evenly
    # into per-connection send intervals; rate=None sends at will.
    send_interval = (connections / rate) if rate else 0.0
    frames: list[bytes] | None = None
    tails: list[bytes] | None = None
    prefix = _bin_prefix(0)
    json_index: str | None = None
    if protocol == "binary":
        tails = _binary_tails(pairs, batch_size)
        prefix = _bin_prefix(int(index or 0))
    else:
        json_index = index  # type: ignore[assignment]
        if batch_size == 1 and not trace:
            # Traced requests each carry a fresh client-minted id, so
            # they cannot use the precomputed-frame fast path.
            head = {"verb": "query"}
            if index is not None:
                head["index"] = index
            frames = [
                json.dumps(dict(head, u=u, v=v),
                           separators=(",", ":"))[1:].encode() + b"\n"
                for u, v in pairs]
    stride = max(1, len(pairs) // max(1, connections))

    def make_tasks(deadline: float) -> list:
        return [
            _drive_connection(host, port, pairs, expected, frames,
                              tails, i * stride, deadline, pipeline,
                              batch_size, send_interval,
                              latency_sample, result, json_index,
                              prefix, trace)
            for i in range(connections)]

    return make_tasks


async def _run(host: str, port: int, pairs: Sequence[tuple],
               connections: int, duration: float, pipeline: int,
               batch_size: int, rate: float | None,
               expected: "Sequence[bool] | None",
               latency_sample: int, protocol: str,
               index: "str | int | None",
               trace: bool = False) -> LoadgenResult:
    result = LoadgenResult(connections=connections, pipeline=pipeline,
                           batch_size=batch_size,
                           duration_seconds=duration,
                           latency_sample=latency_sample, index=index)
    make_tasks = _prepare_stream(
        host, port, pairs, connections, pipeline, batch_size, rate,
        expected, latency_sample, protocol, index, result, trace)
    started = time.perf_counter()
    await asyncio.gather(*make_tasks(started + duration))
    result.duration_seconds = time.perf_counter() - started
    return result


async def _run_mix(host: str, port: int, streams: Sequence[dict],
                   duration: float,
                   results: "list[LoadgenResult]") -> None:
    factories = [
        _prepare_stream(
            host, port, spec["pairs"], result.connections,
            result.pipeline, result.batch_size, spec.get("rate"),
            spec.get("expected"), result.latency_sample,
            spec.get("protocol", "json"), spec.get("index"), result,
            spec.get("trace", False))
        for spec, result in zip(streams, results)]
    started = time.perf_counter()
    deadline = started + duration
    tasks: list = []
    for make_tasks in factories:
        tasks.extend(make_tasks(deadline))
    await asyncio.gather(*tasks)
    elapsed = time.perf_counter() - started
    for result in results:
        result.duration_seconds = elapsed


def _validate_stream(pairs: Sequence[tuple], connections: int,
                     pipeline: int, batch_size: int,
                     latency_sample: int, protocol: str,
                     expected: "Sequence[bool] | None",
                     index: "str | int | None",
                     trace: bool = False) -> None:
    if trace and protocol == "binary":
        raise ValueError(
            "traced loadgen speaks the json protocol (binary trace "
            "frames need per-connection negotiation; use "
            "BinaryReachClient(trace=True) for that path)")
    if not pairs:
        raise ValueError("loadgen needs a non-empty pair pool")
    if protocol not in ("json", "binary"):
        raise ValueError(
            f"protocol must be 'json' or 'binary', got {protocol!r}")
    if connections < 1 or pipeline < 1 or batch_size < 1:
        raise ValueError(
            "connections, pipeline, and batch_size must be >= 1")
    if latency_sample < 1:
        raise ValueError(
            f"latency_sample must be >= 1, got {latency_sample}")
    if expected is not None and len(expected) != len(pairs):
        raise ValueError(
            f"expected answers ({len(expected)}) must align with the "
            f"pair pool ({len(pairs)})")
    if index is not None:
        if protocol == "binary":
            if not isinstance(index, int) or not 0 <= index <= 0xFFFF:
                raise ValueError(
                    "the binary protocol addresses catalog entries by "
                    f"numeric id in [0, 65535], got {index!r} (resolve "
                    "the name via the catalog list verb first)")
        elif not isinstance(index, str):
            raise ValueError(
                "the json protocol addresses catalog entries by name, "
                f"got {index!r}")


def run_loadgen(host: str, port: int, pairs: Sequence[tuple], *,
                connections: int = 8, duration: float = 2.0,
                pipeline: int = 4, batch_size: int = 1,
                rate: float | None = None,
                expected: "Sequence[bool] | None" = None,
                latency_sample: int = 1,
                protocol: str = "json",
                index: "str | int | None" = None,
                trace: bool = False) -> LoadgenResult:
    """Drive the gateway at ``host:port`` and return the aggregate.

    Parameters
    ----------
    pairs:
        Query pool; each connection cycles through it from a distinct
        offset.
    connections:
        Concurrent TCP connections.
    duration:
        Seconds to keep sending.
    pipeline:
        Max in-flight requests per connection (the open-loop window).
    batch_size:
        Pairs per request: ``1`` sends ``query`` verbs, larger values
        send ``batch`` verbs of that many pairs.
    rate:
        Optional aggregate requests/second pacing target.
    expected:
        Optional ground-truth answers aligned with ``pairs``; when
        given, every reply is differentially verified and mismatches
        are counted in ``LoadgenResult.wrong_answers``.
    latency_sample:
        Record the client-side latency of every Nth request.  The
        default ``1`` times every request (unbiased percentiles);
        larger values trade percentile fidelity — especially at the
        tail, where 1-in-N sampling sees few of the extreme values —
        for one fewer timestamp dict write per skipped request.
    protocol:
        ``"json"`` (default) speaks newline-JSON verbs; ``"binary"``
        negotiates :mod:`repro.server.binproto` framing and sends
        struct-packed pair batches.  With ``expected``, binary answer
        bitmaps are differentially verified exactly like JSON replies.
    index:
        Target catalog entry: a tenant *name* for the JSON protocol,
        the numeric catalog *id* for the binary protocol (whose frame
        header carries a u16 id, not a name).  ``None`` drives the
        default index, exactly as before.
    trace:
        Stamp every JSON request with a client-minted trace id
        (``lg-<id>``), exercising the end-to-end trace-propagation
        path: the id is echoed in replies and lands in the server's
        slow-query log, stage exemplars, and flight recorder.
    """
    _validate_stream(pairs, connections, pipeline, batch_size,
                     latency_sample, protocol, expected, index, trace)
    return asyncio.run(_run(host, port, list(pairs), connections,
                            duration, pipeline, batch_size, rate,
                            expected, latency_sample, protocol,
                            index, trace))


def run_loadgen_mix(host: str, port: int, streams: Sequence[dict], *,
                    duration: float = 2.0) -> list[LoadgenResult]:
    """Drive several tenants concurrently from one event loop.

    Each ``streams`` entry is a dict with the same knobs as
    :func:`run_loadgen` — required ``pairs``; optional ``index``,
    ``connections`` (default 4), ``pipeline`` (default 4),
    ``batch_size`` (default 1), ``rate``, ``expected``,
    ``latency_sample`` (default 1), and ``protocol`` (default
    ``"json"``) — and gets its own :class:`LoadgenResult` (returned in
    stream order, each tagged with its ``index``).  All streams share
    one deadline, so the mix measures true concurrent cross-tenant
    traffic: this is the primitive the isolation soak uses to overload
    tenant A while differentially verifying tenant B's answers.
    """
    if not streams:
        raise ValueError("loadgen mix needs at least one stream")
    results: list[LoadgenResult] = []
    prepared: list[dict] = []
    for spec in streams:
        spec = dict(spec)
        spec["pairs"] = list(spec.get("pairs") or ())
        connections = spec.get("connections", 4)
        pipeline = spec.get("pipeline", 4)
        batch_size = spec.get("batch_size", 1)
        latency_sample = spec.get("latency_sample", 1)
        _validate_stream(spec["pairs"], connections, pipeline,
                         batch_size, latency_sample,
                         spec.get("protocol", "json"),
                         spec.get("expected"), spec.get("index"),
                         spec.get("trace", False))
        results.append(LoadgenResult(
            connections=connections, pipeline=pipeline,
            batch_size=batch_size, duration_seconds=duration,
            latency_sample=latency_sample, index=spec.get("index")))
        prepared.append(spec)
    asyncio.run(_run_mix(host, port, prepared, duration, results))
    return results
