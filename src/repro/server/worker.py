"""One fleet worker process: attach shared labels, serve, obey swaps.

:func:`worker_main` is the child-process entry point the
:class:`~repro.server.router.WorkerFleet` spawns ``N`` times.  Each
worker

* attaches the current index generation from the parent's
  shared-memory segment (:mod:`repro.core.shm`) instead of rebuilding
  — N workers share one build;
* runs a regular :class:`~repro.server.server.ReachServer` on the
  fleet's shared port with ``SO_REUSEPORT``, so the kernel spreads
  incoming connections across the listening workers (accept sharding
  — no userspace router process sits on the query hot path);
* reports per-process metrics with a ``worker="<id>"`` constant label
  (``ServerConfig.worker_label``);
* delegates the ``reload`` verb to the parent over its control pipe:
  the parent rebuilds once, publishes the next generation, and
  commands every worker to swap, so the whole fleet moves together.

Control-plane protocol (tuples over one duplex pipe per worker):

========================================  ===========================
worker → parent                           meaning
========================================  ===========================
``("ready", wid, port)``                  listening, fleet may count
                                          this worker as up
``("reload", wid, token, payload)``       a client asked this worker
                                          to reload; parent must
                                          answer ``reload_result``
``("catalog", wid, token, payload)``      a client sent this worker a
                                          mutating catalog op; parent
                                          must answer
                                          ``catalog_result``
``("swap_ok", wid, segment)``             the commanded generation is
                                          installed and serving
``("swap_err", wid, segment, error)``     attach failed — the worker
                                          keeps its last good index
                                          and reports degraded
``("pong", wid, seq)``                    liveness-probe answer
``("scrape_result", wid, token, text)``   this worker's Prometheus
                                          exposition (answers a
                                          ``scrape``; merged into the
                                          parent's fleet-wide
                                          ``/metrics``)
``("attach_failed", wid, error)`` /
``("start_failed", wid, error)``          startup failed; the worker
                                          exits non-zero and the
                                          fleet supervisor respawns
========================================  ===========================

========================================  ===========================
parent → worker                           meaning
========================================  ===========================
``("swap", segment, scheme, index_id)``   attach ``segment`` and
                                          atomically install it into
                                          catalog entry ``index_id``
                                          (0 = the default index)
``("reload_result", token, ok, doc)``     outcome of a forwarded
                                          reload (``doc`` is the
                                          summary dict or an error
                                          string)
``("catalog_result", token, ok, doc)``    outcome of a forwarded
                                          catalog op (``doc`` is the
                                          result dict, or a
                                          ``code``/``message`` dict)
``("catalog_create", spec)``              register a new empty tenant
                                          entry locally
``("catalog_drop", name)``                drop a tenant entry and
                                          drain its lanes
``("catalog_quota", name, quota)``        replace a tenant entry's
                                          admission quota locally
                                          (already journaled by the
                                          parent)
``("scrape", token)``                     answer with this worker's
                                          metrics exposition as
                                          ``scrape_result``
``("ping", seq)``                         liveness probe — a worker
                                          that stays silent past the
                                          probe timeout is killed
                                          and respawned
``("stop",)``                             graceful shutdown
========================================  ===========================

Ordering matters: on a fleet reload the parent sends each worker its
``swap`` *before* the requester's ``reload_result``, and a pipe is
FIFO, so by the time a worker answers its client the new generation is
already installed locally — no client can observe a success reply and
then an old-generation answer on the same connection.

Every query flush inside a worker snapshots one service generation
(see ``ReachServer``), so no micro-batch ever mixes generations even
mid-swap.
"""

from __future__ import annotations

import asyncio
import itertools
import sys
from functools import partial

from repro.core.service import QueryService
from repro.exceptions import CorruptIndexError, ReproError
from repro.server import protocol
from repro.server.protocol import ProtocolError
from repro.server.server import ReachServer, ServerConfig
from repro.server.tenancy import TenantQuota

__all__ = ["worker_main"]

#: Seconds a forwarded reload may wait for the parent's verdict.
RELOAD_TIMEOUT = 120.0


def worker_main(worker_id: int, segment: str, scheme: str, host: str,
                port: int, options: dict, conn) -> None:
    """Child-process entry point (must stay importable for ``spawn``).

    ``options`` carries picklable :class:`ServerConfig` keyword
    arguments plus ``service_options`` for the attach path; ``conn``
    is this worker's end of the control pipe.
    """
    try:
        code = asyncio.run(_worker_async(
            worker_id, segment, scheme, host, port, options, conn))
    except KeyboardInterrupt:  # pragma: no cover - ^C races shutdown
        code = 0
    sys.exit(code)


async def _worker_async(worker_id: int, segment: str, scheme: str,
                        host: str, port: int, options: dict,
                        conn) -> int:
    loop = asyncio.get_running_loop()
    options = dict(options)
    service_options = options.pop("service_options", {})
    reload_timeout = options.pop("reload_timeout", RELOAD_TIMEOUT)
    tenant_specs = options.pop("tenants", [])
    default_generation = options.pop("default_generation", 0)

    try:
        service = QueryService.from_shared_memory(segment,
                                                  **service_options)
    except (FileNotFoundError, CorruptIndexError, OSError) as exc:
        _send(conn, ("attach_failed", worker_id,
                     f"{type(exc).__name__}: {exc}"))
        return 1

    pending: dict[int, asyncio.Future] = {}
    tokens = itertools.count()
    stop_event = asyncio.Event()

    async def delegate_reload(payload: dict) -> dict:
        token = next(tokens)
        future: asyncio.Future = loop.create_future()
        pending[token] = future
        _send(conn, ("reload", worker_id, token, dict(payload)))
        try:
            return await asyncio.wait_for(future, reload_timeout)
        except (asyncio.TimeoutError, TimeoutError):
            server.note_degraded(
                f"fleet reload timed out after {reload_timeout}s")
            raise ProtocolError(
                protocol.ERR_RELOAD_FAILED,
                f"fleet reload timed out after {reload_timeout}s")
        except ProtocolError as exc:
            # Match the single-server contract: a failed reload leaves
            # this worker degraded on its last good index until the
            # next successful fleet swap clears it.
            server.note_degraded(exc.message)
            raise
        finally:
            pending.pop(token, None)

    async def delegate_catalog(payload: dict) -> dict:
        # The mutating-catalog twin of delegate_reload.  No degraded
        # marking on failure: a tenant op that fails leaves the
        # default index (and every other tenant) fully healthy.
        token = next(tokens)
        future: asyncio.Future = loop.create_future()
        pending[token] = future
        _send(conn, ("catalog", worker_id, token, dict(payload)))
        try:
            return await asyncio.wait_for(future, reload_timeout)
        except (asyncio.TimeoutError, TimeoutError):
            raise ProtocolError(
                protocol.ERR_RELOAD_FAILED,
                f"fleet catalog op timed out after {reload_timeout}s")
        finally:
            pending.pop(token, None)

    config = ServerConfig(host=host, port=port, reuse_port=True,
                          worker_label=str(worker_id),
                          reload_handler=delegate_reload,
                          catalog_handler=delegate_catalog,
                          service_options=dict(service_options),
                          **options)
    server = ReachServer(service, scheme=scheme, config=config)
    if default_generation:
        # Mirror the parent's (possibly journal-restored) default
        # generation; later fleet swaps bump it in lockstep with the
        # parent's durable +1s.
        server.catalog.default.generation = default_generation

    def attach_tenant(spec: dict) -> None:
        """Register (and, when published, attach) one tenant entry."""
        quota = TenantQuota(**(spec.get("quota") or {}))
        entry = server.catalog.create(
            spec["name"], scheme=spec["scheme"], quota=quota,
            index_id=spec["index_id"])
        seg = spec.get("segment")
        if seg is None:
            # Registered but empty: queries answer unknown_index.  A
            # durable fleet still reports the entry's journal
            # generation in `catalog list`.
            if spec.get("generation"):
                entry.generation = spec["generation"]
            return
        tenant_service = QueryService.from_shared_memory(
            seg, **service_options)
        label = server.catalog.check_budget(entry, tenant_service.index)
        server.catalog.install(entry, tenant_service,
                               scheme=spec["scheme"],
                               label_bytes=label)
        if spec.get("generation"):
            # Resume the parent's (possibly journal-restored)
            # generation count instead of this process's install tally,
            # so every worker reports the same fleet-wide number.
            entry.generation = spec["generation"]

    try:
        for tenant_spec in tenant_specs:
            attach_tenant(tenant_spec)
    except (FileNotFoundError, CorruptIndexError, OSError,
            ReproError) as exc:
        _send(conn, ("attach_failed", worker_id,
                     f"{type(exc).__name__}: {exc}"))
        return 1

    async def do_swap(new_segment: str, new_scheme: str,
                      index_id: int = 0) -> None:
        try:
            new_service = await loop.run_in_executor(
                None, partial(QueryService.from_shared_memory,
                              new_segment, **service_options))
        except (FileNotFoundError, CorruptIndexError, OSError) as exc:
            # Keep answering from the last good generation and say so
            # (a failed *tenant* attach degrades only that entry's
            # freshness, not this worker's default index).
            if index_id == 0:
                server.note_degraded(f"{type(exc).__name__}: {exc}")
            _send(conn, ("swap_err", worker_id, new_segment,
                         f"{type(exc).__name__}: {exc}"))
            return
        if index_id == 0:
            server.install_service(new_service, new_scheme)
        else:
            try:
                entry = server.catalog.lookup_id(index_id)
            except ProtocolError as exc:
                # Unknown locally (a create raced this worker's
                # respawn): swap_err makes the parent kill us, and the
                # respawn manifest carries the full current catalog.
                _send(conn, ("swap_err", worker_id, new_segment,
                             exc.message))
                new_service.close()
                return
            server.install_tenant(entry, new_service,
                                  scheme=new_scheme)
        _send(conn, ("swap_ok", worker_id, new_segment))

    async def do_drop(name: str) -> None:
        try:
            await server.drop_tenant(name)
        except ProtocolError:
            pass  # already gone (a respawn raced the broadcast)

    def handle_control() -> None:
        try:
            while conn.poll():
                message = conn.recv()
                kind = message[0]
                if kind == "swap":
                    _, new_segment, new_scheme, index_id = message
                    loop.create_task(do_swap(new_segment, new_scheme,
                                             index_id))
                elif kind == "reload_result":
                    _, token, ok, doc = message
                    future = pending.get(token)
                    if future is None or future.done():
                        continue
                    if ok:
                        future.set_result(doc)
                    else:
                        future.set_exception(ProtocolError(
                            protocol.ERR_RELOAD_FAILED, str(doc)))
                elif kind == "catalog_result":
                    _, token, ok, doc = message
                    future = pending.get(token)
                    if future is None or future.done():
                        continue
                    if ok:
                        future.set_result(doc)
                    else:
                        future.set_exception(ProtocolError(
                            doc.get("code",
                                    protocol.ERR_RELOAD_FAILED),
                            doc.get("message", "catalog op failed")))
                elif kind == "catalog_create":
                    _, spec = message
                    try:
                        server.catalog.create(
                            spec["name"], scheme=spec["scheme"],
                            quota=TenantQuota(**(spec.get("quota")
                                                 or {})),
                            index_id=spec["index_id"])
                    except ProtocolError:
                        pass  # already registered (spawn manifest)
                elif kind == "catalog_drop":
                    loop.create_task(do_drop(message[1]))
                elif kind == "catalog_quota":
                    _, name, quota_doc = message
                    try:
                        server.catalog.update_quota(
                            server.catalog.lookup(name),
                            TenantQuota(**(quota_doc or {})))
                    except ProtocolError:
                        pass  # dropped locally (a respawn raced this)
                elif kind == "scrape":
                    # Fleet-wide /metrics: the parent merges every
                    # worker's exposition into one scrape document.
                    _send(conn, ("scrape_result", worker_id,
                                 message[1],
                                 server.metrics_exposition()))
                elif kind == "ping":
                    # Liveness probe: answered inline on the event
                    # loop, so a wedged/SIGSTOPped worker goes silent
                    # and the fleet supervisor replaces it.
                    _send(conn, ("pong", worker_id, message[1]))
                elif kind == "stop":
                    stop_event.set()
        except (EOFError, OSError):
            # The parent is gone: there is nothing to serve for.
            stop_event.set()

    try:
        await server.start()
    except Exception as exc:  # bind/executor failures -> respawn
        _send(conn, ("start_failed", worker_id,
                     f"{type(exc).__name__}: {exc}"))
        return 1

    loop.add_reader(conn.fileno(), handle_control)
    _send(conn, ("ready", worker_id, server.port))
    try:
        await stop_event.wait()
    finally:
        loop.remove_reader(conn.fileno())
        await server.stop()
        _send(conn, ("bye", worker_id))
    return 0


def _send(conn, message: tuple) -> None:
    """Best-effort control-plane send (a dead parent is not an
    error a worker can do anything about)."""
    try:
        conn.send(message)
    except (BrokenPipeError, OSError):
        pass
