"""Crash flight recorder: the last seconds before a fault, on disk.

A :class:`FlightRecorder` is an always-on, fixed-size, lock-free ring
of recent serving events — request completions worth keeping (traced,
slow, errored, or span-sampled), admission sheds, catalog mutations,
swaps, degraded transitions, worker lifecycle — cheap enough to leave
recording in production.  Writes are a single list-item assignment
guarded by the GIL (no lock, no allocation beyond the event tuple), so
the hot path pays nanoseconds and a wedged thread can never block a
recorder elsewhere.

Getting the ring *out* survives even SIGKILL: besides explicit dumps
(degraded-mode entry, supervisor respawn, fatal signals, the ``flight``
verb), a background spiller thread rewrites
``<dir>/flight-<label>-current.jsonl`` about once a second via
write-to-temp + atomic rename whenever the ring has moved.  After a
power loss the current file is at most one interval stale, so the
pre-kill window is readable offline; on the next boot
:func:`archive_current_dumps` renames the stale current files to
``*-prior-N.jsonl`` before any new recorder starts, and the
crash-restart chaos harness replays them into its report.

Dump format — one JSON object per line:

* line 1: a header ``{"kind": "flight_header", "label": ..., "pid":
  ..., "reason": ..., "dumped_at": ...}``;
* each following line: an event ``{"seq": N, "ts": <epoch seconds>,
  "kind": ..., ...fields}``, strictly increasing ``seq``.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Any, Iterator

__all__ = [
    "FlightRecorder",
    "archive_current_dumps",
    "load_dump",
    "scan_dumps",
]


class FlightRecorder:
    """Fixed-size lock-free ring of recent serving events."""

    def __init__(self, capacity: int = 2048, *,
                 label: str = "srv") -> None:
        if capacity < 8:
            raise ValueError("flight recorder capacity must be >= 8")
        self.capacity = capacity
        self.label = label
        self._ring: list = [None] * capacity
        # itertools.count() is GIL-atomic: concurrent recorders get
        # distinct slots without a lock.
        self._seq = itertools.count()
        self._spiller: threading.Thread | None = None
        self._spill_dir: str | None = None
        self._spill_interval = 1.0
        self._stop = threading.Event()
        self._spilled_seq = -1
        self.dumps = 0

    # -- recording ------------------------------------------------------
    def record(self, kind: str, **fields: Any) -> None:
        """Append one event (hot path: one counter, one assignment)."""
        seq = next(self._seq)
        self._ring[seq % self.capacity] = (seq, time.time(), kind,
                                           fields)

    def snapshot(self) -> list[dict]:
        """The ring's surviving events, oldest first.

        Taken without a lock: a concurrent writer may replace a slot
        mid-copy, which shows up as a *newer* event, never a torn one
        (tuples are immutable once assigned).
        """
        events = [slot for slot in list(self._ring) if slot is not None]
        events.sort(key=lambda slot: slot[0])
        return [{"seq": seq, "ts": ts, "kind": kind, **fields}
                for seq, ts, kind, fields in events]

    @property
    def last_seq(self) -> int:
        """Sequence of the most recently recorded event (-1: none)."""
        return self._peek_seq()

    def _peek_seq(self) -> int:
        newest = -1
        for slot in self._ring:
            if slot is not None and slot[0] > newest:
                newest = slot[0]
        return newest

    # -- dumping --------------------------------------------------------
    def _write_dump(self, path: str, reason: str) -> None:
        events = self.snapshot()
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            header = {"kind": "flight_header", "label": self.label,
                      "pid": os.getpid(), "reason": reason,
                      "capacity": self.capacity,
                      "events": len(events), "dumped_at": time.time()}
            fh.write(json.dumps(header, separators=(",", ":")) + "\n")
            for event in events:
                fh.write(json.dumps(event, separators=(",", ":"),
                                    default=str) + "\n")
        os.replace(tmp, path)

    def dump(self, directory: str | None = None, *,
             reason: str = "manual") -> str | None:
        """Write a standalone dump file; returns its path.

        ``directory`` defaults to the spill directory; with neither,
        the dump is silently skipped (recorder without a state dir).
        """
        directory = directory or self._spill_dir
        if directory is None:
            return None
        os.makedirs(directory, exist_ok=True)
        stamp = int(time.time() * 1000)
        path = os.path.join(
            directory,
            f"flight-{self.label}-{stamp}-{reason}.jsonl")
        try:
            self._write_dump(path, reason)
        except OSError:
            return None
        self.dumps += 1
        return path

    # -- background spiller ---------------------------------------------
    def start_spiller(self, directory: str,
                      interval: float = 1.0) -> None:
        """Keep ``flight-<label>-current.jsonl`` at most ``interval``
        seconds stale (idempotent; daemon thread)."""
        if self._spiller is not None:
            return
        os.makedirs(directory, exist_ok=True)
        self._spill_dir = directory
        self._spill_interval = interval
        self._stop.clear()
        self._spiller = threading.Thread(
            target=self._spill_loop, name=f"flight-{self.label}",
            daemon=True)
        self._spiller.start()

    def stop_spiller(self, *, final_dump: bool = True) -> None:
        if self._spiller is None:
            return
        self._stop.set()
        self._spiller.join(timeout=5.0)
        self._spiller = None
        if final_dump:
            self._spill_once()

    def _current_path(self) -> str | None:
        if self._spill_dir is None:
            return None
        return os.path.join(self._spill_dir,
                            f"flight-{self.label}-current.jsonl")

    def _spill_once(self) -> None:
        path = self._current_path()
        if path is None:
            return
        newest = self._peek_seq()
        if newest <= self._spilled_seq:
            return
        try:
            self._write_dump(path, "spill")
        except OSError:
            return
        self._spilled_seq = newest

    def _spill_loop(self) -> None:
        # First spill immediately: an incarnation SIGKILLed inside the
        # first interval still leaves its boot window on disk.
        self._spill_once()
        while not self._stop.wait(self._spill_interval):
            self._spill_once()


# -- offline readers -----------------------------------------------------

def load_dump(path: str) -> dict:
    """Parse one dump file into ``{"path", "header", "events"}``.

    Raises
    ------
    ValueError
        On a missing/odd header or out-of-order event sequence — the
        chaos harness treats that as a failed acceptance gate.
    """
    header: dict | None = None
    events: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            doc = json.loads(line)
            if lineno == 1:
                if doc.get("kind") != "flight_header":
                    raise ValueError(
                        f"{path}: first line is not a flight_header")
                header = doc
                continue
            events.append(doc)
    if header is None:
        raise ValueError(f"{path}: empty dump (no header)")
    last = -1
    for event in events:
        seq = event.get("seq")
        if not isinstance(seq, int) or seq <= last:
            raise ValueError(
                f"{path}: event seq out of order ({seq} after {last})")
        last = seq
    return {"path": path, "header": header, "events": events}


def scan_dumps(directory: str) -> list[dict]:
    """Every parseable dump under ``directory``, oldest file first."""
    if not os.path.isdir(directory):
        return []
    out = []
    for name in sorted(os.listdir(directory)):
        if not name.startswith("flight-") or not name.endswith(".jsonl"):
            continue
        path = os.path.join(directory, name)
        try:
            out.append(load_dump(path))
        except (OSError, ValueError, json.JSONDecodeError):
            out.append({"path": path, "header": None, "events": [],
                        "error": "unparseable"})
    return out


def archive_current_dumps(directory: str) -> list[str]:
    """Rename stale ``*-current.jsonl`` files from a prior incarnation
    to ``*-prior-N.jsonl`` so new recorders start clean; returns the
    archived paths."""
    if not os.path.isdir(directory):
        return []
    archived = []
    for name in sorted(os.listdir(directory)):
        if not name.endswith("-current.jsonl"):
            continue
        stem = name[:-len("-current.jsonl")]
        n = 0
        while True:
            target = os.path.join(directory,
                                  f"{stem}-prior-{n}.jsonl")
            if not os.path.exists(target):
                break
            n += 1
        try:
            os.replace(os.path.join(directory, name), target)
        except OSError:
            continue
        archived.append(target)
    return archived
