"""End-to-end observability smoke check (``repro-reach metrics-smoke``).

Starts a real gateway on an ephemeral port with the HTTP scrape
endpoint enabled, drives a little traced traffic through it, then
verifies the whole observability surface from the outside:

* ``GET /metrics`` answers with the Prometheus content type and a
  text exposition that :func:`repro.obs.prometheus.parse_exposition`
  accepts (well-formed families, cumulative buckets);
* the ``metrics`` protocol verb returns the same exposition;
* every metric family the docs promise
  (:data:`REQUIRED_FAMILIES`) is present;
* the ``stats`` verb carries the per-stage percentile blocks and a
  populated slow-query log with trace IDs.

Used by the CI metrics-smoke step; kept dependency-free (stdlib
``urllib`` only) so it runs anywhere the package does.
"""

from __future__ import annotations

import urllib.request
from dataclasses import dataclass, field

__all__ = ["REQUIRED_FAMILIES", "MetricsSmokeReport", "run_metrics_smoke"]

#: Metric families the smoke run must observe in the exposition —
#: the contract documented in docs/OBSERVABILITY.md.
REQUIRED_FAMILIES = (
    "reach_connections_total",
    "reach_requests_total",
    "reach_request_seconds",
    "reach_stage_seconds",
    "reach_index_swaps_total",
    "reach_degraded",
    "reach_batcher_flushes_total",
    "reach_batcher_in_flight_pairs",
    "reach_service_queries_total",
    "reach_service_batch_seconds",
)


@dataclass
class MetricsSmokeReport:
    """Outcome of one :func:`run_metrics_smoke` run."""

    checks: list[tuple[str, bool, str]] = field(default_factory=list)

    def add(self, name: str, ok: bool, detail: str = "") -> None:
        self.checks.append((name, ok, detail))

    @property
    def ok(self) -> bool:
        return all(ok for _, ok, _ in self.checks)

    def summary_lines(self) -> list[str]:
        lines = []
        for name, ok, detail in self.checks:
            mark = "ok" if ok else "FAILED"
            lines.append(f"  {name:34s} {mark}"
                         + (f"  ({detail})" if detail else ""))
        verdict = ("metrics-smoke: every check passed ✔" if self.ok
                   else "metrics-smoke: FAILED")
        return [*lines, verdict]


def run_metrics_smoke(nodes: int = 200, seed: int = 0) -> MetricsSmokeReport:
    """Run the end-to-end observability smoke check.

    Everything runs in-process (server on a background thread, client
    over real sockets), so a green report means the scrape endpoint,
    the ``metrics``/``stats`` verbs, and request tracing all work
    against live traffic — not just in unit isolation.
    """
    from repro.core.base import build_index
    from repro.core.service import QueryService
    from repro.graph.generators import single_rooted_dag
    from repro.obs.prometheus import CONTENT_TYPE, parse_exposition
    from repro.server.client import ReachClient
    from repro.server.server import ReachServer, ServerConfig, ServerThread

    report = MetricsSmokeReport()
    graph = single_rooted_dag(nodes, 2 * nodes, seed=seed)
    index = build_index(graph, scheme="dual-ii")
    config = ServerConfig(port=0, metrics_port=0)
    server = ReachServer(QueryService(index), scheme="dual-ii",
                         config=config)
    thread = ServerThread(server).start()
    try:
        node_list = sorted(graph.nodes())
        with ReachClient("127.0.0.1", server.port, trace=True) as client:
            client.ping()
            client.query(node_list[0], node_list[-1])
            client.query_batch([(node_list[0], node_list[i])
                                for i in range(1, min(32, len(node_list)))])
            stats = client.stats()
            verb_doc = client.metrics()

        url = (f"http://127.0.0.1:{server.metrics_port}/metrics")
        with urllib.request.urlopen(url, timeout=10.0) as response:
            scraped = response.read().decode("utf-8")
            content_type = response.headers.get("Content-Type", "")
        report.add("scrape content-type", content_type == CONTENT_TYPE,
                   content_type)

        for source, text in (("http scrape", scraped),
                             ("metrics verb", verb_doc["exposition"])):
            try:
                families = parse_exposition(text)
            except ValueError as exc:
                report.add(f"{source} exposition valid", False, str(exc))
                continue
            report.add(f"{source} exposition valid", True,
                       f"{len(families)} families")
            missing = [name for name in REQUIRED_FAMILIES
                       if name not in families]
            report.add(f"{source} required families", not missing,
                       "missing: " + ", ".join(missing) if missing
                       else f"all {len(REQUIRED_FAMILIES)} present")

        report.add("metrics verb content-type",
                   verb_doc.get("content_type") == CONTENT_TYPE,
                   str(verb_doc.get("content_type")))
        stages = stats.get("stages", {})
        report.add("stats verb stage percentiles",
                   bool(stages) and all("p99_ms" in block
                                        for block in stages.values()),
                   ", ".join(sorted(stages)) or "no stages recorded")
        slow = stats.get("slow_queries", [])
        report.add("slow-query log traced",
                   bool(slow) and all(entry.get("trace")
                                      for entry in slow),
                   f"{len(slow)} entries")
    finally:
        thread.stop()
    return report
