"""Prometheus text-format exposition (version 0.0.4) over registries.

:func:`render` turns one or more :class:`~repro.obs.metrics
.MetricsRegistry` instances into the plain-text format every Prometheus
scraper understands — ``# HELP``/``# TYPE`` headers, one sample per
line, histograms as cumulative ``_bucket{le=...}`` series plus
``_sum``/``_count``.  The gateway serves this text from the ``metrics``
protocol verb and from the optional HTTP scrape endpoint.

:func:`parse_exposition` is the matching minimal validator: it checks
every line against the exposition grammar and returns the family table,
which is what the ``metrics-smoke`` CI gate and the tests assert
against.  It is *not* a full Prometheus client — it exists so the repo
can prove its own output is well-formed without a third-party
dependency.
"""

from __future__ import annotations

import re
from typing import Any, Iterable

from repro.obs.metrics import Histogram, MetricsRegistry, format_bound

__all__ = ["CONTENT_TYPE", "merge_expositions", "parse_exposition",
           "render"]

#: The scrape response content type Prometheus expects.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$")
_LABEL_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*"$')
_VALUE_RE = re.compile(
    r"^(?:[+-]?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?)"
    r"|[+-]?Inf|NaN)$")


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{_escape_label(str(value))}"'
                     for key, value in labels.items())
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_simple(lines: list[str], name: str, kind: str,
                   help_text: str,
                   samples: Iterable[tuple[dict, float]]) -> None:
    if help_text:
        lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} {kind}")
    for labels, value in samples:
        lines.append(f"{name}{_format_labels(labels)} "
                     f"{_format_value(value)}")


def _render_histogram(lines: list[str], name: str,
                      labels: dict[str, str], hist: Histogram,
                      reset: bool = False) -> None:
    snap = hist.snapshot(reset=reset)
    cumulative = 0
    for bound in hist.bounds:
        cumulative += snap["buckets"][format_bound(bound)]
        bucket_labels = dict(labels)
        bucket_labels["le"] = format_bound(bound)
        lines.append(f"{name}_bucket{_format_labels(bucket_labels)} "
                     f"{cumulative}")
    bucket_labels = dict(labels)
    bucket_labels["le"] = "+Inf"
    lines.append(f"{name}_bucket{_format_labels(bucket_labels)} "
                 f"{snap['count']}")
    lines.append(f"{name}_sum{_format_labels(labels)} "
                 f"{_format_value(snap['sum'])}")
    lines.append(f"{name}_count{_format_labels(labels)} "
                 f"{snap['count']}")


def render(*registries: MetricsRegistry, reset: bool = False,
           const_labels: dict[str, str] | None = None) -> str:
    """The text exposition of every family in every given registry.

    Families keep registration order within a registry; collector
    output renders after the registered families of its registry.
    With ``reset``, every counter and histogram is *drained* as it is
    rendered (one atomic read-and-zero per child — the ``metrics``
    verb's ``reset=true``); gauges and collector output describe
    current state and are never reset.

    ``const_labels`` are stamped onto every sample of every family —
    the multi-process worker fleet uses ``{"worker": "<id>"}`` so one
    aggregated scrape still attributes queue depth and stage latency
    to the process that produced them.  A per-sample label with the
    same name wins over the constant.
    """
    const = dict(const_labels) if const_labels else {}
    lines: list[str] = []
    for registry in registries:
        for family in registry.families():
            if not _NAME_RE.match(family.name):
                raise ValueError(
                    f"invalid metric name {family.name!r}")
            if family.kind == "histogram":
                if family.help:
                    lines.append(f"# HELP {family.name} {family.help}")
                lines.append(f"# TYPE {family.name} histogram")
                for values, child in family.series():
                    labels = {**const,
                              **dict(zip(family.label_names, values))}
                    _render_histogram(lines, family.name, labels,
                                      child, reset=reset)
            else:
                samples = []
                for values, child in family.series():
                    labels = {**const,
                              **dict(zip(family.label_names, values))}
                    samples.append((labels,
                                    child.snapshot(reset=reset)))
                _render_simple(lines, family.name, family.kind,
                               family.help, samples)
        for extra in registry.collected():
            name = extra["name"]
            if not _NAME_RE.match(name):
                raise ValueError(f"invalid metric name {name!r}")
            _render_simple(lines, name, extra.get("type", "gauge"),
                           extra.get("help", ""),
                           [({**const, **labels}, value)
                            for labels, value in extra["samples"]])
    return "\n".join(lines) + "\n" if lines else ""


def merge_expositions(texts: Iterable[str]) -> str:
    """Merge several expositions into one valid scrape document.

    The fleet parent's ``/metrics`` is built from one exposition per
    worker, each already stamped with its ``worker="<id>"`` const
    label.  Naive concatenation is *invalid* Prometheus text (every
    worker re-declares every ``# TYPE``), so this groups samples by
    family: one ``HELP``/``TYPE`` header per family (first seen wins),
    then every worker's sample lines in input order — the per-worker
    labels keep the series distinct.

    Raises
    ------
    ValueError
        When the same family is declared with conflicting types.
    """
    order: list[str] = []
    seen: set[str] = set()
    helps: dict[str, str] = {}
    types: dict[str, str] = {}
    samples: dict[str, list[str]] = {}

    def note(name: str) -> None:
        if name not in seen:
            seen.add(name)
            order.append(name)

    for text in texts:
        local_types: dict[str, str] = {}
        for line in text.splitlines():
            if not line.strip():
                continue
            if line.startswith("#"):
                parts = line.split(None, 3)
                if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                    raise ValueError(f"malformed comment: {line!r}")
                name = parts[2]
                if parts[1] == "TYPE":
                    kind = parts[3] if len(parts) == 4 else "untyped"
                    local_types[name] = kind
                    previous = types.get(name)
                    if previous is not None and previous != kind:
                        raise ValueError(
                            f"conflicting TYPE for {name}: "
                            f"{previous} vs {kind}")
                    types[name] = kind
                    note(name)
                else:
                    helps.setdefault(name, line)
                continue
            name = line.split("{", 1)[0].split(None, 1)[0]
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                stem = name[:-len(suffix)] if name.endswith(suffix) \
                    else None
                if stem and local_types.get(stem) == "histogram":
                    base = stem
                    break
            note(base)
            samples.setdefault(base, []).append(line)
    lines: list[str] = []
    for name in order:
        help_line = helps.get(name)
        if help_line:
            lines.append(help_line)
        kind = types.get(name)
        if kind is not None:
            lines.append(f"# TYPE {name} {kind}")
        lines.extend(samples.get(name, ()))
    return "\n".join(lines) + "\n" if lines else ""


def parse_exposition(text: str) -> dict[str, dict[str, Any]]:
    """Validate exposition text; return the family table.

    Returns ``{family_name: {"type": ..., "samples": N}}``, where
    histogram ``_bucket``/``_sum``/``_count`` samples count toward
    their base family.

    Raises
    ------
    ValueError
        On any line that violates the text-format grammar, on a
        ``TYPE`` redeclaration, or on a histogram sample set whose
        cumulative bucket counts decrease (buckets must be cumulative).
    """
    families: dict[str, dict[str, Any]] = {}
    types: dict[str, str] = {}
    last_bucket: dict[tuple, float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(
                    f"line {lineno}: malformed comment: {line!r}")
            name = parts[2]
            if not _NAME_RE.match(name):
                raise ValueError(
                    f"line {lineno}: invalid metric name {name!r}")
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in (
                        "counter", "gauge", "histogram", "summary",
                        "untyped"):
                    raise ValueError(
                        f"line {lineno}: invalid TYPE line: {line!r}")
                if name in types:
                    raise ValueError(
                        f"line {lineno}: duplicate TYPE for {name}")
                types[name] = parts[3]
                families.setdefault(name, {"type": parts[3],
                                           "samples": 0})
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(
                f"line {lineno}: malformed sample: {line!r}")
        raw_labels = match.group("labels")
        labels: dict[str, str] = {}
        if raw_labels:
            for pair in _split_labels(raw_labels, lineno):
                if not _LABEL_RE.match(pair):
                    raise ValueError(
                        f"line {lineno}: malformed label {pair!r}")
                key, value = pair.split("=", 1)
                labels[key] = value[1:-1]
        if not _VALUE_RE.match(match.group("value")):
            raise ValueError(
                f"line {lineno}: malformed value "
                f"{match.group('value')!r}")
        name = match.group("name")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in types \
                    and types[name[:-len(suffix)]] == "histogram":
                base = name[:-len(suffix)]
                break
        if base not in families:
            families[base] = {"type": types.get(base, "untyped"),
                              "samples": 0}
        families[base]["samples"] += 1
        if base != name and name.endswith("_bucket"):
            series_key = (base, tuple(sorted(
                (k, v) for k, v in labels.items() if k != "le")))
            value = float(match.group("value"))
            if value < last_bucket.get(series_key, 0.0):
                raise ValueError(
                    f"line {lineno}: histogram buckets of {base} are "
                    f"not cumulative")
            last_bucket[series_key] = value
    return families


def _split_labels(raw: str, lineno: int) -> list[str]:
    """Split ``a="x",b="y"`` respecting escaped quotes."""
    parts: list[str] = []
    current: list[str] = []
    in_quotes = False
    escaped = False
    for ch in raw:
        if escaped:
            current.append(ch)
            escaped = False
        elif ch == "\\":
            current.append(ch)
            escaped = True
        elif ch == '"':
            current.append(ch)
            in_quotes = not in_quotes
        elif ch == "," and not in_quotes:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if in_quotes:
        raise ValueError(f"line {lineno}: unterminated label value")
    if current:
        parts.append("".join(current))
    return [part for part in parts if part]
