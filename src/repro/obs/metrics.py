"""The metrics registry: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` holds every metric of one subsystem (the
gateway has one, each :class:`~repro.core.service.QueryService` has its
own, the chaos harness builds one per soak).  Metrics are created once
— ``registry.counter(...)`` is idempotent per name — and updated on hot
paths with one short critical section per operation, so the write cost
is a lock acquire plus an integer/float add (histograms add a bisect
over a small tuple of bucket bounds).

Design decisions that matter for the serving hot path:

* **fixed buckets, no reservoirs** — a latency observation is O(log B)
  with B ≈ 16 bucket bounds and zero allocation, unlike a sorted
  reservoir percentile; quantile *estimates* come from the bucket
  counts (the estimate is the upper bound of the bucket containing the
  quantile, i.e. never optimistic);
* **atomic drain** — ``snapshot(reset=True)`` reads and zeroes a metric
  under one lock hold, so an increment racing a reset lands either in
  the returned snapshot or in the fresh window, never nowhere.  This is
  what makes the ``stats``/``metrics`` verbs' ``reset=true`` safe under
  concurrent batches;
* **collectors** — subsystems that already keep cheap event-loop-
  confined counters (the :class:`~repro.server.batcher.MicroBatcher`)
  register a callback that renders them into metric families at scrape
  time, so their hot paths stay lock-free.

Label support is deliberately minimal: a family is created with a tuple
of label *names* and ``family.labels(v1, v2, ...)`` returns the cached
child for those label *values*.  Children live forever (cardinality is
bounded by construction here: verbs, error codes, stage names).
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Callable, Iterable, Sequence

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "BUILD_PHASE_BUCKETS",
    "RECOVERY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Request/stage latency bucket upper bounds in seconds (100µs – 10s).
DEFAULT_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: Index-construction phase bucket upper bounds in seconds.
BUILD_PHASE_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0)

#: Post-fault recovery-time bucket upper bounds in seconds (chaos soak).
RECOVERY_BUCKETS = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

_KINDS = ("counter", "gauge", "histogram")


class Counter:
    """A monotonically increasing value (floats allowed, e.g. seconds).

    ``reset()`` (and the registry-level drain) is the only way the value
    goes down — and it goes to exactly zero, atomically with the
    snapshot read, so rate windows never lose increments.
    """

    __slots__ = ("_value", "_lock")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    def inc_locked(self, amount: float = 1.0) -> None:
        """``inc`` for callers already holding :attr:`MetricsRegistry
        .lock` — lets a hot path update several instruments under one
        acquisition."""
        self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self, reset: bool = False) -> float:
        with self._lock:
            value = self._value
            if reset:
                self._value = 0.0
        return value


class Gauge:
    """A value that can go up and down (connections open, queue depth).

    Gauges describe *current state*, so registry resets leave them
    untouched — zeroing ``connections_open`` would simply be wrong.
    """

    __slots__ = ("_value", "_lock", "_fn")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0
        self._fn: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def set_function(self, fn: Callable[[], float]) -> None:
        """Make the gauge read ``fn()`` at snapshot time (live values
        like queue depth that already exist elsewhere)."""
        self._fn = fn

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return self._value

    def snapshot(self, reset: bool = False) -> float:
        # ``reset`` is accepted for interface symmetry; state survives.
        return self.value


class Histogram:
    """Fixed-bucket distribution of observations (latencies, sizes).

    ``buckets`` are the upper bounds (``le`` semantics); an implicit
    ``+Inf`` bucket catches the tail.  Tracks count, sum, and max so
    mean and a pessimistic max are exact even though quantiles are
    bucket-resolution estimates.
    """

    __slots__ = ("bounds", "_counts", "_sum", "_count", "_max", "_lock")

    def __init__(self, lock: threading.Lock,
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
                 ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2
                             in zip(bounds, bounds[1:])):
            raise ValueError(
                f"bucket bounds must be strictly increasing and "
                f"non-empty, got {buckets!r}")
        self.bounds = bounds
        self._lock = lock
        self._counts = [0] * (len(bounds) + 1)  # + the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._max = 0.0

    def observe(self, value: float) -> None:
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1
            if value > self._max:
                self._max = value

    def observe_locked(self, value: float) -> None:
        """``observe`` for callers already holding :attr:`MetricsRegistry
        .lock` (e.g. one acquisition covering every span of a request)."""
        self._counts[bisect_left(self.bounds, value)] += 1
        self._sum += value
        self._count += 1
        if value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, q: float) -> float:
        """Quantile estimate: the upper bound of the bucket holding the
        q-quantile observation (the exact max for the +Inf bucket), so
        the estimate never understates the true quantile beyond bucket
        resolution."""
        with self._lock:
            return self._percentile_locked(q)

    def _percentile_locked(self, q: float) -> float:
        if self._count == 0:
            return 0.0
        rank = q * self._count
        cumulative = 0
        for idx, n in enumerate(self._counts):
            cumulative += n
            if cumulative >= rank and n:
                if idx < len(self.bounds):
                    return min(self.bounds[idx], self._max)
                return self._max
        return self._max

    def percentiles_ms(self) -> dict[str, float]:
        """The ``{p50,p95,p99,max}_ms`` block the stats verb reports."""
        with self._lock:
            return {
                "p50_ms": self._percentile_locked(0.50) * 1000.0,
                "p95_ms": self._percentile_locked(0.95) * 1000.0,
                "p99_ms": self._percentile_locked(0.99) * 1000.0,
                "max_ms": self._max * 1000.0,
            }

    def snapshot(self, reset: bool = False) -> dict[str, Any]:
        """Bucket counts (non-cumulative), sum, count, and max; with
        ``reset`` the read-and-zero is one atomic operation."""
        with self._lock:
            buckets: dict[str, int] = {}
            for bound, n in zip(self.bounds, self._counts):
                buckets[format_bound(bound)] = n
            buckets["+Inf"] = self._counts[-1]
            snap = {"count": self._count, "sum": self._sum,
                    "max": self._max, "buckets": buckets}
            if reset:
                self._counts = [0] * (len(self.bounds) + 1)
                self._sum = 0.0
                self._count = 0
                self._max = 0.0
        return snap


def format_bound(bound: float) -> str:
    """Canonical text form of a bucket bound (``0.005``, ``1``, ``+Inf``)."""
    if math.isinf(bound):
        return "+Inf"
    if bound == int(bound):
        return str(int(bound))
    return repr(bound)


_CHILD_TYPES = {"counter": Counter, "gauge": Gauge,
                "histogram": Histogram}


class MetricFamily:
    """One named metric plus its labelled children."""

    def __init__(self, name: str, kind: str, help_text: str,
                 label_names: tuple[str, ...],
                 lock: threading.Lock,
                 buckets: Sequence[float] | None = None) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = label_names
        self._lock = lock
        self._buckets = buckets
        self._children: dict[tuple, Any] = {}

    def labels(self, *values: Any):
        """The child for one label-value combination (cached forever)."""
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name} takes labels {self.label_names}, got "
                f"{values!r}")
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    if self.kind == "histogram":
                        child = Histogram(
                            self._lock,
                            self._buckets or DEFAULT_LATENCY_BUCKETS)
                    else:
                        child = _CHILD_TYPES[self.kind](self._lock)
                    self._children[key] = child
        return child

    def series(self) -> list[tuple[tuple, Any]]:
        """``(label_values, child)`` pairs, insertion-ordered."""
        with self._lock:
            return list(self._children.items())

    def snapshot(self, reset: bool = False) -> dict[str, Any]:
        series = []
        for values, child in self.series():
            series.append({
                "labels": dict(zip(self.label_names, values)),
                "value": child.snapshot(reset=reset),
            })
        return {"type": self.kind, "help": self.help,
                "series": series}


class MetricsRegistry:
    """A namespace of metric families plus scrape-time collectors.

    All children of one registry share one lock: every mutation is a
    short critical section, and a full-registry drain
    (``snapshot(reset=True)``) observes a point-in-time-consistent
    state per child — see the module docstring for why increments can
    never be lost across a reset.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}
        self._collectors: list[Callable[[], Iterable[dict]]] = []

    @property
    def lock(self) -> threading.Lock:
        """The registry-wide lock, for composed hot-path updates: hold
        it once and use the instruments' ``*_locked`` variants to
        record a whole request in a single acquisition."""
        return self._lock

    # -- creation -------------------------------------------------------
    def _family(self, name: str, kind: str, help_text: str,
                labels: Sequence[str],
                buckets: Sequence[float] | None = None) -> MetricFamily:
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        label_names = tuple(labels)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind \
                        or family.label_names != label_names:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind}{family.label_names}, cannot "
                        f"re-register as {kind}{label_names}")
                return family
            family = MetricFamily(name, kind, help_text, label_names,
                                  self._lock, buckets)
            self._families[name] = family
        return family

    def counter(self, name: str, help_text: str = "",
                labels: Sequence[str] = ()):
        """A counter (no labels) or counter family (with labels)."""
        family = self._family(name, "counter", help_text, labels)
        return family if labels else family.labels()

    def gauge(self, name: str, help_text: str = "",
              labels: Sequence[str] = ()):
        """A gauge (no labels) or gauge family (with labels)."""
        family = self._family(name, "gauge", help_text, labels)
        return family if labels else family.labels()

    def histogram(self, name: str, help_text: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        """A histogram (no labels) or histogram family (with labels)."""
        family = self._family(name, "histogram", help_text, labels,
                              buckets)
        return family if labels else family.labels()

    def register_collector(self,
                           collect: Callable[[], Iterable[dict]]) -> None:
        """Add a scrape-time callback producing extra families.

        ``collect()`` yields dicts shaped like::

            {"name": ..., "type": "counter"|"gauge", "help": ...,
             "samples": [({"label": "value", ...}, number), ...]}

        Used to expose subsystems (the micro-batcher) that keep plain
        event-loop-confined counters without adding locks to them.
        """
        self._collectors.append(collect)

    # -- reading --------------------------------------------------------
    def families(self) -> list[MetricFamily]:
        with self._lock:
            return list(self._families.values())

    def collected(self) -> list[dict]:
        """Every collector's output, flattened (scrape-time only)."""
        out: list[dict] = []
        for collect in list(self._collectors):
            out.extend(collect())
        return out

    def snapshot(self, reset: bool = False) -> dict[str, Any]:
        """Nested dict view of every registered family (collectors
        included, under their own names).  With ``reset``, counters and
        histograms are drained atomically per child; gauges persist."""
        snap = {name: family.snapshot(reset=reset)
                for name, family in
                sorted((f.name, f) for f in self.families())}
        for extra in self.collected():
            snap[extra["name"]] = {
                "type": extra.get("type", "gauge"),
                "help": extra.get("help", ""),
                "series": [{"labels": dict(labels), "value": value}
                           for labels, value in extra["samples"]],
            }
        return snap

    def reset(self) -> None:
        """Zero every counter and histogram (gauges keep their state)."""
        for family in self.families():
            for _, child in family.series():
                child.snapshot(reset=True)
