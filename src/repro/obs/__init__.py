"""``repro.obs`` — the unified observability layer.

Everything the repo measures about itself at runtime flows through
this package:

* :mod:`repro.obs.metrics` — the :class:`MetricsRegistry` of counters,
  gauges, and fixed-bucket latency histograms, with atomic
  snapshot-and-reset semantics (the ``stats``/``metrics`` verbs'
  ``reset=true`` can never lose increments);
* :mod:`repro.obs.prometheus` — text-format exposition (served by the
  ``metrics`` protocol verb and the gateway's optional HTTP scrape
  endpoint) plus the minimal validator the CI smoke gate uses;
* :mod:`repro.obs.tracing` — trace IDs, per-stage request spans that
  sum to the end-to-end latency, and the top-K slow-query log;
* :mod:`repro.obs.slo` — per-tenant SLO objectives, windowed
  error-budget accounting, and multi-window burn-rate alerts
  (``reach_slo_*`` families, the ``slo`` verb);
* :mod:`repro.obs.flight` — the crash flight recorder: a fixed-size
  lock-free ring of recent serving events spilled to
  ``<state-dir>/flightrec/`` so the pre-fault window survives SIGKILL;
* :mod:`repro.obs.phases` — build-phase profiling shared by both
  pipeline construction backends.

The serving stack (:mod:`repro.server`), the batch front-end
(:mod:`repro.core.service`), the chaos harness
(:mod:`repro.testing.chaos`), and the benchmarks all record into this
one schema, so a number seen in ``BENCH_serve.json``, a Prometheus
scrape, a chaos report, and ``repro-reach top`` is always the same
metric computed the same way.  ``docs/OBSERVABILITY.md`` catalogues the
metric names and trace stages.
"""

from repro.obs.metrics import (
    BUILD_PHASE_BUCKETS,
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    RECOVERY_BUCKETS,
)
from repro.obs.flight import FlightRecorder
from repro.obs.phases import PhaseProfiler
from repro.obs.prometheus import (
    CONTENT_TYPE,
    merge_expositions,
    parse_exposition,
    render,
)
from repro.obs.slo import SloEngine, SloObjective
from repro.obs.tracing import (
    REQUEST_STAGES,
    BatchTicket,
    SlowQueryLog,
    SpanRecorder,
    TraceIds,
)

__all__ = [
    "BUILD_PHASE_BUCKETS",
    "BatchTicket",
    "CONTENT_TYPE",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseProfiler",
    "RECOVERY_BUCKETS",
    "REQUEST_STAGES",
    "SloEngine",
    "SloObjective",
    "SlowQueryLog",
    "SpanRecorder",
    "TraceIds",
    "merge_expositions",
    "parse_exposition",
    "render",
]
