"""``repro.obs`` — the unified observability layer.

Everything the repo measures about itself at runtime flows through
this package:

* :mod:`repro.obs.metrics` — the :class:`MetricsRegistry` of counters,
  gauges, and fixed-bucket latency histograms, with atomic
  snapshot-and-reset semantics (the ``stats``/``metrics`` verbs'
  ``reset=true`` can never lose increments);
* :mod:`repro.obs.prometheus` — text-format exposition (served by the
  ``metrics`` protocol verb and the gateway's optional HTTP scrape
  endpoint) plus the minimal validator the CI smoke gate uses;
* :mod:`repro.obs.tracing` — trace IDs, per-stage request spans that
  sum to the end-to-end latency, and the top-K slow-query log;
* :mod:`repro.obs.phases` — build-phase profiling shared by both
  pipeline construction backends.

The serving stack (:mod:`repro.server`), the batch front-end
(:mod:`repro.core.service`), the chaos harness
(:mod:`repro.testing.chaos`), and the benchmarks all record into this
one schema, so a number seen in ``BENCH_serve.json``, a Prometheus
scrape, a chaos report, and ``repro-reach top`` is always the same
metric computed the same way.  ``docs/OBSERVABILITY.md`` catalogues the
metric names and trace stages.
"""

from repro.obs.metrics import (
    BUILD_PHASE_BUCKETS,
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    RECOVERY_BUCKETS,
)
from repro.obs.phases import PhaseProfiler
from repro.obs.prometheus import CONTENT_TYPE, parse_exposition, render
from repro.obs.tracing import (
    REQUEST_STAGES,
    BatchTicket,
    SlowQueryLog,
    SpanRecorder,
    TraceIds,
)

__all__ = [
    "BUILD_PHASE_BUCKETS",
    "BatchTicket",
    "CONTENT_TYPE",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseProfiler",
    "RECOVERY_BUCKETS",
    "REQUEST_STAGES",
    "SlowQueryLog",
    "SpanRecorder",
    "TraceIds",
    "parse_exposition",
    "render",
]
