"""Per-tenant SLO objectives, error budgets, and burn-rate alerts.

An :class:`SloObjective` declares what "good" means for one catalog
entry: an availability target (fraction of requests that must be good)
and a latency threshold (a request slower than ``latency_ms`` spends
error budget even when it succeeds).  The :class:`SloEngine` keeps one
windowed counter ring per entry, accounts every finished request in
O(1) on the event loop, and evaluates the standard multi-window
burn-rate alert policy:

* **page** — the fast pair: the 1 h *and* 5 m burn rates both exceed
  14.4 (at that rate a 30-day budget is gone in ~2 days);
* **ticket** — the slow pair: the 6 h *and* 30 m burn rates both
  exceed 6.

A *burn rate* is the bad-request rate over a window divided by the
budget rate ``1 - availability``; burn 1.0 means the budget is being
spent exactly as fast as it accrues.  Requiring both the long and the
short window keeps alerts from firing on ancient history (the long
window alone) or flapping on a single blip (the short window alone).

The engine is event-loop confined like the rest of the serving
metrics: ``record`` mutates plain ints without locks, and the
collector snapshot reads them from the same loop.  Alert state
*transitions* are appended to :attr:`SloEngine.transitions` for the
server to drain into the access log and flight recorder.

Exported metric families (see ``docs/OBSERVABILITY.md``):
``reach_slo_objective_availability``, ``reach_slo_objective_latency_ms``,
``reach_slo_requests_total``, ``reach_slo_bad_total``,
``reach_slo_error_budget_remaining``, ``reach_slo_burn_rate``, and
``reach_slo_alert_active``.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.exceptions import ReproError

__all__ = [
    "SLOT_SECONDS",
    "WINDOWS",
    "SloEngine",
    "SloObjective",
    "SloTracker",
]

#: Seconds of traffic folded into one counter slot.
SLOT_SECONDS = 10

#: Alert windows as ``(label, seconds)``, shortest first.  The longest
#: window bounds the ring size.
WINDOWS = (("5m", 300), ("30m", 1800), ("1h", 3600), ("6h", 21600))

_SLOT_COUNT = WINDOWS[-1][1] // SLOT_SECONDS

#: The multi-window burn-rate policy: both windows of a pair must
#: exceed the threshold for the alert to be active.
ALERT_POLICY = (
    ("page", "1h", "5m", 14.4),
    ("ticket", "6h", "30m", 6.0),
)


@dataclass(frozen=True)
class SloObjective:
    """A declared service-level objective for one catalog entry.

    ``availability`` is the target fraction of *good* requests; a
    request is good when it succeeded **and** finished within
    ``latency_ms``.  Failing either spends error budget.
    """

    availability: float = 0.999
    latency_ms: float = 50.0

    def as_dict(self) -> dict:
        return {"availability": self.availability,
                "latency_ms": self.latency_ms}

    @staticmethod
    def from_payload(payload: Any) -> "SloObjective":
        """Validate a request/JSON payload into an objective.

        Raises
        ------
        ReproError
            On unknown fields or out-of-range values.
        """
        if not isinstance(payload, dict):
            raise ReproError(
                f"slo objective must be an object, "
                f"got {type(payload).__name__}")
        known = ("availability", "latency_ms")
        for key in payload:
            if key not in known:
                raise ReproError(f"unknown slo objective field {key!r}")
        availability = payload.get("availability", 0.999)
        latency_ms = payload.get("latency_ms", 50.0)
        if not isinstance(availability, (int, float)) \
                or isinstance(availability, bool) \
                or not 0.0 < float(availability) < 1.0:
            raise ReproError(
                "slo availability must be a number in (0, 1)")
        if not isinstance(latency_ms, (int, float)) \
                or isinstance(latency_ms, bool) or float(latency_ms) <= 0:
            raise ReproError("slo latency_ms must be a positive number")
        return SloObjective(availability=float(availability),
                            latency_ms=float(latency_ms))


class SloTracker:
    """Windowed good/bad accounting for one catalog entry.

    A ring of :data:`SLOT_SECONDS`-second slots spanning the longest
    alert window; each slot stamps the absolute slot index it belongs
    to, so stale slots are lazily zeroed on reuse and window sums
    simply skip slots stamped outside the window.
    """

    __slots__ = ("objective", "_total", "_bad", "_stamp",
                 "lifetime_total", "lifetime_bad")

    def __init__(self, objective: SloObjective) -> None:
        self.objective = objective
        self._total = [0] * _SLOT_COUNT
        self._bad = [0] * _SLOT_COUNT
        self._stamp = [-1] * _SLOT_COUNT
        self.lifetime_total = 0
        self.lifetime_bad = 0

    def record(self, ok: bool, seconds: float, now: float) -> None:
        """Account one finished request (O(1), no allocation)."""
        slot = int(now) // SLOT_SECONDS
        i = slot % _SLOT_COUNT
        if self._stamp[i] != slot:
            self._stamp[i] = slot
            self._total[i] = 0
            self._bad[i] = 0
        self._total[i] += 1
        self.lifetime_total += 1
        if not ok or seconds * 1000.0 > self.objective.latency_ms:
            self._bad[i] += 1
            self.lifetime_bad += 1

    def window_counts(self, window_seconds: int,
                      now: float) -> tuple[int, int]:
        """``(total, bad)`` over the trailing window ending at ``now``."""
        newest = int(now) // SLOT_SECONDS
        oldest = newest - window_seconds // SLOT_SECONDS + 1
        total = bad = 0
        stamp = self._stamp
        for i in range(_SLOT_COUNT):
            if oldest <= stamp[i] <= newest:
                total += self._total[i]
                bad += self._bad[i]
        return total, bad

    def burn_rate(self, window_seconds: int, now: float) -> float:
        """Bad-rate over the window divided by the budget rate."""
        total, bad = self.window_counts(window_seconds, now)
        if total == 0:
            return 0.0
        return (bad / total) / (1.0 - self.objective.availability)

    def budget_remaining(self, now: float) -> float:
        """Fraction of the longest window's error budget still unspent.

        1.0 with an untouched budget, 0.0 exactly exhausted, negative
        when overspent.  With no traffic in the window the budget is
        intact by definition.
        """
        total, bad = self.window_counts(WINDOWS[-1][1], now)
        if total == 0:
            return 1.0
        budget = (1.0 - self.objective.availability) * total
        return 1.0 - bad / budget if budget > 0 else 1.0


class SloEngine:
    """All per-entry SLO trackers of one serving process.

    ``defaults`` (an :class:`SloObjective` or ``None``) is applied
    lazily to any entry seen by :meth:`record` that has no declared
    objective; with ``defaults=None`` only explicitly declared entries
    are tracked, and with no declared entries :meth:`record` is a
    cheap no-op — the engine is always safe to call from the hot path.

    Alert evaluation piggybacks on :meth:`record` at most once per
    second; state *changes* are appended to :attr:`transitions` (a
    bounded deque of dicts) for the server to drain into its access
    log and flight recorder.
    """

    def __init__(self, *, defaults: SloObjective | None = None,
                 clock: Callable[[], float] = time.time) -> None:
        self._trackers: dict[str, SloTracker] = {}
        self._defaults = defaults
        self._clock = clock
        self._next_eval = 0.0
        #: Undrained alert state transitions, oldest first.
        self.transitions: deque[dict] = deque(maxlen=256)
        self._active: dict[tuple[str, str], bool] = {}

    @property
    def enabled(self) -> bool:
        """True when any request could be tracked."""
        return bool(self._trackers) or self._defaults is not None

    def set_objective(self, name: str,
                      objective: SloObjective) -> SloTracker:
        """Declare (or replace) the objective for one entry.

        Replacing keeps the entry's windowed history — the budget is
        re-interpreted under the new objective rather than reset.
        """
        tracker = self._trackers.get(name)
        if tracker is None:
            tracker = SloTracker(objective)
            self._trackers[name] = tracker
        else:
            tracker.objective = objective
        return tracker

    def drop(self, name: str) -> None:
        """Forget an entry (catalog drop)."""
        self._trackers.pop(name, None)
        for severity in ("page", "ticket"):
            self._active.pop((name, severity), None)

    def record(self, name: str, ok: bool, seconds: float,
               now: float | None = None) -> None:
        """Account one finished request against ``name``'s objective."""
        tracker = self._trackers.get(name)
        if tracker is None:
            if self._defaults is None:
                return
            tracker = self.set_objective(name, self._defaults)
        if now is None:
            now = self._clock()
        tracker.record(ok, seconds, now)
        if now >= self._next_eval:
            self._next_eval = now + 1.0
            self.evaluate(now)

    def evaluate(self, now: float | None = None) -> None:
        """Re-evaluate every alert pair; queue state transitions."""
        if now is None:
            now = self._clock()
        windows = dict(WINDOWS)
        for name, tracker in self._trackers.items():
            for severity, long_w, short_w, threshold in ALERT_POLICY:
                burn_long = tracker.burn_rate(windows[long_w], now)
                burn_short = tracker.burn_rate(windows[short_w], now)
                active = burn_long > threshold and burn_short > threshold
                key = (name, severity)
                if self._active.get(key, False) != active:
                    self._active[key] = active
                    self.transitions.append({
                        "index": name, "severity": severity,
                        "active": active,
                        "burn_long": round(burn_long, 3),
                        "burn_short": round(burn_short, 3),
                        "threshold": threshold, "ts": now,
                    })

    def report(self, now: float | None = None) -> dict:
        """The full SLO document (the ``slo`` verb's result)."""
        if now is None:
            now = self._clock()
        self.evaluate(now)
        entries = {}
        for name, tracker in sorted(self._trackers.items()):
            windows = {}
            for label, seconds in WINDOWS:
                total, bad = tracker.window_counts(seconds, now)
                windows[label] = {
                    "total": total, "bad": bad,
                    "burn_rate": round(
                        tracker.burn_rate(seconds, now), 4),
                }
            entries[name] = {
                "objective": tracker.objective.as_dict(),
                "windows": windows,
                "error_budget_remaining": round(
                    tracker.budget_remaining(now), 4),
                "alerts": {
                    severity: self._active.get((name, severity), False)
                    for severity, *_ in ALERT_POLICY},
                "lifetime": {"total": tracker.lifetime_total,
                             "bad": tracker.lifetime_bad},
            }
        return {"enabled": self.enabled,
                "default_objective": (self._defaults.as_dict()
                                      if self._defaults else None),
                "entries": entries}

    # -- metrics collector ----------------------------------------------
    def collect(self) -> Iterator[dict]:
        """Metric families for ``MetricsRegistry.register_collector``."""
        now = self._clock()

        def family(name: str, kind: str, help_text: str,
                   samples: list) -> dict:
            return {"name": name, "type": kind, "help": help_text,
                    "samples": samples}

        trackers = sorted(self._trackers.items())
        if not trackers:
            return
        yield family(
            "reach_slo_objective_availability", "gauge",
            "Declared availability target per catalog entry.",
            [({"index": name}, tracker.objective.availability)
             for name, tracker in trackers])
        yield family(
            "reach_slo_objective_latency_ms", "gauge",
            "Declared latency threshold (ms) per catalog entry.",
            [({"index": name}, tracker.objective.latency_ms)
             for name, tracker in trackers])
        yield family(
            "reach_slo_requests_total", "counter",
            "Requests accounted against the entry's SLO.",
            [({"index": name}, tracker.lifetime_total)
             for name, tracker in trackers])
        yield family(
            "reach_slo_bad_total", "counter",
            "Requests that spent error budget (failed or too slow).",
            [({"index": name}, tracker.lifetime_bad)
             for name, tracker in trackers])
        yield family(
            "reach_slo_error_budget_remaining", "gauge",
            "Fraction of the 6h error budget unspent "
            "(negative when overspent).",
            [({"index": name}, tracker.budget_remaining(now))
             for name, tracker in trackers])
        yield family(
            "reach_slo_burn_rate", "gauge",
            "Error-budget burn rate per alert window "
            "(1.0 = spending exactly the budget).",
            [({"index": name, "window": label},
              tracker.burn_rate(seconds, now))
             for name, tracker in trackers
             for label, seconds in WINDOWS])
        yield family(
            "reach_slo_alert_active", "gauge",
            "1 while the multi-window burn-rate alert is firing.",
            [({"index": name, "severity": severity},
              1.0 if self._active.get((name, severity), False) else 0.0)
             for name, _tracker in trackers
             for severity, *_ in ALERT_POLICY])
