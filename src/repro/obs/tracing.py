"""Request tracing: trace IDs, per-stage spans, the slow-query log.

A *trace* follows one request through the serving pipeline.  The trace
ID is minted by :class:`~repro.server.client.ReachClient` (``trace``
field on the request line) or, for untagged clients, by the gateway at
admission — either way it appears in the access-log line, the
slow-query log, and error replies' context, so one grep connects a
client-observed latency spike to the server-side stage breakdown.

The stage vocabulary of the serving pipeline (see
``docs/OBSERVABILITY.md`` for the glossary):

``parse``
    JSON decode plus pair extraction/validation.
``admission``
    From parse completion to acceptance into the micro-batch buffer
    (includes any block-policy wait for queue room).
``queue_wait``
    Buffered in the micro-batch, waiting for the size/deadline flush
    trigger.
``kernel``
    The shared ``QueryService.query_batch`` evaluation of the flush the
    request rode in (worker-thread wall clock).
``serialize``
    From kernel completion to the reply bytes being queued on the
    connection (includes answer scatter and event-loop handoff).

Spans are *contiguous*: each stage ends where the next begins, so their
sum equals the end-to-end latency up to floating-point error — the
property the acceptance test asserts.

:class:`BatchTicket` is the tiny mutable record the gateway hands to
the :class:`~repro.server.batcher.MicroBatcher` so the batcher can
stamp the enqueue/flush/kernel-done instants without changing its
result types.  :class:`SlowQueryLog` keeps the top-K slowest requests
(a min-heap) with their span breakdowns for the ``stats`` verb and
``repro-reach top``.
"""

from __future__ import annotations

import heapq
import itertools
import os
import threading
import time
from typing import Any

__all__ = ["BatchTicket", "SlowQueryLog", "SpanRecorder", "TraceIds",
           "REQUEST_STAGES"]

#: The serving pipeline's stage names, in pipeline order.
REQUEST_STAGES = ("parse", "admission", "queue_wait", "kernel",
                  "serialize")


class TraceIds:
    """Cheap unique trace-ID mint: ``<tag>-<seq>`` with a per-process
    random tag, so IDs from different processes (client vs. gateway)
    never collide and cost one integer increment to produce."""

    __slots__ = ("_prefix", "_counter")

    def __init__(self, tag: str | None = None) -> None:
        if tag is None:
            tag = os.urandom(3).hex()
        self._prefix = tag
        self._counter = itertools.count(1)

    def next(self) -> str:
        return f"{self._prefix}-{next(self._counter):x}"


class BatchTicket:
    """Timestamps one request collects while riding a micro-batch.

    The gateway stamps ``parse_done``; the batcher stamps
    ``enqueued_at`` (admission complete), ``flush_at`` (the flush the
    request belongs to started evaluating), and ``kernel_done`` (its
    kernel call returned).  ``spans()`` turns the stamps into the
    contiguous stage durations; stages whose stamps are missing (error
    paths that never reached the batcher) are simply absent.
    """

    __slots__ = ("trace_id", "started", "parse_done", "enqueued_at",
                 "flush_at", "kernel_done")

    def __init__(self, trace_id: str | None, started: float) -> None:
        #: Client-supplied trace ID, or ``None`` until the gateway
        #: mints one lazily (only when a log actually records it).
        self.trace_id = trace_id
        self.started = started
        self.parse_done: float | None = None
        self.enqueued_at: float | None = None
        self.flush_at: float | None = None
        self.kernel_done: float | None = None

    def spans(self, finished: float) -> dict[str, float]:
        """Contiguous stage durations in seconds, ending at
        ``finished``; the final measured stamp absorbs the tail into
        ``serialize`` so the spans always sum to ``finished -
        started``.  (Unrolled: this runs once per served request.)"""
        spans: dict[str, float] = {}
        previous = self.started
        stamp = self.parse_done
        if stamp is not None:
            spans["parse"] = stamp - previous if stamp > previous \
                else 0.0
            previous = stamp
        stamp = self.enqueued_at
        if stamp is not None:
            spans["admission"] = stamp - previous if stamp > previous \
                else 0.0
            previous = stamp
        stamp = self.flush_at
        if stamp is not None:
            spans["queue_wait"] = stamp - previous \
                if stamp > previous else 0.0
            previous = stamp
        stamp = self.kernel_done
        if stamp is not None:
            spans["kernel"] = stamp - previous if stamp > previous \
                else 0.0
            previous = stamp
        spans["serialize"] = finished - previous \
            if finished > previous else 0.0
        return spans


class SpanRecorder:
    """Registry-backed span sink: one histogram family keyed by stage.

    ``record(spans)`` observes each stage duration into
    ``<name>{stage=...}``; the family is created once so the per-
    request cost is a dict lookup plus one histogram observe per stage.
    """

    def __init__(self, registry, name: str = "reach_stage_seconds",
                 help_text: str = "Server-side request stage "
                                  "durations.") -> None:
        self._family = registry.histogram(name, help_text,
                                          labels=("stage",))
        self._children = {stage: self._family.labels(stage)
                          for stage in REQUEST_STAGES}
        self._lock = registry.lock
        # Per-stage exemplar: the slowest *traced* observation since
        # the last reset, so a p99 bucket links to a concrete trace id.
        self._exemplars: dict[str, tuple[float, str]] = {}

    def note_exemplars(self, spans: dict[str, float],
                       trace_id: str) -> None:
        """Update the per-stage exemplars without observing the
        histograms (client-traced requests outside the span sample)."""
        exemplars = self._exemplars
        for stage, seconds in spans.items():
            worst = exemplars.get(stage)
            if worst is None or seconds > worst[0]:
                exemplars[stage] = (seconds, trace_id)

    def record(self, spans: dict[str, float],
               trace_id: str | None = None) -> None:
        children = self._children
        if trace_id is not None:
            self.note_exemplars(spans, trace_id)
        if spans.keys() <= children.keys():
            # Hot path: every span of the request under one lock
            # acquisition.
            with self._lock:
                for stage, seconds in spans.items():
                    children[stage].observe_locked(seconds)
            return
        for stage, seconds in spans.items():
            child = children.get(stage)
            if child is None:
                child = self._family.labels(stage)
                children[stage] = child
            child.observe(seconds)

    def exemplars(self, reset: bool = False) -> dict[str, dict]:
        """Per-stage slowest traced observation:
        ``{stage: {"trace": id, "ms": duration}}``."""
        out = {stage: {"trace": trace,
                       "ms": round(seconds * 1000.0, 3)}
               for stage, (seconds, trace)
               in sorted(self._exemplars.items())}
        if reset:
            self._exemplars = {}
        return out

    def percentiles_ms(self) -> dict[str, dict[str, float]]:
        """Per-stage ``{p50,p95,p99,max}_ms`` blocks (stats verb /
        BENCH_serve.json rows), stages with observations only."""
        out: dict[str, dict[str, float]] = {}
        for stage, child in self._children.items():
            if child.count:
                out[stage] = child.percentiles_ms()
        return out


class SlowQueryLog:
    """Top-K slowest requests with their span breakdowns.

    A bounded min-heap keyed on elapsed seconds: an arriving request
    that beats the current K-th slowest replaces it in O(log K).  The
    log is thread-safe (the chaos harness reads it from another
    thread) and drained by the same ``reset`` that drains the metric
    registries, so rate windows and slow-query windows line up.
    """

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._heap: list[tuple[float, int, dict]] = []
        self._seq = itertools.count()
        self._lock = threading.Lock()
        #: Advisory admission bound, readable without the lock: a
        #: request slower than ``floor`` *may* enter the log; anything
        #: faster certainly will not.  The serving hot path checks it
        #: before building the (comparatively expensive) record dict.
        #: Slightly stale reads only cost one wasted dict build.
        self.floor: float = -1.0 if capacity else float("inf")

    def offer(self, elapsed: float, record: dict[str, Any]) -> None:
        """Consider one finished request for the log."""
        if self.capacity == 0:
            return
        with self._lock:
            if len(self._heap) < self.capacity:
                heapq.heappush(self._heap,
                               (elapsed, next(self._seq), record))
            elif elapsed > self._heap[0][0]:
                heapq.heapreplace(self._heap,
                                  (elapsed, next(self._seq), record))
            else:
                return
            if len(self._heap) == self.capacity:
                self.floor = self._heap[0][0]

    def snapshot(self, reset: bool = False) -> list[dict]:
        """The logged requests, slowest first."""
        with self._lock:
            entries = sorted(self._heap, key=lambda e: -e[0])
            if reset:
                self._heap = []
                self.floor = -1.0 if self.capacity else float("inf")
        return [dict(record) for _, _, record in entries]

    def reset(self) -> None:
        with self._lock:
            self._heap = []
            self.floor = -1.0 if self.capacity else float("inf")

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)


def utcnow() -> float:
    """Wall-clock timestamp for log records (seconds since epoch)."""
    return time.time()
