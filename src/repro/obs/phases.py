"""Build-phase profiling: timers around the index-construction phases.

GRAIL-style reachability papers report *per-phase* index construction
cost (Tarjan/condense, MEG reduction, spanning tree, interval labels,
link-table closure); this module gives both pipeline backends one
uniform way to produce that breakdown and, when a registry is
attached, to feed it into the same metric schema the serving stack
uses (``reach_build_phase_seconds{phase=...}``).

>>> prof = PhaseProfiler()
>>> with prof.phase("condense"):
...     _ = sum(range(100))
>>> list(prof.seconds) == ["condense"]
True
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from repro.obs.metrics import BUILD_PHASE_BUCKETS, MetricsRegistry

__all__ = ["PhaseProfiler"]


class PhaseProfiler:
    """Accumulates wall-clock seconds per named phase.

    Parameters
    ----------
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; when
        given, every phase duration is also observed into the
        ``reach_build_phase_seconds`` histogram family so repeated
        builds (hot reloads, benchmarks) produce per-phase
        distributions, not just the last run's numbers.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.seconds: dict[str, float] = {}
        self._family = None
        if registry is not None:
            self._family = registry.histogram(
                "reach_build_phase_seconds",
                "Index construction time per pipeline phase.",
                labels=("phase",), buckets=BUILD_PHASE_BUCKETS)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one phase; re-entering a name accumulates."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - started)

    def record(self, name: str, seconds: float) -> None:
        """Account already-measured seconds to a phase (used where the
        measurement brackets code that also assigns the result)."""
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        if self._family is not None:
            self._family.labels(name).observe(seconds)

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())
