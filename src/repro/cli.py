"""Command-line interface: ``repro-reach`` / ``python -m repro``.

Subcommands
-----------
* ``schemes``  — list available index schemes;
* ``generate`` — write a synthetic graph to an edge-list file;
* ``stats``    — print summary statistics of a graph file;
* ``build``    — build an index over a graph file and print its stats;
* ``query``    — build an index and answer reachability queries;
* ``serve``    — run the :mod:`repro.server` TCP gateway in the
  foreground (newline-delimited JSON protocol, cross-connection
  micro-batching, hot index swap via the ``reload`` verb);
* ``loadgen``  — drive a running gateway with open-loop
  multi-connection load and print client-side latency percentiles and
  an error breakdown (``--verify`` differentially checks every reply
  against a locally built index and exits 3 on any wrong answer);
* ``top``      — live stats view of a running gateway: request and
  error counters, per-stage latency percentiles, batcher occupancy,
  and the slowest traced requests with their span breakdowns
  (``--fleet`` samples every worker behind a shared port and renders
  one section per worker);
* ``slo``      — report (and optionally declare) per-tenant service
  level objectives on a running gateway: error-budget remaining,
  multi-window burn rates, and active page/ticket alerts;
* ``doctor``   — one-shot triage bundle against a running gateway
  (ping, health, readiness, stats, SLO alerts, flight-recorder tail,
  catalog, metrics families) with a pass/fail verdict per check;
* ``metrics-smoke`` — end-to-end observability check (start a server
  with the HTTP scrape endpoint, drive traffic, scrape ``/metrics``,
  validate the Prometheus exposition and its metric families);
* ``chaos``    — run the fault-injection soak
  (:func:`repro.testing.chaos.run_chaos_soak`): a live server plus
  verified load under a seeded schedule of network/kernel/persistence
  faults, exiting nonzero unless every fault recovered and zero wrong
  answers were observed;
* ``bench``    — forward to the experiment runner (``repro.bench``),
  including ``bench serve`` (the
  :class:`repro.core.service.QueryService` throughput test),
  ``bench build`` (the per-phase construction benchmark comparing the
  fast and python backends, trajectory in ``BENCH_build.json``), and
  ``bench serve-load`` (gateway throughput, micro-batched vs.
  unbatched, trajectory in ``BENCH_serve.json``).

Examples
--------
::

    repro-reach generate dag --nodes 2000 --edges 3000 --out g.txt
    repro-reach stats g.txt
    repro-reach build g.txt --scheme dual-ii --save g.dual-ii.json
    repro-reach query g.txt --scheme dual-i --pairs 17:1805 3:42
    repro-reach query g.txt --pairs-file queries.csv
    repro-reach query g.txt --random 1000 --scheme dual-ii
    repro-reach serve g.txt --port 7421 --max-batch 512
    repro-reach serve g.txt --port 7421 --tenant teamA=a.txt --workers 4
    repro-reach loadgen --port 7421 --graph g.txt --connections 32
    repro-reach loadgen --port 7421 --graph a.txt --index teamA --verify
    repro-reach chaos --isolation --workers 2
    repro-reach loadgen --port 7421 --graph g.txt --verify
    repro-reach serve g.txt --port 7421 --metrics-port 9109
    repro-reach serve g.txt --port 7421 --slo-availability 0.999
    repro-reach top --port 7421 --once
    repro-reach top --port 7421 --fleet --once
    repro-reach slo --port 7421
    repro-reach slo --port 7421 --index teamA --availability 0.995
    repro-reach doctor --port 7421
    repro-reach doctor --port 7421 --out /tmp/triage
    repro-reach metrics-smoke
    repro-reach chaos --smoke
    repro-reach chaos --seed 7 --duration 10 --nodes 200
    repro-reach bench run table2 --scale quick
    repro-reach bench serve --scheme dual-ii --queries 100000 --baseline
    repro-reach bench build --quick --assert-speedup 1.0
    repro-reach bench serve-load --connections 32 --assert-speedup 3
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.bench.runner import main as bench_main
from repro.bench.timing import measure_build_time, measure_query_time
from repro.bench.workloads import random_query_pairs
from repro.core.base import available_schemes, build_index
from repro.exceptions import DatasetError, ReproError
from repro.datasets import dataset_names, load_dataset
from repro.graph.generators import (
    gnm_random_digraph,
    random_dag,
    random_tree,
    single_rooted_dag,
)
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.stats import graph_stats

__all__ = ["main"]


def _cmd_schemes(_args: argparse.Namespace) -> int:
    for name in available_schemes():
        print(name)
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    kind = args.kind
    if kind == "gnm":
        graph = gnm_random_digraph(args.nodes, args.edges, seed=args.seed)
    elif kind == "dag":
        graph = single_rooted_dag(args.nodes, args.edges,
                                  max_fanout=args.fanout, seed=args.seed)
    elif kind == "random-dag":
        graph = random_dag(args.nodes, args.edges, seed=args.seed)
    elif kind == "tree":
        graph = random_tree(args.nodes, max_fanout=args.fanout,
                            seed=args.seed)
    else:  # dataset
        graph = load_dataset(args.dataset, seed=args.seed)
    write_edge_list(graph, args.out)
    print(f"wrote {graph.num_nodes} nodes / {graph.num_edges} edges "
          f"to {args.out}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = read_edge_list(args.graph)
    for key, value in graph_stats(graph).as_dict().items():
        print(f"{key:16s} {value}")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    graph = read_edge_list(args.graph)
    measured = measure_build_time(graph, args.scheme)
    stats = measured.index.stats()
    print(f"scheme           {stats.scheme}")
    print(f"build_seconds    {measured.seconds:.4f}")
    for key, value in stats.as_dict().items():
        if key == "scheme" or key.startswith("seconds_"):
            continue
        print(f"{key:16s} {value}")
    if stats.phase_seconds:
        profiled = sum(stats.phase_seconds.values())
        print("\nphase breakdown")
        for phase, seconds in stats.phase_seconds.items():
            share = 100.0 * seconds / profiled if profiled else 0.0
            print(f"  {phase:28s} {seconds * 1000.0:10.2f} ms"
                  f"  {share:5.1f}%")
    if args.save is not None:
        from repro.core.serialize import save_dual_index

        save_dual_index(measured.index, args.save)
        print(f"saved index to {args.save}")
    return 0


def _parse_pair(text: str) -> tuple[int, int]:
    try:
        left, right = text.split(":", 1)
        return int(left), int(right)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"pair must look like 'u:v', got {text!r}") from None


def _cmd_query(args: argparse.Namespace) -> int:
    if args.index is not None:
        from repro.core.serialize import load_dual_index

        index = load_dual_index(args.index)
        graph = None
    else:
        graph = read_edge_list(args.graph)
        index = build_index(graph, scheme=args.scheme)
    if args.pairs_file is not None:
        # The production batch path: the whole file is answered by one
        # QueryService.query_batch() call (vectorised kernel).
        from repro.bench.workloads import read_pairs_file
        from repro.core.service import QueryService

        pairs = read_pairs_file(args.pairs_file)
        with QueryService(index) as service:
            answers = service.query_batch(pairs)
        for (u, v), answer in zip(pairs, answers):
            print(f"{u} -> {v}: "
                  f"{'reachable' if answer else 'unreachable'}")
        print(f"# {len(pairs)} queries, {sum(answers)} reachable")
        return 0
    if args.pairs:
        for u, v in args.pairs:
            answer = index.reachable(u, v)
            print(f"{u} -> {v}: {'reachable' if answer else 'unreachable'}")
        return 0
    if graph is None:
        # Random workloads need the graph's node set.
        print("--index requires --pairs or --pairs-file queries",
              file=sys.stderr)
        return 2
    pairs = random_query_pairs(graph, args.random, seed=args.seed)
    measured = measure_query_time(index, pairs)
    print(f"queries          {measured.num_queries}")
    print(f"positives        {measured.positives}")
    print(f"net_seconds      {measured.seconds:.4f}")
    print(f"us_per_query     {measured.microseconds_per_query:.3f}")
    return 0


def _parse_tenant(text: str) -> tuple[str, str]:
    name, sep, source = text.partition("=")
    if not sep or not name or not source:
        raise argparse.ArgumentTypeError(
            f"tenant must look like 'NAME=GRAPH_FILE', got {text!r}")
    return name, source


def _build_tenants(args: argparse.Namespace) -> list[dict]:
    """Build the startup tenant indexes for ``serve --tenant``."""
    tenants = []
    for name, source in args.tenant or ():
        graph = read_edge_list(source)
        tenants.append({
            "name": name,
            "index": build_index(graph, scheme=args.scheme),
            "scheme": args.scheme,
        })
    return tenants


def _durable_boot(args: argparse.Namespace):
    """``serve --state-dir``: recover the catalog before serving.

    Returns ``(state, index, scheme, tenant_specs)`` where the default
    index and every tenant come from the last durable generation when
    one exists; the CLI graph/--index arguments are only the *fallback*
    for a fresh state dir (or a quarantined default artifact).  New
    ``--tenant`` flags whose names are not yet durable are built,
    saved, and journaled here so the next start restores them too.
    """
    from repro.server.durability import DurableState, restore_catalog

    state = DurableState(
        args.state_dir,
        checkpoint_interval=args.state_checkpoint_interval,
        retain_generations=args.state_retain)
    report = state.recover()
    for note in report.notes:
        print(f"state-dir: {note}", file=sys.stderr, flush=True)

    def default_factory():
        if args.index is not None:
            from repro.core.serialize import load_dual_index

            index = load_dual_index(args.index)
            return index, index.stats().scheme
        if args.graph is None:
            raise DatasetError(
                "a fresh --state-dir needs a graph file or --index "
                "to build the default index from")
        return (build_index(read_edge_list(args.graph),
                            scheme=args.scheme), args.scheme)

    boot = restore_catalog(state, default_factory=default_factory)
    for note in boot.notes:
        print(f"state-dir: {note}", file=sys.stderr, flush=True)
    for reason in boot.degraded:
        print(f"state-dir: DEGRADED: {reason}", file=sys.stderr,
              flush=True)

    tenants = []
    restored = set()
    for restoredent in boot.tenants:
        restored.add(restoredent.name)
        tenants.append({
            "name": restoredent.name, "index": restoredent.index,
            "scheme": restoredent.scheme,
            "quota": restoredent.quota or None,
            "index_id": restoredent.index_id,
            "generation": restoredent.generation,
        })
    for name, source in args.tenant or ():
        if name in restored:
            print(f"state-dir: tenant {name!r} restored from durable "
                  f"state; --tenant flag ignored", file=sys.stderr,
                  flush=True)
            continue
        index = build_index(read_edge_list(source), scheme=args.scheme)
        # Same commit ordering as the live catalog verbs: create
        # record, artifact, then the install record that references it.
        snap = state.entry(name)
        if snap is None:
            free = {e.index_id for e in state.entries()}
            index_id = next(i for i in range(1, 0xFFFF)
                            if i not in free)
            state.record_create(name, index_id=index_id,
                                scheme=args.scheme, quota={})
        else:
            index_id = snap.index_id
        generation = state.next_generation(name)
        artifact = state.save_index(index, name, generation)
        from repro.server.durability import index_label_bytes
        state.record_install(name, index_id=index_id,
                             scheme=args.scheme, generation=generation,
                             label_bytes=index_label_bytes(index),
                             artifact=artifact)
        tenants.append({"name": name, "index": index,
                        "scheme": args.scheme, "quota": None,
                        "index_id": index_id,
                        "generation": generation})
    return state, boot.default.index, boot.default.scheme, tenants, \
        boot.degraded


def _serve_obs_options(args: argparse.Namespace) -> tuple:
    """``serve``: resolve the operations-plane options.

    Returns ``(slo_defaults, flight_dir)``.  The flight directory
    defaults to ``<state-dir>/flightrec`` so crash dumps live next to
    the journal they explain; stale ``*-current.jsonl`` files from the
    previous incarnation are archived (not clobbered) before the new
    recorder starts.
    """
    slo_defaults = None
    if args.slo_availability is not None \
            or args.slo_latency_ms is not None:
        slo_defaults = {}
        if args.slo_availability is not None:
            slo_defaults["availability"] = args.slo_availability
        if args.slo_latency_ms is not None:
            slo_defaults["latency_ms"] = args.slo_latency_ms
    flight_dir = args.flight_dir
    if flight_dir is None and args.state_dir is not None:
        flight_dir = args.state_dir / "flightrec"
    if flight_dir is not None:
        from repro.obs.flight import archive_current_dumps

        flight_dir = Path(flight_dir)
        flight_dir.mkdir(parents=True, exist_ok=True)
        for path in archive_current_dumps(str(flight_dir)):
            print(f"flightrec: archived prior dump {path}",
                  file=sys.stderr, flush=True)
    return slo_defaults, flight_dir


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.core.service import QueryService
    from repro.server.server import ReachServer, ServerConfig
    from repro.server.tenancy import TenantQuota

    state = None
    degraded_reasons: list[str] = []
    if args.state_dir is not None:
        state, index, scheme, tenants, degraded_reasons = \
            _durable_boot(args)
    else:
        if args.index is not None:
            from repro.core.serialize import load_dual_index

            index = load_dual_index(args.index)
            scheme = index.stats().scheme
        else:
            graph = read_edge_list(args.graph)
            index = build_index(graph, scheme=args.scheme)
            scheme = args.scheme
        tenants = _build_tenants(args)
    slo_defaults, flight_dir = _serve_obs_options(args)
    if args.workers > 1:
        return _serve_fleet(args, index, scheme, tenants, state=state,
                            degraded_reasons=degraded_reasons,
                            slo_defaults=slo_defaults,
                            flight_dir=flight_dir)
    config = ServerConfig(
        host=args.host, port=args.port, max_batch=args.max_batch,
        max_delay=args.max_delay_ms / 1000.0,
        max_pending=args.max_pending, policy=args.policy,
        max_request_pairs=args.max_request_pairs,
        max_conn_inflight=args.max_conn_inflight,
        request_timeout=args.request_timeout,
        access_log=args.access_log,
        access_log_max_bytes=args.access_log_max_bytes,
        metrics_port=args.metrics_port,
        slow_log_size=args.slow_log_size,
        span_sample=args.span_sample,
        executor_workers=args.executor_threads,
        slo_defaults=slo_defaults,
        flight_dir=flight_dir,
        state=state)
    server = ReachServer(QueryService(index), scheme=scheme,
                         config=config)
    if state is not None:
        # The restored default generation, so reload replies and the
        # durable journal keep counting from the same number.
        server.catalog.default.generation = \
            state.entry("default").generation if state.entry("default") \
            else 0
    for reason in degraded_reasons:
        server.note_degraded(reason)
    for spec in tenants:
        # Pre-start install: the event loop is not running yet, so
        # registering and loading the startup tenants here is safe.
        quota = (TenantQuota.from_payload(spec["quota"])
                 if spec.get("quota") else None)
        entry = server.catalog.create(spec["name"],
                                      scheme=spec["scheme"],
                                      quota=quota,
                                      index_id=spec.get("index_id"))
        if spec.get("index") is not None:
            label = server.catalog.check_budget(entry, spec["index"])
            server.catalog.install(entry, QueryService(spec["index"]),
                                   scheme=spec["scheme"],
                                   label_bytes=label)
        if spec.get("generation"):
            # Restored entries resume their durable generation count.
            entry.generation = spec["generation"]

    async def _serve() -> None:
        await server.start()
        stats = index.stats()
        print(f"serving {scheme} ({stats.num_nodes} nodes, "
              f"{stats.num_edges} edges) on {config.host}:{server.port}"
              f" — max_batch={config.max_batch}, "
              f"max_delay={config.max_delay * 1000:.1f}ms, "
              f"policy={config.policy}  (ctrl-c to stop)", flush=True)
        if tenants:
            print("tenants: "
                  + ", ".join(spec["name"] for spec in tenants),
                  flush=True)
        if config.metrics_port is not None:
            print(f"Prometheus scrape endpoint on "
                  f"http://{config.host}:{server.metrics_port}/metrics",
                  flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\nserver stopped")
    finally:
        if state is not None:
            # Fold the journal into a checkpoint so the next boot
            # replays nothing (crashes skip this and replay instead).
            state.checkpoint()
            state.close()
    return 0


def _serve_fleet(args: argparse.Namespace, index, scheme: str,
                 tenants: list[dict], *, state=None,
                 degraded_reasons: Sequence[str] = (),
                 slo_defaults=None, flight_dir=None) -> int:
    """``serve --workers N``: the SO_REUSEPORT worker fleet."""
    import signal
    import threading

    from repro.server.router import WorkerFleet

    if args.access_log is not None:
        # One shared file across N processes would interleave; fleet
        # access logging goes through the per-worker `stats` verb
        # (worker-labelled) instead.
        print("note: --access-log is ignored with --workers > 1",
              file=sys.stderr)
    server_options = dict(
        max_batch=args.max_batch,
        max_delay=args.max_delay_ms / 1000.0,
        max_pending=args.max_pending, policy=args.policy,
        max_request_pairs=args.max_request_pairs,
        max_conn_inflight=args.max_conn_inflight,
        request_timeout=args.request_timeout,
        slow_log_size=args.slow_log_size,
        span_sample=args.span_sample,
        executor_workers=args.executor_threads)
    if slo_defaults is not None:
        server_options["slo_defaults"] = slo_defaults
    if flight_dir is not None:
        # Every worker spills its own ring into the shared directory;
        # the per-worker label keeps the file names distinct.
        server_options["flight_dir"] = str(flight_dir)
    fleet = WorkerFleet(index, scheme=scheme, workers=args.workers,
                        host=args.host, port=args.port,
                        server_options=server_options,
                        tenants=tenants, state=state,
                        metrics_port=args.metrics_port,
                        flight_dir=(str(flight_dir)
                                    if flight_dir is not None else None))
    for reason in degraded_reasons:
        print(f"state-dir: DEGRADED: {reason}", file=sys.stderr,
              flush=True)
    # A SIGTERM (systemd stop, `timeout`, docker stop) must run the
    # same clean shutdown as ctrl-c, or the published shared-memory
    # generation leaks in /dev/shm.
    done = threading.Event()
    previous = signal.signal(signal.SIGTERM,
                             lambda signum, frame: done.set())
    fleet.start()
    try:
        stats = index.stats()
        print(f"serving {scheme} ({stats.num_nodes} nodes, "
              f"{stats.num_edges} edges) on {args.host}:{fleet.port}"
              f" — workers={fleet.workers}, "
              f"max_batch={args.max_batch}, "
              f"max_delay={args.max_delay_ms:.1f}ms, "
              f"policy={args.policy}  (ctrl-c to stop)", flush=True)
        print(f"shared-memory index segment {fleet.segment} "
              f"(pids {fleet.pids()})", flush=True)
        if args.metrics_port is not None:
            print(f"fleet-wide Prometheus scrape endpoint on "
                  f"http://{args.host}:{fleet.metrics_port}/metrics",
                  flush=True)
        if tenants:
            print("tenants: "
                  + ", ".join(spec["name"] for spec in tenants),
                  flush=True)
        done.wait()
        print("\nfleet stopped")
    except KeyboardInterrupt:
        print("\nfleet stopped")
    finally:
        fleet.stop()
        signal.signal(signal.SIGTERM, previous)
        if state is not None:
            state.checkpoint()
            state.close()
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.bench.reporting import format_kv_table
    from repro.server.loadgen import run_loadgen

    if args.pairs_file is not None:
        from repro.bench.workloads import read_pairs_file

        pairs = read_pairs_file(args.pairs_file)
        graph = None
    elif args.graph is not None:
        graph = read_edge_list(args.graph)
        pairs = random_query_pairs(graph, args.random, seed=args.seed)
    else:
        print("loadgen needs --pairs-file or --graph", file=sys.stderr)
        return 2
    expected = None
    if args.verify:
        # Differential mode: build the same index locally and check
        # every gateway reply against the direct answers.
        if graph is None:
            print("--verify requires --graph (it rebuilds the index "
                  "locally for ground truth)", file=sys.stderr)
            return 2
        from repro.core.service import QueryService

        with QueryService(build_index(graph,
                                      scheme=args.scheme)) as service:
            expected = [bool(a) for a in service.query_batch(pairs)]
    index_target: "str | int | None" = args.index
    if index_target is not None and args.protocol == "binary":
        # Binary frames address catalog entries by numeric id; resolve
        # the name with one management-plane round trip.
        from repro.server.client import ReachClient

        with ReachClient(args.host, args.port) as client:
            rows = {row["name"]: row["index_id"]
                    for row in client.catalog_list()}
        if index_target not in rows:
            print(f"unknown index {index_target!r}; server has: "
                  f"{', '.join(sorted(rows))}", file=sys.stderr)
            return 2
        index_target = rows[index_target]
    result = run_loadgen(args.host, args.port, pairs,
                         connections=args.connections,
                         duration=args.duration,
                         pipeline=args.pipeline,
                         batch_size=args.batch_size, rate=args.rate,
                         latency_sample=args.latency_sample,
                         expected=expected, protocol=args.protocol,
                         index=index_target, trace=args.trace)
    print(format_kv_table(
        result.as_dict(),
        title=f"loadgen — {args.host}:{args.port}, "
              f"{args.connections} connections"))
    print(format_kv_table(result.error_breakdown(),
                          title="error breakdown"))
    if result.mismatch_samples:
        print("\nwrong-answer samples (u, v, got, want):")
        for sample in result.mismatch_samples:
            print(f"  {sample}")
    print(f"\n[{result.queries_per_second:,.0f} queries/second "
          f"end-to-end through the gateway]")
    if result.wrong_answers:
        # Wrong answers are a correctness failure, ranked above (and
        # distinguished from) transport/overload errors.
        return 3
    return 1 if result.error_total else 0


def _format_top(doc: dict, slow: int) -> list[str]:
    """Render one ``stats`` snapshot as the ``top`` screen's lines."""
    server = doc.get("server", {})
    service = doc.get("service", {})
    batcher = doc.get("batcher", {})
    lines = [
        f"scheme={doc.get('scheme')}  "
        f"degraded={doc.get('degraded') or 'no'}  "
        f"uptime={server.get('uptime_seconds', 0.0):.0f}s  "
        f"conns={server.get('connections_open', 0)}"
        f"/{server.get('connections_total', 0)}  "
        f"swaps={server.get('index_swaps', 0)}",
        f"requests={server.get('requests_total', 0)}  "
        f"errors={server.get('errors_total', 0)}  "
        f"p50={server.get('p50_ms', 0.0):.2f}ms  "
        f"p99={server.get('p99_ms', 0.0):.2f}ms  "
        f"qps={service.get('queries_per_second', 0.0):,.0f}",
        f"batcher: in_flight={batcher.get('in_flight_pairs', 0)}  "
        f"flushes={batcher.get('flushes', 0)}  "
        f"mean_pairs={batcher.get('mean_flush_pairs', 0.0):.1f}  "
        f"shed={batcher.get('shed_requests', 0)}",
    ]
    catalog = doc.get("catalog", [])
    if len(catalog) > 1:
        # Only worth screen space once named tenants exist; the lone
        # default entry is already summarised by the lines above.
        lines.append("tenant       id  gen  admitted      shed  "
                     "inflight  label_mb")
        for entry in catalog:
            label_mb = (entry.get("label_bytes") or 0) / 1e6
            lines.append(
                f"  {entry.get('name', '?'):10s}"
                f" {entry.get('index_id', 0):3d}"
                f" {entry.get('generation', 0):4d}"
                f" {entry.get('admitted', 0):9d}"
                f" {entry.get('shed', 0):9d}"
                f" {entry.get('inflight', 0):9d}"
                f" {label_mb:9.2f}"
                + ("" if entry.get("loaded") else "  (empty)"))
    stages = doc.get("stages", {})
    if stages:
        lines.append("stage        p50_ms    p95_ms    p99_ms    max_ms")
        for stage, pcts in stages.items():
            lines.append(f"  {stage:10s}"
                         f" {pcts.get('p50_ms', 0.0):8.3f}"
                         f"  {pcts.get('p95_ms', 0.0):8.3f}"
                         f"  {pcts.get('p99_ms', 0.0):8.3f}"
                         f"  {pcts.get('max_ms', 0.0):8.3f}")
    slow_queries = doc.get("slow_queries", [])[:slow]
    if slow_queries:
        lines.append("slowest requests (trace, verb, pairs, ms, stages):")
        for entry in slow_queries:
            stages_ms = entry.get("stages_ms", {})
            breakdown = " ".join(f"{k}={v:.2f}"
                                 for k, v in stages_ms.items())
            lines.append(f"  {entry.get('trace', '-'): <14}"
                         f" {entry.get('verb', '?'):6s}"
                         f" {entry.get('pairs', 0):5d}"
                         f" {entry.get('ms', 0.0):9.2f}  {breakdown}")
    return lines


def _fleet_snapshots(host: str, port: int,
                     timeout: float) -> dict[str, dict]:
    """One ``stats`` snapshot per fleet worker behind a shared port.

    SO_REUSEPORT hashes each fresh connection to a worker, so repeated
    one-shot connections eventually sample every process; stop after a
    run of connections that land on already-seen workers.
    """
    from repro.server.client import ReachClient

    seen: dict[str, dict] = {}
    attempts, misses = 0, 0
    while attempts < 64 and misses < 10:
        attempts += 1
        with ReachClient(host, port, timeout=timeout) as client:
            doc = client.stats()
        label = doc.get("worker") or "srv"
        if label in seen:
            misses += 1
        else:
            seen[label] = doc
            misses = 0
    return seen


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    from repro.server.client import ReachClient

    if args.fleet:
        if args.reset:
            print("note: --reset is ignored with --fleet (sampling "
                  "connections land on arbitrary workers)",
                  file=sys.stderr)
        try:
            while True:
                snapshots = _fleet_snapshots(args.host, args.port,
                                             args.timeout)
                for label in sorted(snapshots):
                    print(f"=== worker {label} ===", flush=True)
                    print("\n".join(_format_top(snapshots[label],
                                                args.slow)), flush=True)
                if args.once:
                    return 0
                print(f"-- {len(snapshots)} workers sampled; refresh "
                      f"in {args.interval:.0f}s (ctrl-c to stop) --",
                      flush=True)
                time.sleep(args.interval)
        except KeyboardInterrupt:
            print()
        return 0
    with ReachClient(args.host, args.port, timeout=args.timeout) as client:
        try:
            while True:
                doc = client.stats(reset=args.reset)
                print("\n".join(_format_top(doc, args.slow)), flush=True)
                if args.once:
                    return 0
                print(f"-- refresh in {args.interval:.0f}s "
                      f"(ctrl-c to stop) --", flush=True)
                time.sleep(args.interval)
        except KeyboardInterrupt:
            print()
    return 0


def _format_slo(doc: dict) -> list[str]:
    """Render the ``slo`` verb's report document for the terminal."""
    if not doc.get("enabled"):
        return ["slo tracking disabled — declare an objective with "
                "`repro-reach slo --availability/--latency-ms` or "
                "start the server with --slo-availability"]
    lines = []
    default = doc.get("default_objective")
    if default:
        lines.append(f"default objective: "
                     f"availability={default['availability']:g}, "
                     f"latency_ms={default['latency_ms']:g}")
    for name, entry in doc.get("entries", {}).items():
        objective = entry["objective"]
        alerts = [severity for severity, active
                  in entry.get("alerts", {}).items() if active]
        lifetime = entry.get("lifetime", {})
        lines.append(
            f"{name}: target={objective['availability']:g} "
            f"latency<{objective['latency_ms']:g}ms  "
            f"budget_remaining={entry['error_budget_remaining']:.1%}  "
            f"alerts={','.join(alerts) or 'none'}  "
            f"lifetime={lifetime.get('bad', 0)}"
            f"/{lifetime.get('total', 0)} bad")
        windows = entry.get("windows", {})
        if windows:
            lines.append("  window    total      bad  burn_rate")
            for label, win in windows.items():
                lines.append(f"  {label:6s} {win['total']:8d} "
                             f"{win['bad']:8d} {win['burn_rate']:10.2f}")
    return lines


def _cmd_slo(args: argparse.Namespace) -> int:
    import json

    from repro.server.client import ReachClient

    objective = None
    if args.availability is not None or args.latency_ms is not None:
        objective = {}
        if args.availability is not None:
            objective["availability"] = args.availability
        if args.latency_ms is not None:
            objective["latency_ms"] = args.latency_ms
    with ReachClient(args.host, args.port,
                     timeout=args.timeout) as client:
        doc = client.slo(index=args.index, objective=objective)
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print("\n".join(_format_slo(doc)))
    # Scripting contract: nonzero when any burn-rate alert is firing,
    # so `repro-reach slo` can gate a deploy step directly.
    for entry in doc.get("entries", {}).values():
        if any(entry.get("alerts", {}).values()):
            return 1
    return 0


def _cmd_doctor(args: argparse.Namespace) -> int:
    """One-shot triage bundle: every read-only observability surface
    of a running gateway, each reduced to a pass/fail line."""
    import json
    import time

    from repro.server.client import ReachClient

    checks: list[tuple[str, bool, str]] = []
    docs: dict[str, object] = {}
    with ReachClient(args.host, args.port,
                     timeout=args.timeout) as client:
        started = time.monotonic()
        client.ping()
        rtt_ms = (time.monotonic() - started) * 1000.0
        checks.append(("ping", True, f"pong in {rtt_ms:.1f}ms"))

        health = client.health()
        docs["health"] = health
        worker = health.get("worker")
        detail = f"status={health.get('status')}"
        if health.get("reason"):
            detail += f" ({health['reason']})"
        if worker is not None:
            detail += f"  worker={worker}"
        checks.append(("health", health.get("status") == "ok", detail))

        ready = client.ready()
        docs["ready"] = ready
        durable = ready.get("durable")
        detail = f"ready={ready.get('ready')}"
        if durable:
            detail += (f"  journal_seq={durable.get('seq')}"
                       f"  recovered={durable.get('recovered')}")
        checks.append(("ready", bool(ready.get("ready")), detail))

        stats = client.stats()
        docs["stats"] = stats
        server = stats.get("server", {})
        requests = server.get("requests_total", 0)
        errors = server.get("errors_total", 0)
        checks.append((
            "traffic", True,
            f"requests={requests}  errors={errors}  "
            f"p50={server.get('p50_ms', 0.0):.2f}ms  "
            f"p99={server.get('p99_ms', 0.0):.2f}ms"))
        shed = stats.get("batcher", {}).get("shed_requests", 0)
        checks.append(("admission", not shed,
                       f"shed_requests={shed}"))

        slo = client.slo()
        docs["slo"] = slo
        if not slo.get("enabled"):
            checks.append(("slo", True, "no objectives declared"))
        else:
            firing = sorted(
                f"{name}:{severity}"
                for name, entry in slo.get("entries", {}).items()
                for severity, active in entry.get("alerts", {}).items()
                if active)
            checks.append((
                "slo", not firing,
                f"alerts={','.join(firing) or 'none'}  "
                f"tracked={len(slo.get('entries', {}))}"))

        flight = client.flight()
        docs["flight"] = flight
        events = flight.get("events", [])
        tail = events[-args.events:]
        checks.append((
            "flight", True,
            f"{len(events)} ring events, {flight.get('dumps', 0)} "
            f"dumps written"))
        catalog = client.catalog_list()
        docs["catalog"] = catalog
        empty = [row["name"] for row in catalog
                 if not row.get("loaded")]
        checks.append((
            "catalog", not empty,
            f"{len(catalog)} entries"
            + (f", empty: {', '.join(empty)}" if empty else "")))

        metrics = client.metrics()
        docs["metrics"] = metrics
        families = sum(
            1 for line in metrics.get("exposition", "").splitlines()
            if line.startswith("# TYPE "))
        checks.append(("metrics", families > 0,
                       f"{families} metric families"))

    print(f"doctor — {args.host}:{args.port}")
    failed = 0
    for name, ok, detail in checks:
        failed += 0 if ok else 1
        print(f"  [{'ok' if ok else 'FAIL':4s}] {name:10s} {detail}")
    if tail:
        print(f"  last {len(tail)} flight events:")
        for event in tail:
            extras = {k: v for k, v in event.items()
                      if k not in ("ts", "seq", "kind")}
            print(f"    seq={event.get('seq')} {event.get('kind')} "
                  + " ".join(f"{k}={v}" for k, v in extras.items()))
    slow = stats.get("slow_queries", [])[:3]
    if slow:
        print("  slowest traces:")
        for entry in slow:
            print(f"    {entry.get('trace', '-')} "
                  f"{entry.get('verb', '?')} "
                  f"{entry.get('ms', 0.0):.2f}ms "
                  + " ".join(f"{k}={v:.2f}" for k, v in
                             entry.get("stages_ms", {}).items()))
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        for name, doc in docs.items():
            path = args.out / f"{name}.json"
            path.write_text(json.dumps(doc, indent=2, sort_keys=True,
                                       default=str) + "\n",
                            encoding="utf-8")
        print(f"  raw documents written to {args.out}/")
    print("doctor: all checks passed" if not failed
          else f"doctor: {failed} check(s) FAILED")
    return 1 if failed else 0


def _cmd_metrics_smoke(args: argparse.Namespace) -> int:
    from repro.obs.smoke import run_metrics_smoke

    report = run_metrics_smoke(nodes=args.nodes, seed=args.seed)
    for line in report.summary_lines():
        print(line)
    return 0 if report.ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    import tempfile

    from repro.testing.chaos import (
        run_chaos_soak,
        run_crash_restart_soak,
        run_tenant_isolation_soak,
    )

    if args.smoke:
        # CI-sized soak: short, small graph, but still every fault kind.
        args.duration = min(args.duration, 6.0)
        args.nodes = min(args.nodes, 100)
    if args.crash_restart:
        cycles = min(args.cycles, 5) if args.smoke else args.cycles
        with tempfile.TemporaryDirectory(
                prefix="repro-crash-") as workdir:
            report = run_crash_restart_soak(
                seed=args.seed, cycles=cycles, nodes=args.nodes,
                scheme=args.scheme, workers=args.workers,
                # Subprocess restarts pay interpreter startup on top
                # of journal replay; the 5s network-fault default
                # would time out on a healthy recovery.
                recovery_timeout=max(args.recovery_timeout, 20.0),
                workdir=workdir)
        print("\n".join(report.summary_lines()))
        return 0 if report.ok() else 1
    if args.isolation:
        report = run_tenant_isolation_soak(
            seed=args.seed, duration=args.duration, nodes=args.nodes,
            scheme=args.scheme, workers=max(args.workers, 2),
            p99_limit=args.p99_limit)
        print("\n".join(report.summary_lines()))
        return 0 if report.ok() else 1
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as workdir:
        report = run_chaos_soak(
            seed=args.seed, duration=args.duration, nodes=args.nodes,
            scheme=args.scheme, recovery_timeout=args.recovery_timeout,
            connections=args.connections, workdir=workdir,
            workers=args.workers, protocol=args.protocol)
    print("\n".join(report.summary_lines()))
    return 0 if report.ok() else 1


def _cmd_golden(args: argparse.Namespace) -> int:
    from repro.bench.goldens import (
        check_against_golden,
        create_golden,
        load_golden,
        save_golden,
    )

    graph = read_edge_list(args.graph)
    if args.golden_command == "create":
        golden = create_golden(graph, args.queries, seed=args.seed)
        save_golden(golden, args.out)
        print(f"wrote golden with {len(golden)} queries "
              f"({golden.positives} positive) to {args.out}")
        return 0
    golden = load_golden(args.golden)
    index = build_index(graph, scheme=args.scheme)
    mismatches = check_against_golden(index, golden)
    if not mismatches:
        print(f"{args.scheme}: OK — agrees with the golden on all "
              f"{len(golden)} queries")
        return 0
    print(f"{args.scheme}: FAILED — {len(mismatches)} disagreements")
    for u, v, actual, expected in mismatches:
        print(f"  MISMATCH {u} -> {v}: index={actual} "
              f"golden={expected}")
    return 1


def _cmd_selftest(args: argparse.Namespace) -> int:
    """Cross-scheme agreement battery over several graph families."""
    from repro.core.validation import validate_index
    from repro.graph.generators import (
        citation_dag,
        gnm_random_digraph,
        random_tree,
        single_rooted_dag,
    )

    families = {
        "tree": random_tree(150, max_fanout=4, seed=args.seed),
        "rooted-dag": single_rooted_dag(150, 200, max_fanout=5,
                                        seed=args.seed),
        "random-cyclic": gnm_random_digraph(120, 300, seed=args.seed),
        "citation": citation_dag(150, refs_per_node=2, seed=args.seed),
    }
    failures = 0
    for family, graph in families.items():
        for scheme in available_schemes():
            index = build_index(graph, scheme=scheme)
            report = validate_index(index, graph, sample=args.sample,
                                    seed=args.seed)
            verdict = "ok" if report.ok else "FAILED"
            if not report.ok:
                failures += 1
            print(f"  {family:14s} {scheme:12s} {verdict} "
                  f"({report.num_checked} pairs)")
    if failures:
        print(f"selftest: {failures} scheme/family combinations FAILED")
        return 1
    print("selftest: every scheme agrees with ground truth "
          "on every family ✔")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.core.validation import validate_index

    graph = read_edge_list(args.graph)
    index = build_index(graph, scheme=args.scheme)
    report = validate_index(index, graph, sample=args.sample,
                            seed=args.seed)
    print(report.summary())
    for u, v, answer, truth in report.mismatches:
        print(f"  MISMATCH {u} -> {v}: index={answer} truth={truth}")
    return 0 if report.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-reach",
        description=("Dual labeling — constant-time graph reachability "
                     "(ICDE 2006 reproduction)"))
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("schemes", help="list index schemes")

    gen = sub.add_parser("generate", help="generate a synthetic graph")
    gen.add_argument("kind",
                     choices=("gnm", "dag", "random-dag", "tree", "dataset"))
    gen.add_argument("--nodes", type=int, default=2000)
    gen.add_argument("--edges", type=int, default=3000)
    gen.add_argument("--fanout", type=int, default=5)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--dataset", choices=dataset_names(),
                     help="dataset name (kind=dataset)")
    gen.add_argument("--out", type=Path, required=True)

    stats = sub.add_parser("stats", help="summarise a graph file")
    stats.add_argument("graph", type=Path)

    build = sub.add_parser("build", help="build an index, print stats")
    build.add_argument("graph", type=Path)
    build.add_argument("--scheme", choices=available_schemes(),
                       default="dual-i")
    build.add_argument("--save", type=Path, default=None,
                       help="persist the index (dual-i or dual-ii) as "
                            "JSON")

    query = sub.add_parser("query", help="answer reachability queries")
    query.add_argument("graph", type=Path, nargs="?", default=None)
    query.add_argument("--index", type=Path, default=None,
                       help="load a saved dual-i/dual-ii index instead "
                            "of building from the graph file")
    query.add_argument("--scheme", choices=available_schemes(),
                       default="dual-i")
    query.add_argument("--pairs", type=_parse_pair, nargs="+",
                       help="explicit queries as u:v tokens")
    query.add_argument("--pairs-file", type=Path, default=None,
                       help="file of 'u,v' lines, answered in one "
                            "QueryService.query_batch() call")
    query.add_argument("--random", type=int, default=10_000,
                       help="number of random queries when --pairs absent")
    query.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve",
        help="serve reachability over TCP (newline-delimited JSON, "
             "cross-connection micro-batching)")
    serve.add_argument("graph", type=Path, nargs="?", default=None)
    serve.add_argument("--index", type=Path, default=None,
                       help="warm-start from a saved index instead of "
                            "building from the graph file")
    serve.add_argument("--scheme", choices=available_schemes(),
                       default="dual-i")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7421,
                       help="listening port (0 = ephemeral)")
    serve.add_argument("--max-batch", type=int, default=512,
                       help="flush the micro-batch at this many pairs")
    serve.add_argument("--max-delay-ms", type=float, default=2.0,
                       help="flush the micro-batch after this many ms")
    serve.add_argument("--max-pending", type=int, default=8192,
                       help="admission bound on in-flight pairs")
    serve.add_argument("--policy", choices=("block", "shed"),
                       default="block",
                       help="over capacity: block the sender or shed "
                            "with an 'overloaded' error reply")
    serve.add_argument("--max-request-pairs", type=int, default=4096,
                       help="per-request pair cap ('too_large' beyond)")
    serve.add_argument("--max-conn-inflight", type=int, default=64,
                       help="per-connection in-flight request cap")
    serve.add_argument("--request-timeout", type=float, default=30.0,
                       help="seconds before a request times out")
    serve.add_argument("--tenant", type=_parse_tenant,
                       action="append", metavar="NAME=GRAPH",
                       help="also serve GRAPH as the named catalog "
                            "entry (repeatable; built with --scheme; "
                            "manage at runtime via the catalog verb)")
    serve.add_argument("--state-dir", type=Path, default=None,
                       help="durable state directory: journal every "
                            "catalog mutation (fsynced before the "
                            "client ack), checkpoint periodically, "
                            "and recover the whole catalog — default "
                            "index, tenants, quotas, generations — "
                            "on restart; the graph/--index arguments "
                            "become the fallback for a fresh dir")
    serve.add_argument("--state-checkpoint-interval", type=int,
                       default=64, metavar="N",
                       help="fold the journal into the manifest "
                            "checkpoint every N records (bounds "
                            "journal growth and replay time)")
    serve.add_argument("--state-retain", type=int, default=2,
                       metavar="N",
                       help="saved index generations kept per tenant "
                            "before GC removes the older artifacts")
    serve.add_argument("--workers", type=int, default=1,
                       help="worker processes sharing the port via "
                            "SO_REUSEPORT, each attaching the index "
                            "from shared memory (1 = single-process)")
    serve.add_argument("--executor-threads", type=int, default=1,
                       help="kernel executor threads per process")
    serve.add_argument("--access-log", default=None,
                       help="structured JSON access-log file "
                            "('-' for stderr)")
    serve.add_argument("--access-log-max-bytes", type=int, default=None,
                       help="rotate the access log once it exceeds this "
                            "many bytes (one .1 generation kept)")
    serve.add_argument("--metrics-port", type=int, default=None,
                       help="also expose GET /metrics (Prometheus text "
                            "format) on this HTTP port (0 = ephemeral)")
    serve.add_argument("--slow-log-size", type=int, default=32,
                       help="slowest requests retained by the "
                            "slow-query log")
    serve.add_argument("--span-sample", type=int, default=8,
                       help="record per-stage span histograms for 1 in "
                            "this many requests (the slow-query log "
                            "still sees every request; 1 = all)")
    serve.add_argument("--slo-availability", type=float, default=None,
                       metavar="FRACTION",
                       help="track every catalog entry against this "
                            "availability objective (e.g. 0.999); "
                            "enables the per-tenant SLO engine, burn-"
                            "rate alerts, and the reach_slo_* metric "
                            "families")
    serve.add_argument("--slo-latency-ms", type=float, default=None,
                       help="requests slower than this count against "
                            "the error budget (default 50ms when only "
                            "--slo-availability is given)")
    serve.add_argument("--flight-dir", type=Path, default=None,
                       help="spill the crash flight recorder to this "
                            "directory (defaults to <state-dir>/"
                            "flightrec when --state-dir is set; dumps "
                            "are written on degraded entry, worker "
                            "respawn, fatal signals, and via the "
                            "'flight' verb)")

    loadgen = sub.add_parser(
        "loadgen",
        help="drive a running gateway with open-loop load")
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, required=True)
    loadgen.add_argument("--pairs-file", type=Path, default=None,
                         help="query pool: file of 'u,v' lines")
    loadgen.add_argument("--graph", type=Path, default=None,
                         help="query pool: --random pairs drawn from "
                              "this graph file")
    loadgen.add_argument("--random", type=int, default=10_000,
                         help="pool size when drawing from --graph")
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--connections", type=int, default=8,
                         help="concurrent TCP connections")
    loadgen.add_argument("--duration", type=float, default=2.0,
                         help="seconds to keep sending")
    loadgen.add_argument("--pipeline", type=int, default=4,
                         help="in-flight requests per connection")
    loadgen.add_argument("--batch-size", type=int, default=1,
                         help="pairs per request (1 = 'query' verb)")
    loadgen.add_argument("--rate", type=float, default=None,
                         help="aggregate requests/second pacing target")
    loadgen.add_argument("--latency-sample", type=int, default=1,
                         help="record the latency of every Nth request "
                              "(1 = all; >1 trades tail-percentile "
                              "fidelity for loadgen overhead)")
    loadgen.add_argument("--protocol", choices=("json", "binary"),
                         default="json",
                         help="wire protocol: newline-JSON verbs or "
                              "length-prefixed binary frames "
                              "(struct-packed pairs in, answer "
                              "bitmaps out)")
    loadgen.add_argument("--index", default=None,
                         help="target a named catalog entry instead of "
                              "the default index (binary protocol "
                              "resolves the name to its numeric id "
                              "first)")
    loadgen.add_argument("--trace", action="store_true",
                         help="stamp every JSON request with a client-"
                              "minted trace id (echoed in replies; "
                              "lands in the server's slow-query log, "
                              "stage exemplars, and flight recorder)")
    loadgen.add_argument("--verify", action="store_true",
                         help="differentially check every reply against "
                              "a locally built index (needs --graph); "
                              "exit 3 on any wrong answer")
    loadgen.add_argument("--scheme", choices=available_schemes(),
                         default="dual-i",
                         help="scheme for the --verify ground-truth "
                              "index")

    top = sub.add_parser(
        "top",
        help="live stats view of a running gateway (requests, stage "
             "percentiles, batcher occupancy, slowest queries)")
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, required=True)
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between refreshes")
    top.add_argument("--once", action="store_true",
                     help="print one snapshot and exit")
    top.add_argument("--slow", type=int, default=5,
                     help="slowest requests shown per refresh")
    top.add_argument("--reset", action="store_true",
                     help="drain the service window and slow-query log "
                          "on every poll, so each refresh shows that "
                          "interval only")
    top.add_argument("--fleet", action="store_true",
                     help="sample every worker behind the shared port "
                          "(repeated fresh connections, keyed by the "
                          "stats worker label) and render one section "
                          "per worker")
    top.add_argument("--timeout", type=float, default=10.0)

    slo = sub.add_parser(
        "slo",
        help="report (and optionally declare) per-tenant SLOs on a "
             "running gateway; exits 1 while any burn-rate alert "
             "fires")
    slo.add_argument("--host", default="127.0.0.1")
    slo.add_argument("--port", type=int, required=True)
    slo.add_argument("--index", default=None,
                     help="declare the objective for this catalog "
                          "entry (default: the default index)")
    slo.add_argument("--availability", type=float, default=None,
                     metavar="FRACTION",
                     help="declare this availability target (0..1) "
                          "before reporting")
    slo.add_argument("--latency-ms", type=float, default=None,
                     help="declare this latency threshold before "
                          "reporting")
    slo.add_argument("--json", action="store_true",
                     help="print the raw report document instead of "
                          "the table")
    slo.add_argument("--timeout", type=float, default=10.0)

    doctor = sub.add_parser(
        "doctor",
        help="one-shot triage bundle: ping, health, readiness, "
             "traffic, SLO alerts, flight-recorder tail, catalog, and "
             "metrics families, each with a pass/fail verdict")
    doctor.add_argument("--host", default="127.0.0.1")
    doctor.add_argument("--port", type=int, required=True)
    doctor.add_argument("--events", type=int, default=5,
                        help="flight-recorder events shown")
    doctor.add_argument("--out", type=Path, default=None,
                        help="also write every raw document (health, "
                             "stats, slo, flight, catalog, metrics) "
                             "as JSON files into this directory")
    doctor.add_argument("--timeout", type=float, default=10.0)

    metrics_smoke = sub.add_parser(
        "metrics-smoke",
        help="end-to-end observability check: start a server, drive "
             "traffic, scrape /metrics, validate the exposition")
    metrics_smoke.add_argument("--nodes", type=int, default=200,
                               help="synthetic graph size")
    metrics_smoke.add_argument("--seed", type=int, default=0)

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection soak: server + verified load under a "
             "seeded fault schedule")
    chaos.add_argument("--seed", type=int, default=0,
                       help="replays the whole run: graph, pool, and "
                            "fault schedule")
    chaos.add_argument("--duration", type=float, default=8.0,
                       help="seconds of sustained load")
    chaos.add_argument("--nodes", type=int, default=150,
                       help="graph size (edges = 2x)")
    chaos.add_argument("--scheme", choices=("dual-i", "dual-ii"),
                       default="dual-ii")
    chaos.add_argument("--recovery-timeout", type=float, default=5.0,
                       help="per-fault bound on seeing correct answers "
                            "again")
    chaos.add_argument("--connections", type=int, default=4)
    chaos.add_argument("--workers", type=int, default=0,
                       help="soak a multi-process worker fleet of this "
                            "size instead of the in-process server "
                            "(adds worker_kill/worker_hang faults)")
    chaos.add_argument("--protocol", choices=("json", "binary"),
                       default="json",
                       help="wire protocol the verified load speaks; "
                            "binary exercises frame resync under "
                            "garble/truncation faults")
    chaos.add_argument("--crash-restart", action="store_true",
                       help="run the power-loss prover instead: "
                            "SIGKILL a real `serve --state-dir` "
                            "subprocess mid-mutation, restart onto "
                            "the same state dir, and verify atomic "
                            "recovery with zero wrong answers")
    chaos.add_argument("--cycles", type=int, default=20,
                       help="crash-restart soak: kill/restart cycles "
                            "(--smoke caps this at 5)")
    chaos.add_argument("--isolation", action="store_true",
                       help="run the cross-tenant isolation soak "
                            "instead: tenant A floods past its quota "
                            "while workers are killed; tenant B must "
                            "stay correct and fast")
    chaos.add_argument("--p99-limit", type=float, default=2.0,
                       help="isolation soak: multiple of the quiet "
                            "baseline p99 the victim tenant may reach")
    chaos.add_argument("--smoke", action="store_true",
                       help="CI-sized run (caps duration and nodes)")

    golden = sub.add_parser(
        "golden",
        help="create / check ground-truth query workload files")
    golden_sub = golden.add_subparsers(dest="golden_command",
                                       required=True)
    golden_create = golden_sub.add_parser(
        "create", help="generate a golden for a graph")
    golden_create.add_argument("graph", type=Path)
    golden_create.add_argument("--queries", type=int, default=1000)
    golden_create.add_argument("--seed", type=int, default=0)
    golden_create.add_argument("--out", type=Path, required=True)
    golden_check = golden_sub.add_parser(
        "check", help="verify an index against a golden")
    golden_check.add_argument("graph", type=Path)
    golden_check.add_argument("golden", type=Path)
    golden_check.add_argument("--scheme", choices=available_schemes(),
                              default="dual-i")

    selftest = sub.add_parser(
        "selftest",
        help="cross-scheme agreement battery over several graph families")
    selftest.add_argument("--sample", type=int, default=400)
    selftest.add_argument("--seed", type=int, default=0)

    validate = sub.add_parser(
        "validate", help="cross-check an index against BFS ground truth")
    validate.add_argument("graph", type=Path)
    validate.add_argument("--scheme", choices=available_schemes(),
                          default="dual-i")
    validate.add_argument("--sample", type=int, default=None,
                          help="number of random pairs (default: "
                               "exhaustive up to 300 nodes)")
    validate.add_argument("--seed", type=int, default=0)

    # `bench ...` forwards everything after it to the experiment runner.
    bench = sub.add_parser("bench", help="run paper experiments",
                           add_help=False)
    bench.add_argument("rest", nargs=argparse.REMAINDER)

    args = parser.parse_args(argv)
    if args.command == "bench":
        return bench_main(args.rest)
    if args.command == "generate" and args.kind == "dataset" \
            and not args.dataset:
        parser.error("generate dataset requires --dataset NAME")
    if args.command in ("query", "serve") and args.graph is None \
            and args.index is None:
        parser.error(f"{args.command} needs a graph file or --index FILE")
    if args.command == "serve" and args.graph is not None \
            and args.index is not None:
        parser.error("serve takes a graph file or --index, not both")
    handlers = {
        "schemes": _cmd_schemes,
        "generate": _cmd_generate,
        "stats": _cmd_stats,
        "build": _cmd_build,
        "query": _cmd_query,
        "serve": _cmd_serve,
        "loadgen": _cmd_loadgen,
        "top": _cmd_top,
        "slo": _cmd_slo,
        "doctor": _cmd_doctor,
        "metrics-smoke": _cmd_metrics_smoke,
        "chaos": _cmd_chaos,
        "validate": _cmd_validate,
        "selftest": _cmd_selftest,
        "golden": _cmd_golden,
    }
    try:
        return handlers[args.command](args)
    except (ReproError, OSError) as exc:
        # User-facing failures (missing/malformed files, unknown nodes)
        # become one-line errors, not tracebacks.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
