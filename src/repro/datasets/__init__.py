"""Dataset stand-ins for the paper's Table 2 real graphs.

Real BioCyc exports and the XMark generator are unavailable offline; these
calibrated synthetic graphs match the paper's reported sizes exactly and
its preprocessing outcomes closely (see DESIGN.md, substitution table).
"""

from repro.datasets.registry import (
    TABLE2_SPECS,
    dataset_names,
    get_spec,
    load_dataset,
)
from repro.datasets.synthetic import DatasetSpec, build_calibrated_graph

__all__ = [
    "TABLE2_SPECS",
    "dataset_names",
    "get_spec",
    "load_dataset",
    "DatasetSpec",
    "build_calibrated_graph",
]
