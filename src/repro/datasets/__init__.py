"""Dataset stand-ins for the paper's Table 2 real graphs.

Real BioCyc exports and the XMark generator are unavailable offline; these
calibrated synthetic graphs match the paper's reported sizes exactly and
its preprocessing outcomes closely (see DESIGN.md, substitution table).
"""

from repro.datasets.registry import (
    TABLE2_SPECS,
    dataset_names,
    get_spec,
    load_dataset,
)
from repro.datasets.scenarios import (
    SCENARIO_SPECS,
    ScenarioSpec,
    build_scenario_graph,
    dependency_resolution_dag,
    netlist_dataflow_dag,
    scenario_names,
)
from repro.datasets.synthetic import DatasetSpec, build_calibrated_graph

__all__ = [
    "TABLE2_SPECS",
    "SCENARIO_SPECS",
    "dataset_names",
    "scenario_names",
    "get_spec",
    "load_dataset",
    "build_scenario_graph",
    "netlist_dataflow_dag",
    "dependency_resolution_dag",
    "DatasetSpec",
    "ScenarioSpec",
    "build_calibrated_graph",
]
