"""Scenario packs: workload-shaped DAG generators beyond Table 2.

The Table 2 stand-ins replay the paper's graphs; the scenario packs
model the *consumers* the serving stack now targets:

* ``netlist-dataflow`` — a hardware netlist / HLS dataflow DAG in the
  shape hwtHls's reachability pass walks: long combinational pipelines
  of narrow stages, one driving operation per value (the tree edge)
  and only occasional bypass/forwarding taps, so the spanning tree
  covers almost every edge and ``t`` (non-tree edges) stays tiny —
  dual labeling's best case.
* ``dependency-resolution`` — a package/constraint dependency DAG in
  the shape configuration-synthesis resolvers query: shallow and very
  wide, thousands of leaf packages funnelling through shared
  mid-stack libraries onto a handful of base runtimes.  Every shared
  base closes diamonds, so the edge ratio is high and many edges
  survive as non-tree — the stress case for the TLC structures.

Both generators emit simple DAGs over the dense node space
``0..n-1`` (ids assigned in topological order), so every index
scheme, the fast kernel, and the binary wire protocol apply directly,
and a seed makes each graph exactly reproducible.  They register in
:mod:`repro.datasets.registry`, making them loadable anywhere a
dataset name is accepted (``repro generate --dataset``, bench
harnesses, the chaos/differential soaks).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.exceptions import DatasetError
from repro.graph.digraph import DiGraph

__all__ = [
    "SCENARIO_SPECS",
    "ScenarioSpec",
    "build_scenario_graph",
    "dependency_resolution_dag",
    "netlist_dataflow_dag",
    "scenario_names",
]


@dataclass(frozen=True)
class ScenarioSpec:
    """Registry entry of one scenario generator."""

    name: str
    description: str
    #: Node count used when a caller loads the scenario by name
    #: without sizing it explicitly.
    default_nodes: int


def netlist_dataflow_dag(nodes: int, seed: int = 0) -> DiGraph:
    """A deep, narrow netlist/dataflow DAG (high tree-edge ratio).

    Nodes are operations arranged in pipeline stages of width ``≈
    max(2, n^0.35)``.  Each operation reads one value produced by the
    previous stage (its tree edge) and, with small probability, taps
    an earlier stage's value (a bypass — the non-tree edge).  The
    result is the hwtHls shape: depth ``Θ(n / width)``, edge count
    ``≈ 1.15 n``, and a spanning tree covering ~87% of edges.
    """
    if nodes < 2:
        raise DatasetError(f"scenario graphs need >= 2 nodes, got {nodes}")
    rng = random.Random(seed)
    width = max(2, round(nodes ** 0.35))
    graph = DiGraph()
    graph.add_nodes(range(nodes))
    stages: list[list[int]] = []
    for node in range(nodes):
        stage = node // width
        if stage == len(stages):
            stages.append([])
        stages[stage].append(node)
        if stage == 0:
            continue
        # The driving operation: one tree edge from the previous stage.
        graph.add_edge(rng.choice(stages[stage - 1]), node)
        # Occasional bypass taps from any strictly earlier stage keep
        # the non-tree edge count low but non-zero.
        if stage >= 2 and rng.random() < 0.15:
            tap_stage = rng.randrange(stage - 1)
            graph.add_edge(rng.choice(stages[tap_stage]), node)
    return graph


def dependency_resolution_dag(nodes: int, seed: int = 0) -> DiGraph:
    """A wide, diamond-heavy package-dependency DAG.

    Five layers sized base → apps as ``2% / 8% / 15% / 25% / 50%`` of
    ``n``; every package depends on 2–5 packages from strictly lower
    layers, drawn with preferential attachment so popular libraries
    are shared by many dependents — each shared library closes
    diamonds.  Edges point dependent → dependency (higher id → lower
    id), so "can package ``p`` pull in package ``q``?" is exactly a
    reachability query.
    """
    if nodes < 5:
        raise DatasetError(f"scenario graphs need >= 5 nodes, got {nodes}")
    rng = random.Random(seed)
    fractions = (0.02, 0.08, 0.15, 0.25, 0.50)
    sizes = [max(1, round(nodes * f)) for f in fractions]
    sizes[-1] += nodes - sum(sizes)  # exact total, slack into the apps
    graph = DiGraph()
    graph.add_nodes(range(nodes))
    # Preferential-attachment pool: a node appears once per incoming
    # dependency edge (plus once at birth), so popular bases dominate.
    pool: list[int] = []
    boundary = 0  # nodes below this id sit in strictly lower layers
    node = 0
    for layer, size in enumerate(sizes):
        first = node
        for _ in range(size):
            if layer:
                want = rng.randint(2, 5)
                deps: set[int] = set()
                for _ in range(want * 3):  # rejection-sample duplicates
                    if len(deps) == want:
                        break
                    pick = (rng.choice(pool) if pool and rng.random() < 0.7
                            else rng.randrange(boundary))
                    deps.add(pick)
                for dep in deps:
                    graph.add_edge(node, dep)
                    pool.append(dep)
            node += 1
        # A layer's packages only become eligible dependencies once the
        # layer closes — dependencies stay strictly cross-layer, so the
        # DAG depth is capped by the number of layers.
        pool.extend(range(first, node))
        boundary = first + size
    return graph


_BUILDERS = {
    "netlist-dataflow": netlist_dataflow_dag,
    "dependency-resolution": dependency_resolution_dag,
}

#: The registered scenario packs, keyed by name.
SCENARIO_SPECS: dict[str, ScenarioSpec] = {
    "netlist-dataflow": ScenarioSpec(
        name="netlist-dataflow",
        description=("HLS netlist/dataflow pipeline: deep, narrow, "
                     "~87% tree edges (hwtHls reachability-pass shape)"),
        default_nodes=4000,
    ),
    "dependency-resolution": ScenarioSpec(
        name="dependency-resolution",
        description=("package/constraint dependency DAG: shallow, "
                     "wide, diamond-heavy via shared base libraries"),
        default_nodes=3000,
    ),
}


def scenario_names() -> list[str]:
    """Registered scenario names, in registration order."""
    return list(SCENARIO_SPECS)


def build_scenario_graph(name: str, *, nodes: int | None = None,
                         seed: int = 0) -> DiGraph:
    """Build scenario ``name`` at ``nodes`` size (spec default if
    ``None``).

    Raises
    ------
    DatasetError
        For unknown scenario names.
    """
    try:
        spec = SCENARIO_SPECS[name]
    except KeyError:
        known = ", ".join(SCENARIO_SPECS)
        raise DatasetError(
            f"unknown scenario {name!r}; available: {known}") from None
    return _BUILDERS[name](nodes if nodes is not None
                           else spec.default_nodes, seed)
