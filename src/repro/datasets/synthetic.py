"""Calibrated synthetic stand-ins for the paper's real graphs (Table 2).

The paper evaluates on four EcoCyc-family metabolic/genome graphs
(AgroCyc, Ecoo157, HpyCyc, VchoCyc) and one XMark XML document.  Neither
the BioCyc exports nor the XMark generator are available offline, so this
module *simulates* them: for each dataset we generate a graph that

* matches the paper's reported ``|V_G|`` and ``|E_G|`` exactly, and
* is structured (tree skeleton + cross edges + small cycles + redundant
  shortcuts) so that after SCC condensation and MEG reduction the
  ``|V_DAG|``, ``|E_DAG|`` and ``|E_MEG|`` counts land close to the
  paper's — i.e. the preprocessing pipeline does the same amount and kind
  of work it did on the real data.

Construction (per dataset spec):

1. **SCC groups** — ``k`` groups of 2–4 nodes that will be wired into
   directed cycles; group sizes are chosen so the condensation removes
   exactly ``|V_G| − |V_DAG|`` nodes.
2. **DAG skeleton** over the ``|V_DAG|`` super-nodes: a random attachment
   tree (its shape knob distinguishes "deep XML document" from "broad
   metabolic network"), plus ``|E_MEG| − (|V_DAG| − 1)`` cross edges
   (kept by MEG) plus ``|E_DAG| − |E_MEG|`` grandchild shortcuts
   (provably removed by MEG).
3. **Expansion** — each super-node becomes its group; skeleton edges
   attach to random group members; remaining edge budget is spent on
   intra-group chords and self-loops, which vanish in condensation
   without affecting ``|V_DAG|``.

Cross edges may accidentally duplicate reachability (making MEG remove
one more edge than planned), so the DAG/MEG counts are approximate —
tests assert they stay within 2% of the paper's numbers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.exceptions import DatasetError
from repro.graph.digraph import DiGraph

__all__ = ["DatasetSpec", "build_calibrated_graph"]


@dataclass(frozen=True)
class DatasetSpec:
    """Calibration targets for one Table 2 dataset.

    ``tree_depth_bias`` shapes the skeleton tree: 0.0 attaches uniformly
    at random (broad, shallow — metabolic networks); values near 1.0
    prefer recently created nodes (deep nesting — XML documents).
    """

    name: str
    num_nodes: int          # |V_G|
    num_edges: int          # |E_G|
    dag_nodes: int          # |V_DAG| (paper, target)
    dag_edges: int          # |E_DAG| (paper, target)
    meg_edges: int          # |E_MEG| (paper, target)
    tree_depth_bias: float = 0.0
    description: str = ""

    def __post_init__(self) -> None:
        if not (0 < self.dag_nodes <= self.num_nodes):
            raise ValueError(f"{self.name}: dag_nodes out of range")
        if not (self.meg_edges <= self.dag_edges <= self.num_edges):
            raise ValueError(f"{self.name}: edge targets must be ordered "
                             "meg <= dag <= total")
        if self.meg_edges < self.dag_nodes - 1:
            raise ValueError(f"{self.name}: meg_edges cannot be below the "
                             "spanning-tree size dag_nodes - 1")


def build_calibrated_graph(spec: DatasetSpec, seed: int = 0) -> DiGraph:
    """Generate a graph matching ``spec`` (see module docstring).

    ``|V_G|`` and ``|E_G|`` are exact; DAG/MEG counts are close targets.
    """
    rng = random.Random(seed)
    reduction = spec.num_nodes - spec.dag_nodes

    # --- 1. choose SCC group sizes (each size-c group removes c-1 nodes).
    group_sizes: list[int] = []
    left = reduction
    while left > 0:
        size = rng.choice((2, 2, 3, 3, 4))  # small cycles, as in Cyc data
        if size - 1 > left:
            size = left + 1
        group_sizes.append(size)
        left -= size - 1

    # --- 2. DAG skeleton over super-nodes 0..dag_nodes-1 (0 is the root).
    k = spec.dag_nodes
    skeleton = DiGraph(nodes=range(k))
    parent = [0] * k
    children: list[list[int]] = [[] for _ in range(k)]
    for v in range(1, k):
        if spec.tree_depth_bias > 0 and rng.random() < spec.tree_depth_bias:
            # Prefer a recent node: deep, path-like growth.
            lo = max(1, int(v * 0.8))
            p = rng.randrange(lo, v) if lo < v else v - 1
        else:
            p = rng.randrange(v)
        skeleton.add_edge(p, v)
        parent[v] = p
        children[p].append(v)

    # Cross edges (survive MEG): u -> v with u "before" v and v not a tree
    # descendant of u.  The creation-order constraint keeps acyclicity; the
    # non-descendant constraint avoids trivially superfluous edges.  (A few
    # may still be implied transitively via other cross edges — the reason
    # the DAG/MEG targets are approximate.)
    cross_target = spec.meg_edges - (k - 1)
    placed = 0
    attempts = 0
    max_attempts = 200 * max(cross_target, 1)
    # Tree ancestor test via per-node ancestor walking is too slow at this
    # scale; use depth + parent jumps (trees here are shallow or thin, and
    # the walk is bounded by depth).
    depth = [0] * k
    for v in range(1, k):
        depth[v] = depth[parent[v]] + 1

    def _is_tree_ancestor(a: int, b: int) -> bool:
        while depth[b] > depth[a]:
            b = parent[b]
        return a == b

    while placed < cross_target and attempts < max_attempts:
        attempts += 1
        v = rng.randrange(1, k)
        u = rng.randrange(v)
        if skeleton.has_edge(u, v) or _is_tree_ancestor(u, v):
            continue
        skeleton.add_edge(u, v)
        placed += 1
    if placed < cross_target:
        raise DatasetError(
            f"{spec.name}: failed to place cross edges ({placed} of "
            f"{cross_target})")

    # Redundant shortcuts (removed by MEG): u -> grandchild-of-u via two
    # tree edges — always implied, so MEG provably drops them.
    shortcut_target = spec.dag_edges - spec.meg_edges
    placed = 0
    attempts = 0
    max_attempts = 500 * max(shortcut_target, 1)
    while placed < shortcut_target and attempts < max_attempts:
        attempts += 1
        u = rng.randrange(k)
        if not children[u]:
            continue
        mid = rng.choice(children[u])
        if not children[mid]:
            continue
        w = rng.choice(children[mid])
        if skeleton.has_edge(u, w):
            continue
        skeleton.add_edge(u, w)
        placed += 1
    if placed < shortcut_target:
        raise DatasetError(
            f"{spec.name}: failed to place redundant shortcuts "
            f"({placed} of {shortcut_target})")

    # --- 3. expand super-nodes into cycle groups.
    # Assign group ids to the first len(group_sizes) non-root super-nodes
    # picked at random (the root stays a singleton for a stable entry
    # point).
    grouped = rng.sample(range(1, k), len(group_sizes)) if group_sizes else []
    members: list[list[int]] = [[] for _ in range(k)]
    next_id = 0
    for super_node in range(k):
        members[super_node] = [next_id]
        next_id += 1
    extra_base = next_id
    for group_size, super_node in zip(group_sizes, grouped):
        for _ in range(group_size - 1):
            members[super_node].append(extra_base)
            extra_base += 1
    assert extra_base == spec.num_nodes

    graph = DiGraph(nodes=range(spec.num_nodes))
    # Cycle edges inside each group.
    for super_node in range(k):
        group = members[super_node]
        if len(group) > 1:
            for i, node in enumerate(group):
                graph.add_edge(node, group[(i + 1) % len(group)])
    # Skeleton edges between random members.
    for a, b in skeleton.edges():
        for _ in range(20):
            u = rng.choice(members[a])
            v = rng.choice(members[b])
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
                break
        else:
            raise DatasetError(
                f"{spec.name}: could not expand skeleton edge ({a}, {b})")

    # --- 4. burn the remaining edge budget inside SCCs (invisible to the
    # condensation): intra-group chords first, then self-loops.
    remaining = spec.num_edges - graph.num_edges
    if remaining < 0:
        raise DatasetError(
            f"{spec.name}: construction overshot the edge budget by "
            f"{-remaining}")
    chord_slots = [g for g in (members[s] for s in range(k)) if len(g) >= 3]
    attempts = 0
    max_attempts = 200 * max(remaining, 1)
    while remaining > 0 and chord_slots and attempts < max_attempts:
        attempts += 1
        group = rng.choice(chord_slots)
        u, v = rng.sample(group, 2)
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
            remaining -= 1
    # Self-loops for whatever is left (also intra-SCC, also invisible).
    node_order = list(range(spec.num_nodes))
    rng.shuffle(node_order)
    for node in node_order:
        if remaining == 0:
            break
        if not graph.has_edge(node, node):
            graph.add_edge(node, node)
            remaining -= 1
    if remaining:
        raise DatasetError(
            f"{spec.name}: could not reach the edge budget "
            f"({remaining} edges unplaced)")
    return graph
