"""Dataset registry: the Table 2 graphs and scenario packs by name.

``load_dataset("AgroCyc")`` returns the calibrated stand-in graph for the
paper's AgroCyc export (see :mod:`repro.datasets.synthetic` for why these
are synthetic and what is preserved).  Calibration targets are the
paper's Table 2 columns, verbatim.  The workload-shaped scenario packs
of :mod:`repro.datasets.scenarios` resolve through the same
``load_dataset`` entry point, so benchmarks and harnesses can name any
registered graph uniformly.
"""

from __future__ import annotations

from repro.datasets.scenarios import (
    SCENARIO_SPECS,
    build_scenario_graph,
    scenario_names,
)
from repro.datasets.synthetic import DatasetSpec, build_calibrated_graph
from repro.exceptions import DatasetError
from repro.graph.digraph import DiGraph

__all__ = ["TABLE2_SPECS", "dataset_names", "get_spec", "load_dataset"]

#: The paper's Table 2, column for column.
TABLE2_SPECS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec(
            name="AgroCyc",
            num_nodes=13969, num_edges=17694,
            dag_nodes=12684, dag_edges=13408, meg_edges=13094,
            tree_depth_bias=0.0,
            description=("Agrobacterium tumefaciens metabolic/genome "
                         "network (BioCyc family)"),
        ),
        DatasetSpec(
            name="Ecoo157",
            num_nodes=13800, num_edges=17308,
            dag_nodes=12620, dag_edges=13350, meg_edges=13025,
            tree_depth_bias=0.0,
            description=("E. coli O157:H7 annotated genome network "
                         "(EcoCyc)"),
        ),
        DatasetSpec(
            name="HpyCyc",
            num_nodes=5565, num_edges=8474,
            dag_nodes=4771, dag_edges=5859, meg_edges=5649,
            tree_depth_bias=0.0,
            description="Helicobacter pylori pathway/genome network",
        ),
        DatasetSpec(
            name="VchoCyc",
            num_nodes=10694, num_edges=14207,
            dag_nodes=9491, dag_edges=10143, meg_edges=9860,
            tree_depth_bias=0.0,
            description="Vibrio cholerae pathway/genome network",
        ),
        DatasetSpec(
            name="XMark",
            num_nodes=6483, num_edges=7654,
            dag_nodes=6080, dag_edges=7028, meg_edges=6957,
            tree_depth_bias=0.6,
            description=("XMark benchmark XML document: element tree "
                         "plus IDREF reference edges"),
        ),
    )
}


def dataset_names() -> list[str]:
    """Registered graph names: Table 2 order, then scenario packs."""
    return list(TABLE2_SPECS) + scenario_names()


def get_spec(name: str) -> DatasetSpec:
    """Calibration spec of a Table 2 dataset.

    Scenario packs carry no Table 2 calibration columns; they resolve
    only through :func:`load_dataset`.

    Raises
    ------
    DatasetError
        For unknown names.
    """
    try:
        return TABLE2_SPECS[name]
    except KeyError:
        known = ", ".join(TABLE2_SPECS)
        raise DatasetError(
            f"unknown dataset {name!r}; available: {known}") from None


def load_dataset(name: str, seed: int = 0) -> DiGraph:
    """Build the graph registered under ``name`` (Table 2 stand-in or
    scenario pack)."""
    if name in SCENARIO_SPECS:
        return build_scenario_graph(name, seed=seed)
    return build_calibrated_graph(get_spec(name), seed=seed)
