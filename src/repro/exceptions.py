"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while the
concrete subclasses keep failure modes distinguishable:

* :class:`GraphError` — structural problems with a graph object itself
  (unknown node, duplicate node, bad edge endpoints).
* :class:`NotADAGError` — an algorithm that requires a DAG received a graph
  containing a cycle.
* :class:`IndexBuildError` — an index could not be constructed from its
  input (internal invariant violated during labeling).
* :class:`IndexBudgetExceeded` — an index's label footprint exceeds the
  budget its tenant is allowed (multi-tenant admission at build/load
  time).
* :class:`CorruptJournalError` — the durable-state journal or checkpoint
  manifest failed verification during crash recovery (the damaged file
  is quarantined first).
* :class:`QueryError` — a reachability query referenced a vertex the index
  has never seen.
* :class:`DatasetError` — an unknown dataset name or an unparsable graph
  file was passed to the dataset/IO layer.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class GraphError(ReproError):
    """A graph operation received structurally invalid input."""


class NodeNotFoundError(GraphError, KeyError):
    """An operation referenced a node that is not in the graph.

    Also a :class:`KeyError` so idiomatic ``except KeyError`` code keeps
    working when treating the graph like a mapping.
    """

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """An operation referenced an edge that is not in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.edge = (u, v)


class NotADAGError(GraphError):
    """An algorithm that requires an acyclic graph found a cycle."""


class IndexBuildError(ReproError):
    """An internal invariant was violated while building an index."""


class CorruptIndexError(IndexBuildError):
    """A saved index file failed integrity verification on load.

    Raised by :func:`repro.core.serialize.load_dual_index` when a file
    is truncated, not JSON, fails its content checksum, or is
    structurally broken.  A subclass of :class:`IndexBuildError` so
    pre-existing ``except IndexBuildError`` handlers (the server's
    reload path among them) keep working; the distinct type lets
    callers tell *corruption* (degrade, keep the last good index) from
    *incompatibility* (wrong format/version)."""


class IndexBudgetExceeded(IndexBuildError):
    """A tenant's index exceeds its configured label-size budget.

    Raised by the multi-tenant catalog
    (:class:`repro.server.tenancy.CatalogService`) when building or
    loading an index whose in-memory label bytes exceed the tenant's
    ``max_label_bytes`` quota.  A subclass of :class:`IndexBuildError`
    so generic build-failure handling (the server's reload path) keeps
    working; the distinct type lets the gateway answer with a
    budget-specific error instead of a generic build failure."""

    def __init__(self, name: str, label_bytes: int,
                 budget_bytes: int) -> None:
        super().__init__(
            f"index {name!r} needs {label_bytes} label bytes, over its "
            f"budget of {budget_bytes}")
        self.index_name = name
        self.label_bytes = label_bytes
        self.budget_bytes = budget_bytes


class CorruptJournalError(ReproError):
    """The durable-state journal (or manifest) failed verification.

    Raised by :class:`repro.server.durability.DurableState` during
    recovery when the catalog journal is damaged *mid-file* (a CRC
    failure or bad record framing with further records behind it) or
    the checkpoint manifest fails its content checksum.  A torn
    **trailing** record — the expected signature of power loss during
    an append — is *not* an error: recovery silently truncates it and
    the mutation it carried is simply un-acked work that never became
    durable.  Before raising, the damaged file is renamed to
    ``*.corrupt`` (quarantined) so the next start succeeds from the
    last good checkpoint; the exception records where the quarantined
    file went."""

    def __init__(self, message: str, quarantined: str | None = None
                 ) -> None:
        super().__init__(message)
        self.quarantined = quarantined


class QueryError(ReproError, KeyError):
    """A reachability query referenced a vertex unknown to the index."""

    def __init__(self, node: object) -> None:
        super().__init__(f"vertex {node!r} is not covered by this index")
        self.node = node


class DatasetError(ReproError):
    """An unknown dataset name or a malformed graph file."""
