"""Synthetic ontology generator (Gene-Ontology-flavoured).

Produces class hierarchies shaped like curated bio-ontologies: a few
roots, depth-stratified classes where most classes have one parent and
a minority have two or more (multiple inheritance — the non-tree edges
that make subsumption a DAG problem), plus typed individuals.
"""

from __future__ import annotations

import random

from repro.rdf.triples import SUBCLASS_OF, TYPE, TripleStore

__all__ = ["generate_ontology"]


def generate_ontology(num_classes: int = 200,
                      num_individuals: int = 100,
                      multi_parent_fraction: float = 0.15,
                      num_roots: int = 3,
                      seed: int = 0) -> TripleStore:
    """Generate a subclass hierarchy plus typed individuals.

    Parameters
    ----------
    num_classes: classes named ``C0..C<n-1>`` (the first ``num_roots``
        are roots).
    num_individuals: individuals ``i0..`` each typed under one class.
    multi_parent_fraction: probability a non-root class receives one
        extra ``subClassOf`` parent (multiple inheritance).
    num_roots: number of top-level classes.
    seed: RNG seed.
    """
    if num_classes < num_roots or num_roots < 1:
        raise ValueError("need num_classes >= num_roots >= 1")
    if not 0.0 <= multi_parent_fraction <= 1.0:
        raise ValueError("multi_parent_fraction must be in [0, 1]")
    rng = random.Random(seed)
    store = TripleStore()

    def cls(k: int) -> str:
        return f"ex:C{k}"

    # Primary parent: any earlier class — yields a rooted forest.
    for k in range(num_roots, num_classes):
        parent = rng.randrange(k) if k > num_roots else rng.randrange(
            num_roots)
        store.add(cls(k), SUBCLASS_OF, cls(parent))
        # Optional extra parent (strictly earlier, so the result is a
        # DAG): multiple inheritance.
        if rng.random() < multi_parent_fraction and k > 1:
            extra = rng.randrange(k)
            if extra != parent:
                store.add(cls(k), SUBCLASS_OF, cls(extra))

    for j in range(num_individuals):
        typed_under = rng.randrange(num_classes)
        store.add(f"ex:i{j}", TYPE, cls(typed_under))
    return store
