"""RDF/OWL substrate: the paper's ontology-query motivation, runnable.

Triples, subClassOf hierarchies, and subsumption reasoning backed by
any registered reachability index.
"""

from repro.rdf.generator import generate_ontology
from repro.rdf.ontology import Ontology
from repro.rdf.triples import (
    SUBCLASS_OF,
    SUBPROPERTY_OF,
    TYPE,
    Triple,
    TripleStore,
)

__all__ = [
    "TripleStore",
    "Triple",
    "Ontology",
    "generate_ontology",
    "SUBCLASS_OF",
    "SUBPROPERTY_OF",
    "TYPE",
]
