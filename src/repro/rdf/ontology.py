"""Subsumption reasoning over class hierarchies via reachability indexes.

Implements the RDF/OWL use case the paper's introduction cites: given a
``rdfs:subClassOf`` hierarchy (a sparse DAG, possibly with
equivalence-induced cycles), answer

* ``is_subclass_of(C, D)`` — subsumption, i.e. reachability C ⇝ D;
* ``superclasses(C)`` / ``subclasses(D)`` — transitive closure slices;
* ``instances_of(D)`` — individuals typed (directly or via subclasses)
  under ``D``;

all backed by any registered reachability scheme, so subsumption checks
inherit Dual-I's O(1) query time.
"""

from __future__ import annotations

from typing import Any

from repro.core.base import build_index
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph
from repro.rdf.triples import SUBCLASS_OF, TYPE, TripleStore

__all__ = ["Ontology"]


class Ontology:
    """A class hierarchy plus typed individuals, with indexed queries.

    Indexing direction: ``rdfs:subClassOf`` edges point *upward*
    (subclass → superclass), so taken verbatim the hierarchy digraph has
    one root-class sink and thousands of leaf-class sources — a shape
    with enormous ``t`` (every class with ``k`` children contributes
    ``k − 1`` non-tree edges).  The *reversed* (superclass → subclass)
    graph is a near-tree rooted at the top classes, so the index is
    built over that and ``sub ⊑ sup`` is answered as
    ``reachable(sup, sub)``.  On a 5000-class hierarchy this cuts the
    Dual-I footprint by three orders of magnitude.
    """

    def __init__(self, store: TripleStore, scheme: str = "dual-i",
                 **scheme_options: Any) -> None:
        self.store = store
        self.hierarchy: DiGraph = store.predicate_graph(SUBCLASS_OF)
        # Classes mentioned only via rdf:type still participate.
        for _, cls in store.pairs(TYPE):
            self.hierarchy.add_node(cls)
        self._index = build_index(self.hierarchy.reverse(), scheme=scheme,
                                  **scheme_options)
        # individual -> directly asserted classes
        self._types: dict[str, set[str]] = {}
        for individual, cls in store.pairs(TYPE):
            self._types.setdefault(individual, set()).add(cls)

    # ------------------------------------------------------------------
    @property
    def classes(self) -> list[str]:
        """All classes in the hierarchy, in insertion order."""
        return list(self.hierarchy.nodes())

    @property
    def individuals(self) -> list[str]:
        """All typed individuals, sorted."""
        return sorted(self._types)

    def is_class(self, name: str) -> bool:
        """``True`` iff ``name`` appears in the class hierarchy."""
        return name in self.hierarchy

    # ------------------------------------------------------------------
    def is_subclass_of(self, sub: str, sup: str) -> bool:
        """Subsumption test: ``sub ⊑ sup`` (reflexive, transitive).

        Raises
        ------
        QueryError
            If either class is unknown.
        """
        return self._index.reachable(sup, sub)

    def superclasses(self, cls: str, strict: bool = False) -> set[str]:
        """All classes subsuming ``cls`` (transitively).

        ``strict=True`` excludes ``cls`` itself (and its equivalence
        cycle partners remain included, since they genuinely subsume
        it).
        """
        if cls not in self.hierarchy:
            raise QueryError(cls)
        result = {other for other in self.hierarchy.nodes()
                  if self._index.reachable(other, cls)}
        if strict:
            result.discard(cls)
        return result

    def subclasses(self, cls: str, strict: bool = False) -> set[str]:
        """All classes subsumed by ``cls`` (transitively)."""
        if cls not in self.hierarchy:
            raise QueryError(cls)
        result = {other for other in self.hierarchy.nodes()
                  if self._index.reachable(cls, other)}
        if strict:
            result.discard(cls)
        return result

    def instances_of(self, cls: str) -> set[str]:
        """Individuals whose asserted type is subsumed by ``cls``."""
        if cls not in self.hierarchy:
            raise QueryError(cls)
        return {individual
                for individual, types in self._types.items()
                if any(self._index.reachable(cls, t) for t in types
                       if t in self.hierarchy)}

    def types_of(self, individual: str,
                 inferred: bool = True) -> set[str]:
        """Classes an individual belongs to.

        ``inferred=False`` returns only directly asserted types;
        otherwise the full superclass closure of each asserted type.
        """
        asserted = set(self._types.get(individual, ()))
        if not inferred:
            return asserted
        inferred_types: set[str] = set()
        for cls in asserted:
            if cls in self.hierarchy:
                inferred_types |= self.superclasses(cls)
            else:
                inferred_types.add(cls)
        return inferred_types

    def __repr__(self) -> str:
        return (f"Ontology(classes={self.hierarchy.num_nodes}, "
                f"subclass_edges={self.hierarchy.num_edges}, "
                f"individuals={len(self._types)})")
