"""A minimal RDF-style triple store — paper Section 1 motivation.

The paper lists "ontology queries based on RDF/OWL" among the
applications that need fast reachability: class and property hierarchies
are DAG-shaped (``rdfs:subClassOf`` / ``rdfs:subPropertyOf``), and
subsumption checking — *is C a subclass of D?* — is reachability over
them.  This module provides just enough of an RDF stack to make that
application runnable:

* :class:`TripleStore` — (subject, predicate, object) triples with
  predicate-indexed access;
* :meth:`TripleStore.predicate_graph` — the digraph induced by one
  predicate (e.g. the subClassOf hierarchy);
* a tiny N-Triples-flavoured text format (``subj pred obj .`` lines)
  for fixtures and round trips.

Terms are plain strings (CURIE-ish, e.g. ``ex:Animal``); no IRI
resolution, datatypes, or blank-node semantics — reachability needs
none of that.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import Union

from repro.exceptions import DatasetError
from repro.graph.digraph import DiGraph

__all__ = ["Triple", "TripleStore", "SUBCLASS_OF", "SUBPROPERTY_OF",
           "TYPE"]

Triple = tuple[str, str, str]
PathLike = Union[str, Path]

#: Conventional predicate names used by the ontology layer.
SUBCLASS_OF = "rdfs:subClassOf"
SUBPROPERTY_OF = "rdfs:subPropertyOf"
TYPE = "rdf:type"


class TripleStore:
    """An in-memory set of triples with per-predicate indexes."""

    def __init__(self, triples: Iterable[Triple] = ()) -> None:
        self._triples: set[Triple] = set()
        self._by_predicate: dict[str, set[tuple[str, str]]] = {}
        for triple in triples:
            self.add(*triple)

    # ------------------------------------------------------------------
    def add(self, subject: str, predicate: str, obj: str) -> None:
        """Insert one triple (idempotent)."""
        triple = (subject, predicate, obj)
        if triple not in self._triples:
            self._triples.add(triple)
            self._by_predicate.setdefault(predicate, set()).add(
                (subject, obj))

    def remove(self, subject: str, predicate: str, obj: str) -> None:
        """Remove one triple.

        Raises
        ------
        KeyError
            If the triple is absent.
        """
        triple = (subject, predicate, obj)
        if triple not in self._triples:
            raise KeyError(triple)
        self._triples.remove(triple)
        self._by_predicate[predicate].discard((subject, obj))

    def __len__(self) -> int:
        return len(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def __iter__(self) -> Iterator[Triple]:
        return iter(sorted(self._triples))

    # ------------------------------------------------------------------
    def predicates(self) -> list[str]:
        """Distinct predicates, sorted."""
        return sorted(p for p, pairs in self._by_predicate.items()
                      if pairs)

    def pairs(self, predicate: str) -> set[tuple[str, str]]:
        """All (subject, object) pairs of ``predicate``."""
        return set(self._by_predicate.get(predicate, ()))

    def subjects(self, predicate: str, obj: str) -> set[str]:
        """Subjects s with (s, predicate, obj) present."""
        return {s for s, o in self._by_predicate.get(predicate, ())
                if o == obj}

    def objects(self, subject: str, predicate: str) -> set[str]:
        """Objects o with (subject, predicate, o) present."""
        return {o for s, o in self._by_predicate.get(predicate, ())
                if s == subject}

    def predicate_graph(self, predicate: str) -> DiGraph:
        """The digraph with an edge ``s -> o`` per (s, predicate, o).

        For ``rdfs:subClassOf`` this is the class hierarchy with edges
        pointing from subclass to superclass, so ``C ⇝ D`` means
        "C is subsumed by D".
        """
        graph = DiGraph()
        for s, o in self._by_predicate.get(predicate, ()):
            graph.add_edge(s, o)
        return graph

    # ------------------------------------------------------------------
    # text format
    # ------------------------------------------------------------------
    def dumps(self) -> str:
        """Serialise as ``subj pred obj .`` lines (sorted)."""
        return "".join(f"{s} {p} {o} .\n" for s, p, o in self)

    @classmethod
    def loads(cls, text: str) -> "TripleStore":
        """Parse the N-Triples-flavoured format written by
        :meth:`dumps`.

        Raises
        ------
        DatasetError
            On lines that are not ``subj pred obj .``.
        """
        store = cls()
        for lineno, line in enumerate(text.splitlines(), start=1):
            body = line.split("#", 1)[0].strip()
            if not body:
                continue
            tokens = body.split()
            if len(tokens) != 4 or tokens[3] != ".":
                raise DatasetError(
                    f"line {lineno}: expected 'subj pred obj .', "
                    f"got {line!r}")
            store.add(tokens[0], tokens[1], tokens[2])
        return store

    def save(self, path: PathLike) -> None:
        """Write :meth:`dumps` output to ``path``."""
        Path(path).write_text(self.dumps(), encoding="utf-8")

    @classmethod
    def load(cls, path: PathLike) -> "TripleStore":
        """Read a store previously written by :meth:`save`."""
        return cls.loads(Path(path).read_text(encoding="utf-8"))

    def __repr__(self) -> str:
        return (f"TripleStore(triples={len(self)}, "
                f"predicates={len(self.predicates())})")
