"""The Dual-I labeling scheme — paper Section 3 (main result, Theorem 3).

Dual-I answers reachability in **constant time** with three artefacts:

* interval labels ``[a, b)`` per node (tree reachability);
* non-tree labels ``⟨x, y, z⟩`` per node (pre-snapped TLC coordinates);
* the TLC matrix ``N`` (``≤ (t+1) × (t+1)`` integers with zero border).

Query ``u ⇝ v`` (Theorem 3)::

    a₂ ∈ [a₁, b₁)               # tree path, or
    N[x₁, z₂] − N[y₁, z₂] > 0   # path through non-tree edges

Both tests are O(1).  Cyclic inputs are condensed first; queries on
original vertices go through the component map (vertices in the same SCC
trivially reach each other).

Implementation note: the hot query path uses plain Python lists indexed by
dense component ids — for single-element access these are several times
faster than numpy scalar indexing, which matters in the paper's
100 000-query timing loops.
"""

from __future__ import annotations

from typing import Any

import time

import numpy as np

from repro.core.base import (
    INT_BYTES,
    IndexStats,
    LabelArrays,
    ReachabilityIndex,
    register_scheme,
)
from repro.core.nontree_labels import assign_nontree_labels
from repro.core.pipeline import DualPipeline, run_pipeline
from repro.obs.phases import PhaseProfiler
from repro.core.tlc_matrix import TLCMatrix, build_tlc_matrix, pack_tlc_matrix
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph, Node

__all__ = ["DualIIndex", "DualILabelArrays"]


class DualILabelArrays(LabelArrays):
    """Theorem 3 as numpy gathers — Dual-I's public label-array view.

    The attributes mirror the paper's artefacts: interval labels
    ``[starts, ends)``, non-tree labels ``⟨label_x, label_y, label_z⟩``
    (all dense, indexed by component id) and the TLC matrix.  A batch of
    queries is a handful of fancy-indexing gathers — no Python loop.
    """

    def __init__(self, component_of: dict, starts: list[int],
                 ends: list[int], label_x: list[int], label_y: list[int],
                 label_z: list[int],
                 matrix_rows: list[list[int]]) -> None:
        super().__init__(component_of)
        self.starts = np.asarray(starts, dtype=np.int64)
        self.ends = np.asarray(ends, dtype=np.int64)
        self.label_x = np.asarray(label_x, dtype=np.int64)
        self.label_y = np.asarray(label_y, dtype=np.int64)
        self.label_z = np.asarray(label_z, dtype=np.int64)
        # Backend-independent: array, packed, and bitpacked TLC layouts
        # all unpack into the same nested row lists.
        self.matrix = np.asarray(matrix_rows, dtype=np.int64)
        # Flat row-major view for the buffer-reusing kernel: the 2-D
        # fancy index N[x, z] becomes one gather at x * ncols + z.
        self._flat_matrix = np.ascontiguousarray(self.matrix).ravel()
        self._ncols = self.matrix.shape[1] if self.matrix.ndim == 2 else 0

    def query_components(self, cu: np.ndarray,
                         cv: np.ndarray) -> np.ndarray:
        a1 = self.starts[cu]
        b1 = self.ends[cu]
        a2 = self.starts[cv]
        tree = (a1 <= a2) & (a2 < b1)
        z2 = self.label_z[cv]
        nontree = (self.matrix[self.label_x[cu], z2]
                   - self.matrix[self.label_y[cu], z2]) > 0
        return tree | nontree | (cu == cv)

    def query_components_into(self, cu: np.ndarray, cv: np.ndarray,
                              out: np.ndarray,
                              scratch: dict[str, np.ndarray]
                              ) -> np.ndarray:
        """Theorem 3 without a single fresh allocation.

        The same math as :meth:`query_components`, but every
        intermediate lands in a caller-owned buffer (``scratch`` holds
        three int64 vectors ``i1``/``i2``/``i3`` and two bool vectors
        ``b1``/``b2``, each at least ``len(cu)`` long) and the answers
        land in ``out``.  This is the
        :class:`~repro.core.fastkernel.FastKernel` hot path: at serving
        batch sizes the allocator traffic of the expression form is a
        measurable fraction of the kernel, and reusing buffers keeps
        the per-call cost flat.  Answers are bit-for-bit those of
        :meth:`query_components` (asserted by the differential
        harness).
        """
        n = cu.shape[0]
        i1 = scratch["i1"][:n]
        i2 = scratch["i2"][:n]
        i3 = scratch["i3"][:n]
        b1 = scratch["b1"][:n]
        b2 = scratch["b2"][:n]
        np.take(self.starts, cu, out=i1)            # a1
        np.take(self.starts, cv, out=i2)            # a2
        np.less_equal(i1, i2, out=b1)               # a1 <= a2
        np.take(self.ends, cu, out=i3)              # b1
        np.less(i2, i3, out=b2)                     # a2 < b1
        np.logical_and(b1, b2, out=out)             # tree path
        np.take(self.label_z, cv, out=i3)           # z2
        np.take(self.label_x, cu, out=i1)
        i1 *= self._ncols
        i1 += i3                                    # x1 * ncols + z2
        np.take(self.label_y, cu, out=i2)
        i2 *= self._ncols
        i2 += i3                                    # y1 * ncols + z2
        np.take(self._flat_matrix, i1, out=i3)      # N[x1, z2]
        np.take(self._flat_matrix, i2, out=i1)      # N[y1, z2]
        i3 -= i1
        np.greater(i3, 0, out=b1)                   # non-tree path
        np.logical_or(out, b1, out=out)
        np.equal(cu, cv, out=b2)                    # same component
        np.logical_or(out, b2, out=out)
        return out


@register_scheme
class DualIIndex(ReachabilityIndex):
    """Constant-query-time dual labeling (Dual-I)."""

    scheme_name = "dual-i"

    def __init__(self, pipeline: DualPipeline, tlc: TLCMatrix,
                 starts: list[int], ends: list[int],
                 label_x: list[int], label_y: list[int], label_z: list[int],
                 stats: IndexStats) -> None:
        self._pipeline = pipeline
        self._component_of = pipeline.condensation.component_of
        self._tlc = tlc
        # Dense per-component label arrays (index = component id).
        self._starts = starts
        self._ends = ends
        self._label_x = label_x
        self._label_y = label_y
        self._label_z = label_z
        # Row-major nested lists: one list lookup per matrix read.  The
        # bitpacked backend unpacks into the same row cache, so query
        # speed is layout-independent; only the resident payload differs.
        if hasattr(tlc, "matrix"):
            self._matrix_rows: list[list[int]] = tlc.matrix.tolist()
        else:
            self._matrix_rows = tlc.to_rows()
        self._stats = stats
        self._arrays: DualILabelArrays | None = None

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: DiGraph, use_meg: bool = True,
              compact: bool = False, matrix_backend: str = "array",
              backend: str = "fast", **options: Any) -> "DualIIndex":
        """Build a Dual-I index.

        Parameters
        ----------
        graph: any directed graph (cycles handled via condensation).
        use_meg: run the minimal-equivalent-graph preprocessing
            (Section 5); on by default.
        compact: shorthand for ``matrix_backend="packed"``.
        matrix_backend: storage layout of the TLC matrix —
            ``"array"`` (int64 numpy array, default), ``"packed"``
            (smallest byte-width dtype that fits), or ``"bitpacked"``
            (Property 2's ``ceil(log₂)`` bits per cell inside uint64
            words; see :mod:`repro.core.tlc_bitpacked`).  All three give
            identical answers; they differ only in resident size.
        backend: pipeline construction backend — ``"fast"`` (CSR/array,
            default) or ``"python"`` (dict-based reference); see
            :func:`repro.core.pipeline.run_pipeline`.  Identical index
            either way.
        """
        if options:
            raise TypeError(f"unknown options: {sorted(options)}")
        if matrix_backend not in {"array", "packed", "bitpacked"}:
            raise ValueError(
                f"matrix_backend must be 'array', 'packed' or "
                f"'bitpacked', got {matrix_backend!r}")
        if compact and matrix_backend == "array":
            matrix_backend = "packed"
        wall_start = time.perf_counter()
        pipeline = run_pipeline(graph, use_meg=use_meg, backend=backend)

        profiler = PhaseProfiler()
        with profiler.phase("tlc_matrix"):
            tlc = build_tlc_matrix(pipeline.transitive_table)
            if matrix_backend == "packed":
                tlc = pack_tlc_matrix(tlc)
            elif matrix_backend == "bitpacked":
                from repro.core.tlc_bitpacked import bitpack_tlc_matrix

                tlc = bitpack_tlc_matrix(tlc)

        with profiler.phase("nontree_labels"):
            nontree = assign_nontree_labels(pipeline.forest,
                                            pipeline.labeling,
                                            pipeline.transitive_table)
        pipeline.phase_seconds.update(profiler.seconds)

        num_components = pipeline.condensation.num_components
        starts = list(pipeline.interval_starts)
        ends = list(pipeline.interval_ends)
        label_x = [0] * num_components
        label_y = [0] * num_components
        label_z = [0] * num_components
        for cid in range(num_components):
            label_x[cid], label_y[cid], label_z[cid] = nontree[cid]

        build_seconds = time.perf_counter() - wall_start
        stats = IndexStats(
            scheme=cls.scheme_name,
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            dag_nodes=pipeline.condensation.num_components,
            dag_edges=pipeline.condensation.dag.num_edges,
            meg_edges=pipeline.meg_edges,
            t=pipeline.t,
            transitive_links=pipeline.num_transitive_links,
            build_seconds=build_seconds,
            phase_seconds=dict(pipeline.phase_seconds),
            space_bytes={
                # [a, b) per node: 2 ints.
                "interval_labels": 2 * INT_BYTES * num_components,
                # <x, y, z> per node: 3 ints.
                "nontree_labels": 3 * INT_BYTES * num_components,
                "tlc_matrix": tlc.nbytes,
            },
        )
        return cls(pipeline, tlc, starts, ends, label_x, label_y, label_z,
                   stats)

    # ------------------------------------------------------------------
    def reachable(self, u: Node, v: Node) -> bool:
        component_of = self._component_of
        try:
            cu = component_of[u]
            cv = component_of[v]
        except KeyError as exc:
            raise QueryError(exc.args[0]) from None
        if cu == cv:
            return True
        a2 = self._starts[cv]
        if self._starts[cu] <= a2 < self._ends[cu]:
            return True
        rows = self._matrix_rows
        z2 = self._label_z[cv]
        return rows[self._label_x[cu]][z2] - rows[self._label_y[cu]][z2] > 0

    def stats(self) -> IndexStats:
        return self._stats

    def label_arrays(self) -> DualILabelArrays:
        """Public numpy view of the label arrays (built once, cached)."""
        if self._arrays is None:
            self._arrays = DualILabelArrays(
                self._component_of, self._starts, self._ends,
                self._label_x, self._label_y, self._label_z,
                self._matrix_rows)
        return self._arrays

    # ------------------------------------------------------------------
    @property
    def pipeline(self) -> DualPipeline:
        """The preprocessing artefacts (for inspection/diagnostics)."""
        return self._pipeline

    @property
    def tlc_matrix(self) -> TLCMatrix:
        """The underlying TLC matrix."""
        return self._tlc

    @property
    def t(self) -> int:
        """Number of retained non-tree edges."""
        return self._pipeline.t

    def __repr__(self) -> str:
        return (f"DualIIndex(n={self._stats.num_nodes}, "
                f"m={self._stats.num_edges}, t={self.t})")
