"""Range-temporal-aggregation backend — paper Section 4, second approach.

Section 4 observes that the non-tree reachability test is an instance of
the *range-temporal COUNT* problem: each transitive link ``i -> [j, k)``
is a fact with value ``i`` alive during ``[j, k)``, and the query counts
facts alive at time ``a₂`` with value in ``[a₁, b₁)``.  The paper cites the
multiversion SB-tree, the CRB-tree, and the compressed range tree as
off-the-shelf solutions with logarithmic query time and *linear* space in
``|T|`` — attractive when many links cannot reach one another
(``|T| ≪ t²``) and logarithmic query time is acceptable.

This module implements that alternative as a static **merge-sort tree**
(a compressed range tree): links are sorted by value ``i``; each segment-
tree node over that order stores the sorted ``j`` and ``k`` arrays of its
range, so "alive at ``y``" within a canonical range is two binary
searches (``#{j <= y} − #{k <= y}``).  Queries decompose into ``O(log t)``
canonical ranges → ``O(log² t)`` total, with ``O(|T| log |T|)`` ints of
space.  :class:`DualRangeTreeIndex` packages it as the ``dual-rt`` scheme,
completing the paper's space/time tradeoff spectrum.
"""

from __future__ import annotations

import time
from bisect import bisect_left, bisect_right
from typing import Any

from repro.core.base import INT_BYTES, IndexStats, ReachabilityIndex, register_scheme
from repro.core.linktable import LinkTable
from repro.core.pipeline import DualPipeline, run_pipeline
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph, Node

__all__ = ["RangeTemporalCounter", "DualRangeTreeIndex"]


class RangeTemporalCounter:
    """Merge-sort tree counting links with value in a range, alive at y."""

    __slots__ = ("_tails", "_size", "_starts_by_node", "_ends_by_node")

    def __init__(self, table: LinkTable) -> None:
        links = sorted(table.links, key=lambda link: link.tail)
        self._tails = [link.tail for link in links]
        n = len(links)
        self._size = n
        # Standard iterative segment tree over n leaves: node v covers the
        # leaves of its subtree; leaves live at positions size + i.
        self._starts_by_node: list[list[int]] = [[] for _ in range(2 * n)]
        self._ends_by_node: list[list[int]] = [[] for _ in range(2 * n)]
        for i, link in enumerate(links):
            self._starts_by_node[n + i] = [link.head_start]
            self._ends_by_node[n + i] = [link.head_end]
        for v in range(n - 1, 0, -1):
            self._starts_by_node[v] = _merge(self._starts_by_node[2 * v],
                                             self._starts_by_node[2 * v + 1])
            self._ends_by_node[v] = _merge(self._ends_by_node[2 * v],
                                           self._ends_by_node[2 * v + 1])

    def count_alive(self, x_lo: int, x_hi: int, y: int) -> int:
        """Number of links with tail in ``[x_lo, x_hi)`` alive at ``y``."""
        lo = bisect_left(self._tails, x_lo)
        hi = bisect_left(self._tails, x_hi)
        if lo >= hi:
            return 0
        total = 0
        starts, ends = self._starts_by_node, self._ends_by_node
        lo += self._size
        hi += self._size
        while lo < hi:
            if lo & 1:
                total += (bisect_right(starts[lo], y)
                          - bisect_right(ends[lo], y))
                lo += 1
            if hi & 1:
                hi -= 1
                total += (bisect_right(starts[hi], y)
                          - bisect_right(ends[hi], y))
            lo >>= 1
            hi >>= 1
        return total

    @property
    def nbytes(self) -> int:
        """Logical size: stored ints across all tree nodes plus tails."""
        stored = len(self._tails)
        stored += sum(len(arr) for arr in self._starts_by_node)
        stored += sum(len(arr) for arr in self._ends_by_node)
        return INT_BYTES * stored

    def __repr__(self) -> str:
        return f"RangeTemporalCounter(links={self._size})"


def _merge(left: list[int], right: list[int]) -> list[int]:
    """Merge two sorted lists."""
    merged: list[int] = []
    i = j = 0
    nl, nr = len(left), len(right)
    while i < nl and j < nr:
        if left[i] <= right[j]:
            merged.append(left[i])
            i += 1
        else:
            merged.append(right[j])
            j += 1
    merged.extend(left[i:])
    merged.extend(right[j:])
    return merged


@register_scheme
class DualRangeTreeIndex(ReachabilityIndex):
    """Dual labeling with the range-temporal COUNT backend (``dual-rt``).

    Same labels as Dual-II; the TLC lookup structure is the merge-sort
    tree above.  The query needs a single stabbing count — no subtraction
    of two TLC values — because the structure supports value *ranges*
    natively.
    """

    scheme_name = "dual-rt"

    def __init__(self, pipeline: DualPipeline, counter: RangeTemporalCounter,
                 starts: list[int], ends: list[int],
                 stats: IndexStats) -> None:
        self._pipeline = pipeline
        self._component_of = pipeline.condensation.component_of
        self._counter = counter
        self._starts = starts
        self._ends = ends
        self._stats = stats

    @classmethod
    def build(cls, graph: DiGraph, use_meg: bool = True,
              backend: str = "fast", **options: Any) -> "DualRangeTreeIndex":
        """Build a ``dual-rt`` index (options as in :class:`DualIIndex`)."""
        if options:
            raise TypeError(f"unknown options: {sorted(options)}")
        wall_start = time.perf_counter()
        pipeline = run_pipeline(graph, use_meg=use_meg, backend=backend)

        phase_start = time.perf_counter()
        counter = RangeTemporalCounter(pipeline.transitive_table)
        pipeline.phase_seconds["range_tree"] = (
            time.perf_counter() - phase_start)

        num_components = pipeline.condensation.num_components
        starts = list(pipeline.interval_starts)
        ends = list(pipeline.interval_ends)

        build_seconds = time.perf_counter() - wall_start
        stats = IndexStats(
            scheme=cls.scheme_name,
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            dag_nodes=pipeline.condensation.num_components,
            dag_edges=pipeline.condensation.dag.num_edges,
            meg_edges=pipeline.meg_edges,
            t=pipeline.t,
            transitive_links=pipeline.num_transitive_links,
            build_seconds=build_seconds,
            phase_seconds=dict(pipeline.phase_seconds),
            space_bytes={
                "interval_labels": 2 * INT_BYTES * num_components,
                "range_tree": counter.nbytes,
            },
        )
        return cls(pipeline, counter, starts, ends, stats)

    def reachable(self, u: Node, v: Node) -> bool:
        component_of = self._component_of
        try:
            cu = component_of[u]
            cv = component_of[v]
        except KeyError as exc:
            raise QueryError(exc.args[0]) from None
        if cu == cv:
            return True
        a1, b1 = self._starts[cu], self._ends[cu]
        a2 = self._starts[cv]
        if a1 <= a2 < b1:
            return True
        return self._counter.count_alive(a1, b1, a2) > 0

    def stats(self) -> IndexStats:
        return self._stats

    @property
    def pipeline(self) -> DualPipeline:
        """The preprocessing artefacts (for inspection/diagnostics)."""
        return self._pipeline

    @property
    def t(self) -> int:
        """Number of retained non-tree edges."""
        return self._pipeline.t

    def __repr__(self) -> str:
        return (f"DualRangeTreeIndex(n={self._stats.num_nodes}, "
                f"m={self._stats.num_edges}, t={self.t})")
