"""The TLC search tree — paper Section 4 (Dual-II's lookup structure).

Dual-II drops the per-node non-tree labels, so queries arrive with *raw*
coordinates and the structure itself must do the snapping.  Without the
``z`` labels there is no Lemma-2 shortcut, so the tree keeps a row at
every y coordinate where the set of alive links can change: each
transitive link ``i -> [j, k)`` is alive on ``[j, k)``, so rows sit at all
``j`` *and* ``k`` values — at most ``2t`` rows, as the paper states.

* The **upper layer** is the sorted array of row y values; a query binary-
  searches for the largest row ``<= y₀`` (between rows the alive set is
  constant, and below the first row it is empty).
* Each **lower-layer row** stores the sorted multiset of tails of the
  links alive there; ``N(x₀, y₀)`` is the number of tails ``>= x₀``,
  found by one more binary search.  (The paper's mini-trees with collapsed
  duplicate TLC values are equivalent to this sorted-array encoding: both
  store one entry per distinct breakpoint and answer in ``O(log t)``.)

Total query cost: ``O(log t)``.  Space: ``O(t²)`` worst case, but
typically far less because most links are alive in few rows.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort

import numpy as np

from repro.core.base import INT_BYTES
from repro.core.linktable import LinkTable

__all__ = ["TLCSearchTree", "build_tlc_search_tree"]


class TLCSearchTree:
    """Two-layer search structure evaluating ``N(x, y)`` in O(log t)."""

    __slots__ = ("row_ys", "rows", "_vec", "_lut")

    #: Direct-address acceleration cap: the dense rank tables of
    #: :meth:`_direct_tables` are only built while ``rows * base`` stays
    #: under this many entries (int32 ⇒ ≤ 16 MiB); larger coordinate
    #: spaces keep the ``searchsorted`` path.
    _LUT_MAX_ENTRIES = 4_194_304

    def __init__(self, row_ys: list[int], rows: list[list[int]]) -> None:
        if len(row_ys) != len(rows):
            raise ValueError("row_ys and rows must have equal length")
        self.row_ys = row_ys
        self.rows = rows
        self._vec: tuple | None = None
        self._lut: tuple | None | bool = False

    def count(self, x: int, y: int) -> int:
        """The TLC function ``N(x, y)`` for arbitrary coordinates."""
        r = bisect_right(self.row_ys, y) - 1
        if r < 0:
            return 0
        row = self.rows[r]
        return len(row) - bisect_left(row, x)

    def _vectorised(self) -> tuple:
        """Flat numpy encoding of the two layers (built once).

        Both binary searches of :meth:`count` become ``np.searchsorted``
        calls: the upper layer is already a sorted array, and the ragged
        lower-layer rows flatten into one globally sorted key array by
        encoding each tail as ``row_index * base + (tail - min_tail)``
        with ``base`` wider than the tail value range — within-row order
        is preserved and rows occupy disjoint, increasing key bands.
        """
        if self._vec is None:
            row_ys = np.asarray(self.row_ys, dtype=np.int64)
            lengths = np.fromiter((len(row) for row in self.rows),
                                  dtype=np.int64, count=len(self.rows))
            row_ends = np.cumsum(lengths)
            flat = (np.concatenate(
                        [np.asarray(row, dtype=np.int64)
                         for row in self.rows])
                    if self.rows else np.zeros(0, dtype=np.int64))
            if flat.size:
                min_tail = int(flat.min())
                base = int(flat.max()) - min_tail + 2
            else:
                min_tail, base = 0, 1
            row_index = np.repeat(
                np.arange(len(self.rows), dtype=np.int64), lengths)
            keys = row_index * base + (flat - min_tail)
            self._vec = (row_ys, row_ends, keys, min_tail, base)
        return self._vec

    def _direct_tables(self) -> tuple | None:
        """Dense rank tables replacing both binary searches (built once).

        ``np.searchsorted`` costs tens of nanoseconds per unsorted
        probe; within a compact coordinate space, precomputing every
        answer turns each search into a single gather.  ``row_lut[y]``
        is the upper-layer row index for ``0 <= y <= max(row_ys)``;
        ``key_lut[k]`` is the lower-layer insertion point for every
        encodable key.  Returns ``None`` (and the callers keep
        ``searchsorted``) beyond :data:`_LUT_MAX_ENTRIES`.
        """
        if self._lut is False:
            row_ys, row_ends, keys, min_tail, base = self._vectorised()
            total = len(self.rows) * base
            if (keys.size == 0 or total > self._LUT_MAX_ENTRIES
                    or int(row_ys[-1]) + 1 > self._LUT_MAX_ENTRIES):
                self._lut = None
            else:
                row_lut = (np.searchsorted(
                    row_ys, np.arange(int(row_ys[-1]) + 1),
                    side="right") - 1).astype(np.int32)
                key_lut = np.searchsorted(
                    keys, np.arange(total), side="left").astype(np.int32)
                self._lut = (row_lut, key_lut)
        return self._lut

    def _row_search(self, ys: np.ndarray, row_ys: np.ndarray,
                    luts: tuple | None) -> np.ndarray:
        """Upper-layer row index per probe (``-1`` = before every row)."""
        if luts is None:
            return np.searchsorted(row_ys, ys, side="right") - 1
        row_lut = luts[0]
        r = row_lut[np.clip(ys, 0, row_lut.shape[0] - 1)]
        # The clip folds negative probes onto y == 0; restore their
        # true "before every row" answer.
        if ys.size and int(ys.min()) < 0:
            r = np.where(ys < 0, np.int32(-1), r)
        return r

    def _key_search(self, probes: np.ndarray, keys: np.ndarray,
                    luts: tuple | None) -> np.ndarray:
        """Lower-layer insertion point per encoded probe key."""
        if luts is None:
            return np.searchsorted(keys, probes, side="left")
        return luts[1][probes]

    def warm(self) -> "TLCSearchTree":
        """Eagerly build the vectorised encoding and rank tables.

        Serving layers call this at construction so the one-off
        flatten/LUT cost lands in setup rather than in the first
        batch's query timing.  Returns ``self`` for chaining.
        """
        self._vectorised()
        self._direct_tables()
        return self

    def count_many(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Vector form of :meth:`count` for aligned coordinate arrays."""
        xs = np.asarray(xs, dtype=np.int64)
        ys = np.asarray(ys, dtype=np.int64)
        row_ys, row_ends, keys, min_tail, base = self._vectorised()
        if keys.size == 0 or xs.size == 0:
            return np.zeros(xs.shape, dtype=np.int64)
        luts = self._direct_tables()
        r = self._row_search(ys, row_ys, luts)
        valid = r >= 0
        r_safe = np.where(valid, r, 0).astype(np.int64)
        # Clipping x into the encoded band keeps the searchsorted answer
        # equal to the in-row bisect: below-range x counts every entry,
        # above-range x counts none.
        x_shift = np.clip(xs - min_tail, 0, base - 1)
        pos = self._key_search(r_safe * base + x_shift, keys, luts)
        return np.where(valid, row_ends[r_safe] - pos, 0)

    def row_plan(self, ys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(band, valid)`` encoding of reusable y-coordinates.

        ``band[i]`` is the key-space offset of the row answering
        ``ys[i]`` and ``valid[i]`` is ``False`` where ``ys[i]`` precedes
        every row (count 0).  Callers with a fixed coordinate universe —
        one entry per graph component, say — evaluate the row search
        once here and reuse the plan across every batch via
        :meth:`count_diff_encoded`.
        """
        ys = np.asarray(ys, dtype=np.int64)
        row_ys, _row_ends, keys, _min_tail, base = self._vectorised()
        if keys.size == 0 or ys.size == 0:
            return (np.zeros(ys.shape, dtype=np.int64),
                    np.zeros(ys.shape, dtype=bool))
        r = self._row_search(ys, row_ys, self._direct_tables())
        valid = r >= 0
        return np.where(valid, r, 0).astype(np.int64) * base, valid

    def x_encode(self, xs: np.ndarray) -> np.ndarray:
        """Key-space offsets of reusable x-coordinates (see
        :meth:`row_plan`); clipping preserves the out-of-range counting
        convention of :meth:`count_many`."""
        xs = np.asarray(xs, dtype=np.int64)
        _row_ys, _row_ends, keys, min_tail, base = self._vectorised()
        if keys.size == 0:
            return np.zeros(xs.shape, dtype=np.int64)
        return np.clip(xs - min_tail, 0, base - 1)

    def count_diff_encoded(self, off_first: np.ndarray,
                           off_second: np.ndarray, band: np.ndarray,
                           valid: np.ndarray) -> np.ndarray:
        """:meth:`count_diff_many` over pre-encoded coordinates.

        ``off_*`` come from :meth:`x_encode` and ``(band, valid)`` from
        :meth:`row_plan` — per-batch work reduces to one key search.
        """
        _row_ys, _row_ends, keys, _min_tail, _base = self._vectorised()
        if keys.size == 0 or band.size == 0:
            return np.zeros(band.shape, dtype=np.int64)
        probes = np.concatenate([band + off_first, band + off_second])
        pos = self._key_search(probes, keys, self._direct_tables())
        n = band.shape[0]
        return np.where(valid, pos[n:] - pos[:n].astype(np.int64), 0)

    def positive_diff_encoded_into(self, off_first: np.ndarray,
                                   off_second: np.ndarray,
                                   band: np.ndarray, valid: np.ndarray,
                                   out: np.ndarray,
                                   probes: np.ndarray) -> None:
        """``count_diff_encoded(...) > 0`` written into ``out``.

        The fast kernel's allocation-light form: the caller supplies the
        ``probes`` staging buffer (int64, length ``2 * n``) and the
        boolean ``out``; encoded probes are built with ``np.add(...,
        out=)`` and the sign test compares the two in-row insertion
        points directly, so no int64 difference array is materialised.
        The rank lookup itself (``searchsorted`` or the LUT gather) has
        no ``out=`` form and remains the one per-call allocation.
        """
        _row_ys, _row_ends, keys, _min_tail, _base = self._vectorised()
        n = band.shape[0]
        if keys.size == 0 or n == 0:
            out[:n] = False
            return
        np.add(band, off_first, out=probes[:n])
        np.add(band, off_second, out=probes[n:2 * n])
        pos = self._key_search(probes[:2 * n], keys,
                               self._direct_tables())
        # diff = pos[n:] - pos[:n]; only its sign matters here.
        np.greater(pos[n:], pos[:n], out=out)
        np.logical_and(out, valid, out=out)

    def count_diff_many(self, x_first: np.ndarray, x_second: np.ndarray,
                        ys: np.ndarray) -> np.ndarray:
        """Vectorised ``N(x_first, y) - N(x_second, y)`` per position.

        The form every Dual-II query needs (Theorem 2 tests
        ``N(a₁, a₂) − N(b₁, a₂) > 0``).  Both counts share the same row,
        so the row search runs once and the ``row_ends`` terms cancel:
        the difference is just the gap between the two in-row insertion
        points.
        """
        x_first = np.asarray(x_first, dtype=np.int64)
        x_second = np.asarray(x_second, dtype=np.int64)
        ys = np.asarray(ys, dtype=np.int64)
        row_ys, row_ends, keys, min_tail, base = self._vectorised()
        if keys.size == 0 or ys.size == 0:
            return np.zeros(ys.shape, dtype=np.int64)
        luts = self._direct_tables()
        r = self._row_search(ys, row_ys, luts)
        valid = r >= 0
        band = np.where(valid, r, 0).astype(np.int64) * base
        probes = np.concatenate([
            band + np.clip(x_first - min_tail, 0, base - 1),
            band + np.clip(x_second - min_tail, 0, base - 1)])
        pos = self._key_search(probes, keys, luts)
        n = ys.shape[0]
        return np.where(valid, pos[n:] - pos[:n].astype(np.int64), 0)

    @property
    def num_rows(self) -> int:
        """Number of stored rows (``<= 2t``)."""
        return len(self.rows)

    @property
    def num_entries(self) -> int:
        """Total stored tail entries across all rows."""
        return sum(len(row) for row in self.rows)

    @property
    def nbytes(self) -> int:
        """Logical size: one int per row key and per stored entry."""
        return INT_BYTES * (len(self.row_ys) + self.num_entries)

    def __repr__(self) -> str:
        return (f"TLCSearchTree(rows={self.num_rows}, "
                f"entries={self.num_entries})")


def build_tlc_search_tree(transitive_table: LinkTable) -> TLCSearchTree:
    """Build the search tree from a *closed* link table.

    One sweep over the y axis: at each endpoint value, links ending there
    are removed before links starting there are added (half-open ``[j, k)``
    semantics), then the alive tail multiset is snapshot as that row.
    Rows whose alive multiset did not change (an ending link replaced by a
    starting link with the same tail) are collapsed into their
    predecessor.
    """
    events: dict[int, tuple[list[int], list[int]]] = {}
    for link in transitive_table.links:
        events.setdefault(link.head_start, ([], []))[0].append(link.tail)
        events.setdefault(link.head_end, ([], []))[1].append(link.tail)

    row_ys: list[int] = []
    rows: list[list[int]] = []
    alive: list[int] = []  # sorted multiset of tails
    for y in sorted(events):
        starts, ends = events[y]
        for tail in ends:
            del alive[bisect_left(alive, tail)]
        for tail in starts:
            insort(alive, tail)
        if rows and rows[-1] == alive:
            # Alive multiset unchanged: extend the previous row's reign
            # instead of storing a duplicate (the paper's collapsing).
            continue
        row_ys.append(y)
        rows.append(list(alive))
    return TLCSearchTree(row_ys=row_ys, rows=rows)
