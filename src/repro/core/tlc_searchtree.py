"""The TLC search tree — paper Section 4 (Dual-II's lookup structure).

Dual-II drops the per-node non-tree labels, so queries arrive with *raw*
coordinates and the structure itself must do the snapping.  Without the
``z`` labels there is no Lemma-2 shortcut, so the tree keeps a row at
every y coordinate where the set of alive links can change: each
transitive link ``i -> [j, k)`` is alive on ``[j, k)``, so rows sit at all
``j`` *and* ``k`` values — at most ``2t`` rows, as the paper states.

* The **upper layer** is the sorted array of row y values; a query binary-
  searches for the largest row ``<= y₀`` (between rows the alive set is
  constant, and below the first row it is empty).
* Each **lower-layer row** stores the sorted multiset of tails of the
  links alive there; ``N(x₀, y₀)`` is the number of tails ``>= x₀``,
  found by one more binary search.  (The paper's mini-trees with collapsed
  duplicate TLC values are equivalent to this sorted-array encoding: both
  store one entry per distinct breakpoint and answer in ``O(log t)``.)

Total query cost: ``O(log t)``.  Space: ``O(t²)`` worst case, but
typically far less because most links are alive in few rows.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort

from repro.core.base import INT_BYTES
from repro.core.linktable import LinkTable

__all__ = ["TLCSearchTree", "build_tlc_search_tree"]


class TLCSearchTree:
    """Two-layer search structure evaluating ``N(x, y)`` in O(log t)."""

    __slots__ = ("row_ys", "rows")

    def __init__(self, row_ys: list[int], rows: list[list[int]]) -> None:
        if len(row_ys) != len(rows):
            raise ValueError("row_ys and rows must have equal length")
        self.row_ys = row_ys
        self.rows = rows

    def count(self, x: int, y: int) -> int:
        """The TLC function ``N(x, y)`` for arbitrary coordinates."""
        r = bisect_right(self.row_ys, y) - 1
        if r < 0:
            return 0
        row = self.rows[r]
        return len(row) - bisect_left(row, x)

    @property
    def num_rows(self) -> int:
        """Number of stored rows (``<= 2t``)."""
        return len(self.rows)

    @property
    def num_entries(self) -> int:
        """Total stored tail entries across all rows."""
        return sum(len(row) for row in self.rows)

    @property
    def nbytes(self) -> int:
        """Logical size: one int per row key and per stored entry."""
        return INT_BYTES * (len(self.row_ys) + self.num_entries)

    def __repr__(self) -> str:
        return (f"TLCSearchTree(rows={self.num_rows}, "
                f"entries={self.num_entries})")


def build_tlc_search_tree(transitive_table: LinkTable) -> TLCSearchTree:
    """Build the search tree from a *closed* link table.

    One sweep over the y axis: at each endpoint value, links ending there
    are removed before links starting there are added (half-open ``[j, k)``
    semantics), then the alive tail multiset is snapshot as that row.
    Rows whose alive multiset did not change (an ending link replaced by a
    starting link with the same tail) are collapsed into their
    predecessor.
    """
    events: dict[int, tuple[list[int], list[int]]] = {}
    for link in transitive_table.links:
        events.setdefault(link.head_start, ([], []))[0].append(link.tail)
        events.setdefault(link.head_end, ([], []))[1].append(link.tail)

    row_ys: list[int] = []
    rows: list[list[int]] = []
    alive: list[int] = []  # sorted multiset of tails
    for y in sorted(events):
        starts, ends = events[y]
        for tail in ends:
            del alive[bisect_left(alive, tail)]
        for tail in starts:
            insort(alive, tail)
        if rows and rows[-1] == alive:
            # Alive multiset unchanged: extend the previous row's reign
            # instead of storing a duplicate (the paper's collapsing).
            continue
        row_ys.append(y)
        rows.append(list(alive))
    return TLCSearchTree(row_ys=row_ys, rows=rows)
