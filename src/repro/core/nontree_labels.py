"""Non-tree labels ``⟨x, y, z⟩`` — paper Section 3.4 (Algorithm 2).

Each node ``u`` with interval label ``[a, b)`` receives a triple:

* ``x`` — index (into the TLC grid's x coordinates ``X``) of the smallest
  link tail ``>= a``; the "−" sentinel if none exists.  This is ``a``
  pre-snapped: ``N(a, ·)`` equals the stored grid value at ``x``.
* ``y`` — likewise for ``b``.
* ``z`` — index (into the grid's y coordinates ``Y``) of the start label
  of the lowest tree ancestor of ``u`` (or ``u`` itself) that has a
  non-tree incoming edge; "−" if no such ancestor exists.  Lemma 2 shows
  snapping the query's y coordinate to this ancestor preserves the TLC
  difference, so only ``|Y| <= t`` grid rows need to exist.

With these labels Theorem 3's whole query becomes two array reads:
``N[x₁, z₂] − N[y₁, z₂] > 0``.

Sentinels are stored as ``len(X)`` / ``len(Y)`` so they index the TLC
matrix's zero border directly — no branching at query time.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

from repro.core.intervals import IntervalLabeling
from repro.core.linktable import LinkTable
from repro.graph.digraph import Node
from repro.graph.spanning import SpanningForest

__all__ = ["NonTreeLabels", "assign_nontree_labels"]


@dataclass(frozen=True)
class NonTreeLabels:
    """The ``⟨x, y, z⟩`` triples for every node.

    ``labels[u] == (x, y, z)`` with sentinel values ``len(xs)`` /
    ``len(ys)`` standing in for the paper's "−".
    """

    labels: dict[Node, tuple[int, int, int]]
    sentinel_x: int
    sentinel_y: int

    def __len__(self) -> int:
        return len(self.labels)

    def __getitem__(self, node: Node) -> tuple[int, int, int]:
        return self.labels[node]

    def is_sentinel_z(self, node: Node) -> bool:
        """``True`` iff ``node`` has no ancestor with a non-tree incoming
        edge (its ``z`` is "−")."""
        return self.labels[node][2] == self.sentinel_y


def assign_nontree_labels(forest: SpanningForest,
                          labeling: IntervalLabeling,
                          table: LinkTable) -> NonTreeLabels:
    """Assign non-tree labels by one DFS over the forest (Algorithm 2).

    ``table`` may be the base or the transitive link table — their
    coordinate sets ``X``/``Y`` coincide (derived links reuse original
    tails and head starts), and the labels depend only on those sets.

    The ``z`` component is maintained with an explicit ancestor stack:
    entering a node whose ``start`` is a link head pushes its ``Y`` index,
    leaving pops it; a node's ``z`` is the stack top at leave time, which
    by construction is its lowest ancestor-or-self with an incoming link.
    """
    xs, ys = table.xs, table.ys
    sentinel_x, sentinel_y = len(xs), len(ys)
    has_incoming = set(ys)

    labels: dict[Node, tuple[int, int, int]] = {}
    for root in forest.roots:
        z_stack: list[int] = [sentinel_y]
        # Frames: (node, next-child-index).
        stack: list[tuple[Node, int]] = [(root, 0)]
        start = labeling.start(root)
        if start in has_incoming:
            z_stack.append(bisect_left(ys, start))
        while stack:
            node, child_idx = stack[-1]
            kids = forest.children[node]
            if child_idx < len(kids):
                stack[-1] = (node, child_idx + 1)
                child = kids[child_idx]
                child_start = labeling.start(child)
                if child_start in has_incoming:
                    z_stack.append(bisect_left(ys, child_start))
                stack.append((child, 0))
            else:
                stack.pop()
                interval = labeling.interval[node]
                x = bisect_left(xs, interval.start)
                y = bisect_left(xs, interval.end)
                labels[node] = (x, y, z_stack[-1])
                if interval.start in has_incoming:
                    z_stack.pop()
    return NonTreeLabels(labels=labels, sentinel_x=sentinel_x,
                         sentinel_y=sentinel_y)
