"""The Dual-II labeling scheme — paper Section 4 (space/time tradeoff).

Dual-II keeps the interval labels but replaces both the TLC matrix *and*
the per-node non-tree labels with the :class:`TLCSearchTree`: queries pay
``O(log t)`` for two TLC lookups, and the index stores no ``⟨x, y, z⟩``
triples at all.  For sparse graphs ``log t`` is tiny, and in practice the
search tree is much smaller than the ``t × t`` matrix because each link is
alive in few rows.

Query ``u ⇝ v`` with labels ``[a₁, b₁)``, ``[a₂, b₂)``::

    a₂ ∈ [a₁, b₁)                       # tree path, or
    N(a₁, a₂) − N(b₁, a₂) > 0           # non-tree path (Theorem 2)

where ``N`` is evaluated by the search tree.
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.core.base import (
    INT_BYTES,
    IndexStats,
    LabelArrays,
    ReachabilityIndex,
    register_scheme,
)
from repro.core.pipeline import DualPipeline, run_pipeline
from repro.obs.phases import PhaseProfiler
from repro.core.tlc_searchtree import TLCSearchTree, build_tlc_search_tree
from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph, Node

__all__ = ["DualIIIndex", "DualIILabelArrays"]


class DualIILabelArrays(LabelArrays):
    """Theorem 2 vectorised — Dual-II's public label-array view.

    The tree test is two gathers over the interval arrays; the non-tree
    test evaluates ``N(a₁, a₂) − N(b₁, a₂)`` with the search tree's
    fused :meth:`~repro.core.tlc_searchtree.TLCSearchTree.count_diff_many`,
    i.e. the ``O(log t)`` lookups become batched ``searchsorted`` calls
    sharing one row search.
    """

    def __init__(self, component_of: dict, starts: list[int],
                 ends: list[int], tree: TLCSearchTree) -> None:
        super().__init__(component_of)
        self.starts = np.asarray(starts, dtype=np.int64)
        self.ends = np.asarray(ends, dtype=np.int64)
        self.tree = tree.warm()
        # Per-component query plan: the coordinate universe is fixed (a
        # component's interval endpoints), so the row search and band
        # clipping happen once here; each batch then pays one key
        # search over gathered offsets.
        self._band, self._band_valid = tree.row_plan(self.starts)
        self._off_start = tree.x_encode(self.starts)
        self._off_end = tree.x_encode(self.ends)

    def query_components(self, cu: np.ndarray,
                         cv: np.ndarray) -> np.ndarray:
        a1 = self.starts[cu]
        b1 = self.ends[cu]
        a2 = self.starts[cv]
        tree_path = (a1 <= a2) & (a2 < b1)
        nontree = self.tree.count_diff_encoded(
            self._off_start[cu], self._off_end[cu],
            self._band[cv], self._band_valid[cv]) > 0
        return tree_path | nontree | (cu == cv)

    def query_components_into(self, cu: np.ndarray, cv: np.ndarray,
                              out: np.ndarray, scratch: dict) -> None:
        """Theorem 2 evaluated in place — the fast kernel's rank path.

        Bit-identical to :meth:`query_components`, but every
        intermediate lives in the caller's ``scratch`` buffers:
        ``"i1"/"i2"/"i3"`` (int64) and ``"b1"/"b2"`` (bool) of at least
        ``n`` elements plus the ``"p"`` probe staging buffer (int64,
        ``2 * n``) for the search tree's
        :meth:`~repro.core.tlc_searchtree.TLCSearchTree.positive_diff_encoded_into`.
        """
        n = cu.shape[0]
        i1 = scratch["i1"][:n]
        i2 = scratch["i2"][:n]
        i3 = scratch["i3"][:n]
        b1 = scratch["b1"][:n]
        b2 = scratch["b2"][:n]
        # Tree path: a1 <= a2 < b1, then the reflexive u == v term.
        np.take(self.starts, cu, out=i1)
        np.take(self.starts, cv, out=i2)
        np.take(self.ends, cu, out=i3)
        np.less_equal(i1, i2, out=b1)
        np.less(i2, i3, out=b2)
        np.logical_and(b1, b2, out=out)
        np.equal(cu, cv, out=b1)
        np.logical_or(out, b1, out=out)
        # Non-tree path through the precomputed per-component plan.
        np.take(self._off_start, cu, out=i1)
        np.take(self._off_end, cu, out=i2)
        np.take(self._band, cv, out=i3)
        np.take(self._band_valid, cv, out=b1)
        self.tree.positive_diff_encoded_into(
            i1, i2, i3, b1, out=b2, probes=scratch["p"][:2 * n])
        np.logical_or(out, b2, out=out)


@register_scheme
class DualIIIndex(ReachabilityIndex):
    """Logarithmic-query-time dual labeling with reduced space (Dual-II)."""

    scheme_name = "dual-ii"

    def __init__(self, pipeline: DualPipeline, tree: TLCSearchTree,
                 starts: list[int], ends: list[int],
                 stats: IndexStats) -> None:
        self._pipeline = pipeline
        self._component_of = pipeline.condensation.component_of
        self._tree = tree
        self._starts = starts
        self._ends = ends
        self._stats = stats
        self._arrays: DualIILabelArrays | None = None

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: DiGraph, use_meg: bool = True,
              backend: str = "fast", **options: Any) -> "DualIIIndex":
        """Build a Dual-II index (options as in :class:`DualIIndex`)."""
        if options:
            raise TypeError(f"unknown options: {sorted(options)}")
        wall_start = time.perf_counter()
        pipeline = run_pipeline(graph, use_meg=use_meg, backend=backend)

        profiler = PhaseProfiler()
        with profiler.phase("tlc_search_tree"):
            tree = build_tlc_search_tree(pipeline.transitive_table)
        pipeline.phase_seconds.update(profiler.seconds)

        num_components = pipeline.condensation.num_components
        starts = list(pipeline.interval_starts)
        ends = list(pipeline.interval_ends)

        build_seconds = time.perf_counter() - wall_start
        stats = IndexStats(
            scheme=cls.scheme_name,
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            dag_nodes=pipeline.condensation.num_components,
            dag_edges=pipeline.condensation.dag.num_edges,
            meg_edges=pipeline.meg_edges,
            t=pipeline.t,
            transitive_links=pipeline.num_transitive_links,
            build_seconds=build_seconds,
            phase_seconds=dict(pipeline.phase_seconds),
            space_bytes={
                "interval_labels": 2 * INT_BYTES * num_components,
                "tlc_search_tree": tree.nbytes,
            },
        )
        return cls(pipeline, tree, starts, ends, stats)

    # ------------------------------------------------------------------
    def reachable(self, u: Node, v: Node) -> bool:
        component_of = self._component_of
        try:
            cu = component_of[u]
            cv = component_of[v]
        except KeyError as exc:
            raise QueryError(exc.args[0]) from None
        if cu == cv:
            return True
        a1, b1 = self._starts[cu], self._ends[cu]
        a2 = self._starts[cv]
        if a1 <= a2 < b1:
            return True
        count = self._tree.count
        return count(a1, a2) - count(b1, a2) > 0

    def stats(self) -> IndexStats:
        return self._stats

    def label_arrays(self) -> DualIILabelArrays:
        """Public numpy view of the label arrays (built once, cached)."""
        if self._arrays is None:
            self._arrays = DualIILabelArrays(
                self._component_of, self._starts, self._ends, self._tree)
        return self._arrays

    # ------------------------------------------------------------------
    @property
    def pipeline(self) -> DualPipeline:
        """The preprocessing artefacts (for inspection/diagnostics)."""
        return self._pipeline

    @property
    def search_tree(self) -> TLCSearchTree:
        """The underlying TLC search tree."""
        return self._tree

    @property
    def t(self) -> int:
        """Number of retained non-tree edges."""
        return self._pipeline.t

    def __repr__(self) -> str:
        return (f"DualIIIndex(n={self._stats.num_nodes}, "
                f"m={self._stats.num_edges}, t={self.t})")
