"""Vectorised batch reachability queries over a Dual-I index.

Analytics workloads (the paper's 100k-query loops, XML join evaluation,
all-pairs sampling) ask millions of reachability questions at once.
Theorem 3's query is pure integer arithmetic —

    ``a₂ ∈ [a₁, b₁)  or  N[x₁, z₂] − N[y₁, z₂] > 0``

— so a batch of queries vectorises into a handful of numpy gathers: no
Python-level loop, an order of magnitude faster than calling
``reachable`` per pair.

Use :class:`BatchQuerier` when the same index serves many batches (it
caches the label arrays as numpy vectors); the convenience function
:func:`reachable_batch` wraps one-off calls.
"""

from __future__ import annotations

import numpy as np

from repro.core.dual_i import DualIIndex
from repro.exceptions import QueryError
from repro.graph.digraph import Node

__all__ = ["BatchQuerier", "reachable_batch"]


class BatchQuerier:
    """Vectorised Theorem 3 evaluation for a :class:`DualIIndex`."""

    def __init__(self, index: DualIIndex) -> None:
        self._component_of = index._component_of
        self._starts = np.asarray(index._starts, dtype=np.int64)
        self._ends = np.asarray(index._ends, dtype=np.int64)
        self._label_x = np.asarray(index._label_x, dtype=np.int64)
        self._label_y = np.asarray(index._label_y, dtype=np.int64)
        self._label_z = np.asarray(index._label_z, dtype=np.int64)
        # The index's row cache is backend-independent (array, packed,
        # or bitpacked all unpack into the same nested lists).
        self._matrix = np.asarray(index._matrix_rows, dtype=np.int64)

    def components_of(self, nodes: list[Node]) -> np.ndarray:
        """Map original nodes to dense component ids (vector form).

        Raises
        ------
        QueryError
            On the first node the index does not cover.
        """
        component_of = self._component_of
        out = np.empty(len(nodes), dtype=np.int64)
        try:
            for i, node in enumerate(nodes):
                out[i] = component_of[node]
        except KeyError as exc:
            raise QueryError(exc.args[0]) from None
        return out

    def query_components(self, cu: np.ndarray,
                         cv: np.ndarray) -> np.ndarray:
        """Boolean reachability for aligned component-id vectors."""
        a1 = self._starts[cu]
        b1 = self._ends[cu]
        a2 = self._starts[cv]
        tree = (a1 <= a2) & (a2 < b1)
        z2 = self._label_z[cv]
        nontree = (self._matrix[self._label_x[cu], z2]
                   - self._matrix[self._label_y[cu], z2]) > 0
        return tree | nontree | (cu == cv)

    def query_pairs(self, pairs: list[tuple[Node, Node]]) -> np.ndarray:
        """Boolean answers for a list of (source, target) node pairs."""
        if not pairs:
            return np.zeros(0, dtype=bool)
        sources = self.components_of([u for u, _ in pairs])
        targets = self.components_of([v for _, v in pairs])
        return self.query_components(sources, targets)

    def reachability_matrix(self, sources: list[Node],
                            targets: list[Node]) -> np.ndarray:
        """Dense ``len(sources) × len(targets)`` reachability matrix.

        The cross-product form of :meth:`query_pairs` — useful for the
        paper's XML-join pattern ("obtain all fiction and author
        elements, then test reachability for every combination").
        """
        cu = self.components_of(sources)
        cv = self.components_of(targets)
        grid_u, grid_v = np.meshgrid(cu, cv, indexing="ij")
        return self.query_components(grid_u.ravel(),
                                     grid_v.ravel()).reshape(
            len(sources), len(targets))


def reachable_batch(index: DualIIndex,
                    pairs: list[tuple[Node, Node]]) -> list[bool]:
    """One-shot vectorised batch query (see :class:`BatchQuerier`)."""
    return BatchQuerier(index).query_pairs(pairs).tolist()
