"""Vectorised batch reachability queries over any index with label arrays.

Analytics workloads (the paper's 100k-query loops, XML join evaluation,
all-pairs sampling) ask millions of reachability questions at once.
Schemes whose labels live in dense arrays answer whole batches with a
handful of numpy gathers — no Python-level loop, an order of magnitude
faster than calling ``reachable`` per pair.

:class:`BatchQuerier` wraps the public
:meth:`~repro.core.base.ReachabilityIndex.label_arrays` kernel of *any*
scheme that provides one (Dual-I, Dual-II, the closure matrix, interval
sets); it touches no private attributes of the index.  The convenience
function :func:`reachable_batch` wraps one-off calls and transparently
falls back to the scalar loop for schemes without a kernel.  For a
serving layer with caching, sharding and metrics on top of this, see
:class:`repro.core.service.QueryService`.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import LabelArrays, ReachabilityIndex
from repro.graph.digraph import Node

__all__ = ["BatchQuerier", "reachable_batch"]


class BatchQuerier:
    """Vectorised query evaluation over an index's public label arrays.

    Raises
    ------
    TypeError
        If the index exposes no vectorised kernel (its
        ``label_arrays()`` returns ``None``); use
        ``index.reachable_many`` for those schemes.
    """

    def __init__(self, index: ReachabilityIndex) -> None:
        arrays = index.label_arrays()
        if arrays is None:
            raise TypeError(
                f"{type(index).__name__} exposes no label arrays; use "
                "index.reachable_many for the scalar path")
        self.arrays: LabelArrays = arrays

    def components_of(self, nodes: list[Node]) -> np.ndarray:
        """Map original nodes to dense component ids (vector form).

        Raises
        ------
        QueryError
            On the first node the index does not cover.
        """
        return self.arrays.components_of(nodes)

    def query_components(self, cu: np.ndarray,
                         cv: np.ndarray) -> np.ndarray:
        """Boolean reachability for aligned component-id vectors."""
        return self.arrays.query_components(cu, cv)

    def query_pairs(self, pairs: list[tuple[Node, Node]]) -> np.ndarray:
        """Boolean answers for a list of (source, target) node pairs."""
        return self.arrays.query_pairs(pairs)

    def reachability_matrix(self, sources: list[Node],
                            targets: list[Node]) -> np.ndarray:
        """Dense ``len(sources) × len(targets)`` reachability matrix.

        The cross-product form of :meth:`query_pairs` — useful for the
        paper's XML-join pattern ("obtain all fiction and author
        elements, then test reachability for every combination").

        Raises
        ------
        QueryError
            If any source or target is not covered by the index.
        """
        cu = self.components_of(sources)
        cv = self.components_of(targets)
        grid_u, grid_v = np.meshgrid(cu, cv, indexing="ij")
        return self.query_components(grid_u.ravel(),
                                     grid_v.ravel()).reshape(
            len(sources), len(targets))


def reachable_batch(index: ReachabilityIndex,
                    pairs: list[tuple[Node, Node]]) -> list[bool]:
    """One-shot vectorised batch query (see :class:`BatchQuerier`).

    Falls back to the scalar ``reachable`` loop for schemes without a
    vectorised kernel, so it is safe to call on any index.
    """
    arrays = index.label_arrays()
    if arrays is None:
        return index.reachable_many(pairs)
    return arrays.query_pairs(pairs).tolist()
