/* Optional compiled inner loop of repro.core.fastkernel (Dual-I).
 *
 * One function: eval_dual_i(cu, cv, starts, ends, label_x, label_y,
 * label_z, flat_matrix, ncols, out) — Theorem 3 per aligned component
 * id, writing 0/1 into a uint8 answer buffer.  All array arguments are
 * C-contiguous int64 buffers handed over via the buffer protocol (no
 * numpy C API, so the extension builds against a bare CPython).  The
 * caller (FastKernel) owns validation: component ids are already
 * bounds-checked against the label arrays, so the loop runs with the
 * GIL released and no per-element branching beyond the query itself.
 *
 * Built only when REPRO_FAST_KERNEL=1 (see setup.py); answers are
 * bit-for-bit those of DualILabelArrays.query_components, asserted by
 * tests/test_fastkernel.py across the 51-graph differential corpus.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stdint.h>

static PyObject *
eval_dual_i(PyObject *self, PyObject *args)
{
    Py_buffer cu, cv, starts, ends, lx, ly, lz, flat, out;
    Py_ssize_t ncols;

    if (!PyArg_ParseTuple(args, "y*y*y*y*y*y*y*y*nw*",
                          &cu, &cv, &starts, &ends, &lx, &ly, &lz,
                          &flat, &ncols, &out))
        return NULL;

    Py_ssize_t n = cu.len / (Py_ssize_t)sizeof(int64_t);
    if (cv.len != cu.len) {
        PyErr_Format(PyExc_ValueError,
                     "cu/cv length mismatch: %zd vs %zd bytes",
                     cu.len, cv.len);
        goto fail;
    }
    if (out.len < n) {
        PyErr_Format(PyExc_ValueError,
                     "answer buffer of %zd bytes cannot hold %zd "
                     "answers", out.len, n);
        goto fail;
    }

    {
        const int64_t *CU = (const int64_t *)cu.buf;
        const int64_t *CV = (const int64_t *)cv.buf;
        const int64_t *S = (const int64_t *)starts.buf;
        const int64_t *E = (const int64_t *)ends.buf;
        const int64_t *X = (const int64_t *)lx.buf;
        const int64_t *Y = (const int64_t *)ly.buf;
        const int64_t *Z = (const int64_t *)lz.buf;
        const int64_t *N = (const int64_t *)flat.buf;
        uint8_t *O = (uint8_t *)out.buf;
        Py_ssize_t i;

        Py_BEGIN_ALLOW_THREADS
        for (i = 0; i < n; i++) {
            int64_t u = CU[i], v = CV[i];
            int64_t a2 = S[v];
            int r = (u == v) || (S[u] <= a2 && a2 < E[u]);
            if (!r) {
                int64_t z2 = Z[v];
                r = N[X[u] * ncols + z2] - N[Y[u] * ncols + z2] > 0;
            }
            O[i] = (uint8_t)r;
        }
        Py_END_ALLOW_THREADS
    }

    PyBuffer_Release(&cu);
    PyBuffer_Release(&cv);
    PyBuffer_Release(&starts);
    PyBuffer_Release(&ends);
    PyBuffer_Release(&lx);
    PyBuffer_Release(&ly);
    PyBuffer_Release(&lz);
    PyBuffer_Release(&flat);
    PyBuffer_Release(&out);
    Py_RETURN_NONE;

fail:
    PyBuffer_Release(&cu);
    PyBuffer_Release(&cv);
    PyBuffer_Release(&starts);
    PyBuffer_Release(&ends);
    PyBuffer_Release(&lx);
    PyBuffer_Release(&ly);
    PyBuffer_Release(&lz);
    PyBuffer_Release(&flat);
    PyBuffer_Release(&out);
    return NULL;
}

static PyMethodDef methods[] = {
    {"eval_dual_i", eval_dual_i, METH_VARARGS,
     "eval_dual_i(cu, cv, starts, ends, label_x, label_y, label_z, "
     "flat_matrix, ncols, out)\n\n"
     "Dual-I reachability per aligned component id into a uint8 "
     "buffer; all buffers C-contiguous int64, GIL released."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef module = {
    PyModuleDef_HEAD_INIT, "_fastkernel",
    "Compiled Dual-I query loop (optional; see repro.core.fastkernel).",
    -1, methods,
};

PyMODINIT_FUNC
PyInit__fastkernel(void)
{
    return PyModule_Create(&module);
}
