"""The link table and its transitive closure — paper Section 3.1.

A non-tree edge from a node labeled ``[a, b)`` to a node labeled ``[c, d)``
is recorded as the *link* ``a -> [c, d)``: the tail contributes only its
``start`` label, the head its whole interval.  Lemma 1 shows the interval
labels plus the link table carry the complete reachability relation.

To avoid chasing chains of links at query time, the table is closed
transitively (Theorem 1): whenever links ``i₁ -> [j₁, k₁)`` and
``i₂ -> [j₂, k₂)`` satisfy ``i₂ ∈ [j₁, k₁)`` — the second link's tail is a
tree descendant of the first link's head — the derived link
``i₁ -> [j₂, k₂)`` is added, until a fixpoint.  Property 1 bounds the
result at ``t(t+1)/2`` entries.

The closure here is computed as reachability over the *link digraph*
(link ``e → e'`` iff ``tail(e') ∈ head-interval(e)``) with one DFS per
link, i.e. ``O(t · (t + r))`` where ``r`` is the number of link-digraph
edges — considerably better in practice than the naive add-until-fixpoint
loop, while producing the identical table.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass

from repro.core.intervals import Interval, IntervalLabeling
from repro.graph.digraph import Edge

__all__ = ["Link", "LinkTable", "build_link_table", "transitive_link_table"]


@dataclass(frozen=True, order=True)
class Link:
    """A link ``tail -> [head_start, head_end)``.

    ``tail`` is the *start* interval label of the edge's source node;
    ``[head_start, head_end)`` is the interval label of its target.
    """

    tail: int
    head_start: int
    head_end: int

    @property
    def head_interval(self) -> Interval:
        """The head's interval label as an :class:`Interval`."""
        return Interval(self.head_start, self.head_end)

    def covers(self, point: int) -> bool:
        """``True`` iff ``point`` lies in the head interval."""
        return self.head_start <= point < self.head_end

    def __repr__(self) -> str:
        return f"{self.tail}->[{self.head_start},{self.head_end})"


@dataclass(frozen=True)
class LinkTable:
    """An immutable collection of links with sorted coordinate sets.

    Attributes
    ----------
    links:
        The links, sorted by ``(tail, head_start, head_end)``.
    xs:
        Sorted distinct tail values — the TLC grid's x coordinates.
    ys:
        Sorted distinct head-start values — the TLC grid's y coordinates
        used by Dual-I's intelligent snapping (Lemma 2).
    """

    links: tuple[Link, ...]
    xs: tuple[int, ...]
    ys: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.links)

    def __iter__(self):
        return iter(self.links)

    def index_x(self, value: int) -> int:
        """Position of a tail value within ``xs`` (must be present)."""
        i = bisect_left(self.xs, value)
        if i == len(self.xs) or self.xs[i] != value:
            raise KeyError(f"{value} is not a link-table x coordinate")
        return i

    def index_y(self, value: int) -> int:
        """Position of a head-start value within ``ys`` (must be present)."""
        i = bisect_left(self.ys, value)
        if i == len(self.ys) or self.ys[i] != value:
            raise KeyError(f"{value} is not a link-table y coordinate")
        return i

    def snap_x(self, value: int) -> int | None:
        """Index of the smallest x coordinate ``>= value`` (Definition 2's
        snapping), or ``None`` for the "−" sentinel."""
        i = bisect_left(self.xs, value)
        return i if i < len(self.xs) else None

    def snap_y_down(self, value: int) -> int | None:
        """Index of the largest y coordinate ``<= value``, or ``None``."""
        i = bisect_right(self.ys, value) - 1
        return i if i >= 0 else None


def _make_table(links: list[Link]) -> LinkTable:
    links_sorted = tuple(sorted(set(links)))
    xs = tuple(sorted({link.tail for link in links_sorted}))
    ys = tuple(sorted({link.head_start for link in links_sorted}))
    return LinkTable(links=links_sorted, xs=xs, ys=ys)


def build_link_table(nontree_edges: list[Edge],
                     labeling: IntervalLabeling) -> LinkTable:
    """Turn non-tree edges into the (unclosed) link table.

    The caller is expected to have dropped superfluous edges already (the
    spanning-forest extraction does); any that slip through are harmless —
    they become links whose head interval contains their own tail, adding
    no derived reachability beyond the tree's.
    """
    links = []
    for u, v in nontree_edges:
        head = labeling.interval[v]
        links.append(Link(tail=labeling.start(u),
                          head_start=head.start, head_end=head.end))
    return _make_table(links)


def transitive_link_table(table: LinkTable) -> LinkTable:
    """Close ``table`` under Theorem 1's derivation rule.

    Returns a new :class:`LinkTable` containing every original link plus
    each derived link ``tail(e) -> head(e')`` for links ``e' `` reachable
    from ``e`` in the link digraph.  Property 1 guarantees the output has
    at most ``t(t+1)/2`` entries for ``t`` input links.
    """
    base = list(table.links)
    t = len(base)
    if t == 0:
        return table

    # Link digraph: e -> e' iff tail(e') ∈ head-interval(e).  Tails are
    # sorted once so each link finds its successors with two bisects.
    tails = sorted((link.tail, idx) for idx, link in enumerate(base))
    tail_values = [tv for tv, _ in tails]

    successors: list[list[int]] = []
    for link in base:
        lo = bisect_left(tail_values, link.head_start)
        hi = bisect_left(tail_values, link.head_end)
        successors.append([tails[pos][1] for pos in range(lo, hi)])

    closed: list[Link] = []
    for start_idx, link in enumerate(base):
        # DFS over links reachable from link (including itself).
        seen = {start_idx}
        stack = [start_idx]
        while stack:
            current = stack.pop()
            for nxt in successors[current]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        for idx in seen:
            reached = base[idx]
            closed.append(Link(tail=link.tail,
                               head_start=reached.head_start,
                               head_end=reached.head_end))
    return _make_table(closed)
