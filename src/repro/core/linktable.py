"""The link table and its transitive closure — paper Section 3.1.

A non-tree edge from a node labeled ``[a, b)`` to a node labeled ``[c, d)``
is recorded as the *link* ``a -> [c, d)``: the tail contributes only its
``start`` label, the head its whole interval.  Lemma 1 shows the interval
labels plus the link table carry the complete reachability relation.

To avoid chasing chains of links at query time, the table is closed
transitively (Theorem 1): whenever links ``i₁ -> [j₁, k₁)`` and
``i₂ -> [j₂, k₂)`` satisfy ``i₂ ∈ [j₁, k₁)`` — the second link's tail is a
tree descendant of the first link's head — the derived link
``i₁ -> [j₂, k₂)`` is added, until a fixpoint.  Property 1 bounds the
result at ``t(t+1)/2`` entries.

The closure here is computed as reachability over the *link digraph*
(link ``e → e'`` iff ``tail(e') ∈ head-interval(e)``).  With the links
sorted by tail, each link's successors form one contiguous run of
positions, and a single Tarjan pass over that range graph computes every
link's reach set memoized per strongly connected component
(:func:`_close_positions`): Tarjan emits components in reverse
topological order, so a popped component only unions reach sets that are
already final.  Every link-digraph edge is examined once —
``O(r + t²/w)`` for ``w``-bit words — instead of the per-link DFS's
``O(t · (t + r))``, while producing the identical table.  Both the
reference python path (:func:`transitive_link_table`) and the fast
array backend (:func:`close_link_arrays`) share it.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.intervals import Interval, IntervalLabeling
from repro.graph.digraph import Edge

__all__ = ["Link", "LinkTable", "build_link_table", "transitive_link_table",
           "close_link_arrays", "table_from_arrays"]


@dataclass(frozen=True, order=True)
class Link:
    """A link ``tail -> [head_start, head_end)``.

    ``tail`` is the *start* interval label of the edge's source node;
    ``[head_start, head_end)`` is the interval label of its target.
    """

    tail: int
    head_start: int
    head_end: int

    @property
    def head_interval(self) -> Interval:
        """The head's interval label as an :class:`Interval`."""
        return Interval(self.head_start, self.head_end)

    def covers(self, point: int) -> bool:
        """``True`` iff ``point`` lies in the head interval."""
        return self.head_start <= point < self.head_end

    def __repr__(self) -> str:
        return f"{self.tail}->[{self.head_start},{self.head_end})"


@dataclass(frozen=True)
class LinkTable:
    """An immutable collection of links with sorted coordinate sets.

    Attributes
    ----------
    links:
        The links, sorted by ``(tail, head_start, head_end)``.
    xs:
        Sorted distinct tail values — the TLC grid's x coordinates.
    ys:
        Sorted distinct head-start values — the TLC grid's y coordinates
        used by Dual-I's intelligent snapping (Lemma 2).
    """

    links: tuple[Link, ...]
    xs: tuple[int, ...]
    ys: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.links)

    def __iter__(self):
        return iter(self.links)

    def index_x(self, value: int) -> int:
        """Position of a tail value within ``xs`` (must be present)."""
        i = bisect_left(self.xs, value)
        if i == len(self.xs) or self.xs[i] != value:
            raise KeyError(f"{value} is not a link-table x coordinate")
        return i

    def index_y(self, value: int) -> int:
        """Position of a head-start value within ``ys`` (must be present)."""
        i = bisect_left(self.ys, value)
        if i == len(self.ys) or self.ys[i] != value:
            raise KeyError(f"{value} is not a link-table y coordinate")
        return i

    def snap_x(self, value: int) -> int | None:
        """Index of the smallest x coordinate ``>= value`` (Definition 2's
        snapping), or ``None`` for the "−" sentinel."""
        i = bisect_left(self.xs, value)
        return i if i < len(self.xs) else None

    def snap_y_down(self, value: int) -> int | None:
        """Index of the largest y coordinate ``<= value``, or ``None``."""
        i = bisect_right(self.ys, value) - 1
        return i if i >= 0 else None


def _make_table(links: list[Link]) -> LinkTable:
    links_sorted = tuple(sorted(set(links)))
    xs = tuple(sorted({link.tail for link in links_sorted}))
    ys = tuple(sorted({link.head_start for link in links_sorted}))
    return LinkTable(links=links_sorted, xs=xs, ys=ys)


def build_link_table(nontree_edges: list[Edge],
                     labeling: IntervalLabeling) -> LinkTable:
    """Turn non-tree edges into the (unclosed) link table.

    The caller is expected to have dropped superfluous edges already (the
    spanning-forest extraction does); any that slip through are harmless —
    they become links whose head interval contains their own tail, adding
    no derived reachability beyond the tree's.
    """
    links = []
    for u, v in nontree_edges:
        head = labeling.interval[v]
        links.append(Link(tail=labeling.start(u),
                          head_start=head.start, head_end=head.end))
    return _make_table(links)


def _close_positions(lo: Sequence[int], hi: Sequence[int]) -> list[int]:
    """Reach bitsets over the link digraph, memoized per SCC.

    Positions ``0..t-1`` are the links sorted by tail; position ``p``'s
    successors are exactly the contiguous positions ``lo[p]..hi[p]-1``
    (the links whose tail lies in ``p``'s head interval).  Returns one
    reach bitset per position — bit ``q`` set iff link ``q`` is reachable
    from link ``p``, *including* ``p`` itself (the original link stays in
    the closed table).

    One iterative Tarjan pass computes the sets: components pop in
    reverse topological order, so when a component is emitted the reach
    set of every successor component is already final and each
    link-digraph edge contributes exactly one union.  Links that share a
    component (mutually derivable via superfluous self-covering links)
    share one bitset object.
    """
    t = len(lo)
    index_of = [-1] * t
    lowlink = [0] * t
    on_stack = bytearray(t)
    comp_of = [-1] * t
    comp_reach: list[int] = []
    scc_stack: list[int] = []
    counter = 0
    for root in range(t):
        if index_of[root] != -1:
            continue
        work = [root]
        cursor = [lo[root]]
        index_of[root] = lowlink[root] = counter
        counter += 1
        scc_stack.append(root)
        on_stack[root] = 1
        while work:
            node = work[-1]
            pos = cursor[-1]
            end = hi[node]
            advanced = False
            while pos < end:
                succ = pos
                pos += 1
                if index_of[succ] == -1:
                    cursor[-1] = pos
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    scc_stack.append(succ)
                    on_stack[succ] = 1
                    work.append(succ)
                    cursor.append(lo[succ])
                    advanced = True
                    break
                if on_stack[succ] and index_of[succ] < lowlink[node]:
                    lowlink[node] = index_of[succ]
            if advanced:
                continue
            work.pop()
            cursor.pop()
            if lowlink[node] == index_of[node]:
                cid = len(comp_reach)
                members = []
                while True:
                    w = scc_stack.pop()
                    on_stack[w] = 0
                    comp_of[w] = cid
                    members.append(w)
                    if w == node:
                        break
                reach = 0
                for w in members:
                    reach |= 1 << w
                for w in members:
                    for s in range(lo[w], hi[w]):
                        c = comp_of[s]
                        if c != cid:
                            reach |= comp_reach[c]
                comp_reach.append(reach)
            else:
                parent = work[-1]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
    return [comp_reach[comp_of[p]] for p in range(t)]


def transitive_link_table(table: LinkTable) -> LinkTable:
    """Close ``table`` under Theorem 1's derivation rule.

    Returns a new :class:`LinkTable` containing every original link plus
    each derived link ``tail(e) -> head(e')`` for links ``e' `` reachable
    from ``e`` in the link digraph.  Property 1 guarantees the output has
    at most ``t(t+1)/2`` entries for ``t`` input links.

    Reachability is computed once for the whole table by
    :func:`_close_positions` (memoized per link-digraph SCC) rather than
    one DFS per link.
    """
    base = list(table.links)
    t = len(base)
    if t == 0:
        return table

    # Sort positions by tail so each link's successors are one contiguous
    # run found with two bisects.  `table.links` is already sorted by
    # (tail, ...) when built through this module, making this a no-op
    # pass, but direct LinkTable constructions are tolerated.
    order = sorted(range(t), key=lambda i: base[i].tail)
    tails = [base[i].tail for i in order]
    lo = [bisect_left(tails, base[i].head_start) for i in order]
    hi = [bisect_left(tails, base[i].head_end) for i in order]
    reach = _close_positions(lo, hi)

    closed: list[Link] = []
    for p, i in enumerate(order):
        link = base[i]
        bits = reach[p]
        while bits:
            lowest = bits & -bits
            bits ^= lowest
            reached = base[order[lowest.bit_length() - 1]]
            closed.append(Link(tail=link.tail,
                               head_start=reached.head_start,
                               head_end=reached.head_end))
    return _make_table(closed)


#: Gates for the dense layered closure: maximum number of links (bounds
#: the ``t × t/64`` reach matrix at 2 MB) and maximum Kahn rounds before
#: the layering is declared chain-like and the big-int path takes over.
_DENSE_REACH_LINKS = 4096
_DENSE_REACH_ROUNDS = 128


def _layered_reach(lo: np.ndarray, hi: np.ndarray) -> np.ndarray | None:
    """Reach bitsets of the range graph as a packed ``uint64`` matrix.

    Vectorised counterpart of :func:`_close_positions`, exploiting a
    structural fact of link tables built from a DFS spanning forest: a
    retained non-tree edge is always a *cross* edge (back edges are
    impossible in a DAG, forward edges are superfluous), so a link's
    head interval ends at or before its tail interval starts.  In the
    canonical tail-sorted order every successor therefore sits at a
    *strictly lower* position — verified up front with one comparison
    (``hi[p] <= p``), which doubles as the cycle check.  The sweep then
    walks positions ascending in greedy chunks (every position's
    successors lie below its chunk, hence are final), OR-ing each
    chunk's successor rows with one ``bitwise_or.reduceat``.

    Returns ``None`` — caller falls back to :func:`_close_positions` —
    when the downward-edge property fails (a cycle, or an arbitrary
    hand-built table), when the chunking is too chain-like to pay off,
    or when ``t`` exceeds the matrix budget.
    """
    t = int(lo.shape[0])
    if t > _DENSE_REACH_LINKS:
        return None
    pos = np.arange(t)
    if not bool((hi <= pos).all()):
        return None  # some link reaches its own or a later position
    hil = hi.tolist()
    bounds = [0]
    chunk_start = 0
    for p in range(1, t):
        if hil[p] > chunk_start:
            bounds.append(p)
            chunk_start = p
    if len(bounds) > _DENSE_REACH_ROUNDS:
        return None
    bounds.append(t)

    words = (t + 63) >> 6
    reach = np.zeros((t, words), dtype=np.uint64)
    # Reflexive seed: row p starts with its own bit, so unioning the
    # successor rows alone transfers both the successors and everything
    # they reach.
    reach[pos, pos >> 6] = np.uint64(1) << (pos & 63).astype(np.uint64)
    # The gather indices don't depend on the evolving reach rows, so the
    # whole flat successor list is laid out once; each chunk then works
    # on a contiguous slice of it.
    c_all = hi - lo
    ne = np.flatnonzero(c_all)
    if ne.size == 0:
        return reach
    c = c_all[ne]
    cum = np.cumsum(c)
    excl = cum - c
    flat = np.repeat(lo[ne] - excl, c) + np.arange(int(cum[-1]))
    splits = np.searchsorted(ne, bounds).tolist()
    excl_l = excl.tolist()
    cum_l = cum.tolist()
    for i0, i1 in zip(splits, splits[1:]):
        if i0 == i1:
            continue
        e0 = excl_l[i0]
        reach[ne[i0:i1]] |= np.bitwise_or.reduceat(
            reach[flat[e0:cum_l[i1 - 1]]], excl[i0:i1] - e0, axis=0)
    return reach


def close_link_arrays(tails: Sequence[int], head_starts: Sequence[int],
                      head_ends: Sequence[int]
                      ) -> tuple[list[int], list[int], list[int]]:
    """Theorem 1's closure over parallel link arrays — the fast backend.

    The inputs must be sorted lexicographically by
    ``(tail, head_start, head_end)`` with no duplicate triples (what the
    fast link-table build produces; the same canonical order
    :func:`_make_table` gives ``LinkTable.links``).  Returns the closed
    table as three lists in that same canonical order — exactly the
    triples ``transitive_link_table`` would produce, without building a
    single :class:`Link`.

    Reachability over the link digraph comes from the vectorised
    :func:`_layered_reach` when the digraph is acyclic and small enough,
    falling back to the shared per-SCC big-int pass
    (:func:`_close_positions`) otherwise — identical output either way.
    """
    t = len(tails)
    if t == 0:
        return [], [], []
    ta = np.asarray(tails, dtype=np.int64)
    hs = np.asarray(head_starts, dtype=np.int64)
    he = np.asarray(head_ends, dtype=np.int64)
    lo = np.searchsorted(ta, hs, side="left")
    hi = np.searchsorted(ta, he, side="left")

    dense = _layered_reach(lo, hi)
    if dense is not None:
        rows = np.unpackbits(dense.astype("<u8", copy=False)
                             .view(np.uint8), axis=1, bitorder="little")
        # Columns >= t (a word's padding bits) are always zero, so the
        # flat scan needs no trimming; the bool view hits numpy's fast
        # nonzero path.
        flat = np.flatnonzero(rows.view(np.bool_))
        p_idx = flat // rows.shape[1]
        q_idx = flat % rows.shape[1]
        ct, chs, che = ta[p_idx], hs[q_idx], he[q_idx]
        order = np.lexsort((che, chs, ct))
        ct, chs, che = ct[order], chs[order], che[order]
        keep = np.empty(ct.size, dtype=bool)
        keep[0] = True
        # Distinct links can share a tail value, so derived triples may
        # collide; drop consecutive duplicates post-sort.
        keep[1:] = ((ct[1:] != ct[:-1]) | (chs[1:] != chs[:-1])
                    | (che[1:] != che[:-1]))
        return (ct[keep].tolist(), chs[keep].tolist(), che[keep].tolist())

    reach = _close_positions(lo.tolist(), hi.tolist())
    tl, hl, el = ta.tolist(), hs.tolist(), he.tolist()
    closed: set[tuple[int, int, int]] = set()
    for p in range(t):
        tail = tl[p]
        bits = reach[p]
        while bits:
            lowest = bits & -bits
            bits ^= lowest
            q = lowest.bit_length() - 1
            closed.add((tail, hl[q], el[q]))
    triples = sorted(closed)
    return ([tr[0] for tr in triples], [tr[1] for tr in triples],
            [tr[2] for tr in triples])


def table_from_arrays(tails: Sequence[int], head_starts: Sequence[int],
                      head_ends: Sequence[int]) -> LinkTable:
    """Materialise a :class:`LinkTable` from canonical parallel arrays.

    The arrays must already be sorted by ``(tail, head_start, head_end)``
    and duplicate-free (the fast backend's storage format), so no
    re-sorting happens here — this is the lazy counterpart of
    :func:`_make_table`.
    """
    links = tuple(Link(tail=tail, head_start=hs, head_end=he)
                  for tail, hs, he in zip(tails, head_starts, head_ends))
    xs = tuple(sorted(set(tails)))
    ys = tuple(sorted(set(head_starts)))
    return LinkTable(links=links, xs=xs, ys=ys)
