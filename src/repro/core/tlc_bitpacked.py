"""Bit-packed TLC matrix — Property 2 realised at bit granularity.

Property 2: "Any value of N(·,·) can be stored in 2·log t bits", because
TLC counts never exceed ``t(t+1)/2``.  :func:`pack_tlc_matrix` (in
:mod:`repro.core.tlc_matrix`) approximates this at *byte* granularity;
this module goes all the way: :class:`BitPackedTLCMatrix` stores every
cell in exactly ``b = max(1, ceil(log₂(max_value + 1)))`` bits inside a
contiguous ``uint64`` word array, with shift-and-mask reads.

Cells never straddle word boundaries (each 64-bit word holds
``64 // b`` cells; the remainder bits are padding), so a read is one
array access plus two shifts — still O(1), just with a larger constant
than the plain array.  The payoff on sparse graphs is substantial: at
``t = 1000`` with small counts, 10 bits/cell versus 64 is a 6.4×
reduction of the dominant index component.

This is an exact drop-in for the query side: :meth:`value` matches
:class:`TLCMatrix.value` cell for cell (asserted by tests), and
:class:`DualIIndex` accepts it via ``matrix_backend="bitpacked"``.
"""

from __future__ import annotations

import numpy as np

from repro.core.tlc_matrix import TLCMatrix

__all__ = ["BitPackedTLCMatrix", "bitpack_tlc_matrix"]


class BitPackedTLCMatrix:
    """A read-only TLC matrix with ``b``-bit cells in uint64 words."""

    __slots__ = ("xs", "ys", "bits_per_cell", "_cells_per_word",
                 "_num_cols", "_words", "_mask")

    def __init__(self, xs: tuple[int, ...], ys: tuple[int, ...],
                 bits_per_cell: int, num_cols: int,
                 words: np.ndarray) -> None:
        if not 1 <= bits_per_cell <= 64:
            raise ValueError(
                f"bits_per_cell must be in [1, 64], got {bits_per_cell}")
        self.xs = xs
        self.ys = ys
        self.bits_per_cell = bits_per_cell
        self._cells_per_word = 64 // bits_per_cell
        self._num_cols = num_cols
        self._words = words
        self._mask = (1 << bits_per_cell) - 1

    # ------------------------------------------------------------------
    def value(self, ix: int, iy: int) -> int:
        """Cell read: same semantics as :meth:`TLCMatrix.value`."""
        flat = ix * self._num_cols + iy
        word_index, slot = divmod(flat, self._cells_per_word)
        word = int(self._words[word_index])
        return (word >> (slot * self.bits_per_cell)) & self._mask

    @property
    def sentinel_x(self) -> int:
        """Row index of the "−" sentinel."""
        return len(self.xs)

    @property
    def sentinel_y(self) -> int:
        """Column index of the "−" sentinel."""
        return len(self.ys)

    @property
    def nbytes(self) -> int:
        """Payload size of the packed word array."""
        return int(self._words.nbytes)

    def to_rows(self) -> list[list[int]]:
        """Unpack into nested lists (for the fast scalar query path)."""
        rows = len(self.xs) + 1
        return [[self.value(ix, iy) for iy in range(self._num_cols)]
                for ix in range(rows)]

    def __repr__(self) -> str:
        return (f"BitPackedTLCMatrix(|X|={len(self.xs)}, "
                f"|Y|={len(self.ys)}, bits={self.bits_per_cell}, "
                f"bytes={self.nbytes})")


def bitpack_tlc_matrix(tlc: TLCMatrix) -> BitPackedTLCMatrix:
    """Pack a :class:`TLCMatrix` into a :class:`BitPackedTLCMatrix`."""
    matrix = tlc.matrix
    max_value = int(matrix.max()) if matrix.size else 0
    bits = max(1, max_value.bit_length())
    cells_per_word = 64 // bits
    num_rows, num_cols = matrix.shape
    total_cells = num_rows * num_cols
    num_words = -(-total_cells // cells_per_word)
    words = np.zeros(num_words, dtype=np.uint64)

    flat = matrix.ravel()
    # Pack slot by slot, vectorised over all words at once.
    for slot in range(cells_per_word):
        chunk = flat[slot::cells_per_word]
        if chunk.size == 0:
            break
        padded = np.zeros(num_words, dtype=np.uint64)
        padded[:chunk.size] = chunk.astype(np.uint64)
        words |= padded << np.uint64(slot * bits)
    return BitPackedTLCMatrix(tlc.xs, tlc.ys, bits, num_cols, words)
