"""Buffer-reusing query kernel — the serving stack's fast path.

:class:`~repro.core.base.LabelArrays.query_pairs` is built for Python
callers: list pairs in, fresh numpy arrays at every step, Python bools
out.  Served traffic doesn't need any of that — the binary wire
protocol (:mod:`repro.server.binproto`) delivers batches as packed
``(u32 src, u32 dst)`` byte payloads and wants packed bitmaps back, so
the whole request can stay inside preallocated numpy buffers:

* ``np.frombuffer`` views the frame payload in place (zero copies for
  a single-frame flush; coalesced flushes are gathered into one
  reusable staging buffer);
* node ids resolve through the dense lookup table of
  :meth:`~repro.core.base.LabelArrays.dense_lookup` with ``np.take``
  into reused index buffers;
* the scheme kernel runs **in place** — Dual-I via
  :meth:`~repro.core.dual_i.DualILabelArrays.query_components_into`
  (interval containment + TLC probe with zero fresh allocations),
  Dual-II via
  :meth:`~repro.core.dual_ii.DualIILabelArrays.query_components_into`
  (interval containment + rank-table probes of the TLC search tree,
  staged through a reused encoded-probe buffer), other schemes via
  their ordinary ``query_components`` copied into the answer buffer;
* the reply bitmap is ``np.packbits`` straight off the answer buffer —
  no intermediate Python bool lists.

An optional C extension (:mod:`repro.core._fastkernel`, built with
``REPRO_FAST_KERNEL=1 python setup.py build_ext --inplace``) replaces
the Dual-I inner loop with a single compiled pass that releases the
GIL.  The pure-python path is always available and bit-for-bit
identical — the 51-graph differential harness
(``tests/test_fastkernel.py``) asserts all paths against BFS ground
truth and against ``query_pairs``.  Setting ``REPRO_FAST_KERNEL=0``
disables the compiled path at runtime even when built.

Thread safety: a kernel owns one buffer set guarded by ``self.lock``;
:meth:`run_frames` and :meth:`query_ids` serialise on it.  The serving
gateway runs one kernel per query-executor thread population (which PR
3 fixed at one thread), so the lock is uncontended there.
"""

from __future__ import annotations

import os
import threading
from typing import Sequence

import numpy as np

from repro.core.base import LabelArrays
from repro.core.dual_i import DualILabelArrays
from repro.core.dual_ii import DualIILabelArrays
from repro.exceptions import QueryError

__all__ = ["FastKernel", "compiled_available"]

#: Minimum buffer capacity (queries); growth doubles from here.
_MIN_CAPACITY = 4096

# Cached import of the optional C extension (``False`` = not tried).
_EXT: object | None | bool = False


def _import_ext():
    global _EXT
    if _EXT is False:
        try:
            from repro.core import _fastkernel as ext  # built artefact
            _EXT = ext
        except ImportError:
            _EXT = None
    return _EXT


def compiled_available() -> bool:
    """Whether the optional C extension is importable."""
    return _import_ext() is not None


def _compiled_enabled() -> bool:
    """Runtime gate: ``REPRO_FAST_KERNEL=0`` switches the compiled
    path off even when the extension is built."""
    return os.environ.get("REPRO_FAST_KERNEL", "") != "0"


class FastKernel:
    """Reusable-buffer batch evaluator over one :class:`LabelArrays`.

    Parameters
    ----------
    arrays:
        The label-array view to evaluate against.  Must expose a dense
        node-id lookup (``arrays.dense_lookup() is not None``) — i.e.
        the node space is small non-negative integers, which is exactly
        the u32 node-id model of the binary wire protocol.  Use
        :meth:`from_arrays` to get ``None`` instead of an exception for
        unsupported array views.
    capacity:
        Initial buffer capacity in queries; buffers double as needed
        and are never shrunk.
    use_compiled:
        ``None`` (default) auto-selects the C extension when it is
        importable, the scheme is Dual-I, and ``REPRO_FAST_KERNEL`` is
        not ``"0"``.  ``True`` requires it (``RuntimeError`` if
        unavailable); ``False`` forces the pure-python path — the knob
        the differential tests use to pin each path down.
    """

    def __init__(self, arrays: LabelArrays, *,
                 capacity: int = _MIN_CAPACITY,
                 use_compiled: bool | None = None) -> None:
        lookup = arrays.dense_lookup()
        if lookup is None:
            raise ValueError(
                "FastKernel requires a dense integer node space "
                "(arrays.dense_lookup() returned None)")
        self._arrays = arrays
        self._lookup = lookup
        self._lookup_size = lookup.shape[0]
        self._complete = arrays.lookup_complete
        self._inplace = isinstance(arrays, DualILabelArrays)
        self._rank = isinstance(arrays, DualIILabelArrays)
        ext = None
        if use_compiled is None:
            if self._inplace and _compiled_enabled():
                ext = _import_ext()
        elif use_compiled:
            if not self._inplace:
                raise RuntimeError(
                    "the compiled kernel only covers Dual-I arrays, "
                    f"got {type(arrays).__name__}")
            ext = _import_ext()
            if ext is None:
                raise RuntimeError(
                    "repro.core._fastkernel is not built; run "
                    "REPRO_FAST_KERNEL=1 python setup.py build_ext "
                    "--inplace")
        self._ext = ext
        self.lock = threading.Lock()
        self._cap = 0
        self._ensure(capacity)

    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(cls, arrays: LabelArrays | None,
                    **kwargs) -> "FastKernel | None":
        """A kernel for ``arrays``, or ``None`` when unsupported
        (no array view at all, or a non-dense node space)."""
        if arrays is None:
            return None
        if arrays.dense_lookup() is None:
            return None
        return cls(arrays, **kwargs)

    @property
    def compiled(self) -> bool:
        """Whether this kernel dispatches to the C extension."""
        return self._ext is not None

    @property
    def mode(self) -> str:
        """``"compiled"``, ``"inplace"``, ``"rank"`` or ``"generic"``
        — which evaluation path this kernel runs (stats / bench
        label).  ``"rank"`` is Dual-II's in-place path: interval
        containment plus rank-table probes of the TLC search tree."""
        if self._ext is not None:
            return "compiled"
        if self._inplace:
            return "inplace"
        return "rank" if self._rank else "generic"

    # ------------------------------------------------------------------
    def _ensure(self, n: int) -> None:
        if n <= self._cap:
            return
        cap = max(_MIN_CAPACITY, 1 << (n - 1).bit_length())
        self._qbuf = np.empty(2 * cap, dtype="<u4")
        self._cu = np.empty(cap, dtype=np.int64)
        self._cv = np.empty(cap, dtype=np.int64)
        self._scratch = {
            "i1": np.empty(cap, dtype=np.int64),
            "i2": np.empty(cap, dtype=np.int64),
            "i3": np.empty(cap, dtype=np.int64),
            "b1": np.empty(cap, dtype=bool),
            "b2": np.empty(cap, dtype=bool),
        }
        if self._rank:
            # Dual-II's encoded-probe staging buffer (two probes per
            # query — see TLCSearchTree.positive_diff_encoded_into).
            self._scratch["p"] = np.empty(2 * cap, dtype=np.int64)
        self._out = np.empty(cap, dtype=bool)
        self._cap = cap

    def _map_into(self, ids: np.ndarray, out: np.ndarray) -> None:
        """Gather component ids for ``ids`` into ``out``.

        Raises :class:`QueryError` naming the first offending node id
        when one falls outside the lookup table (this is how "node id
        >= n" on the wire surfaces as a clean ``unknown_node`` reply).
        """
        if ids.size:
            if ids.dtype.kind == "i" and int(ids.min()) < 0:
                raise QueryError(int(ids[int(np.argmax(ids < 0))]))
            if int(ids.max()) >= self._lookup_size:
                bad = ids >= self._lookup_size
                raise QueryError(int(ids[int(np.argmax(bad))]))
        np.take(self._lookup, ids, out=out)
        if not self._complete and out.size and int(out.min()) < 0:
            raise QueryError(int(ids[int(np.argmax(out < 0))]))

    def _answer_into(self, src: np.ndarray, dst: np.ndarray,
                     n: int) -> np.ndarray:
        """Evaluate ``n`` queries into the answer buffer; returns the
        live ``bool`` view (valid until the next kernel call)."""
        cu = self._cu[:n]
        cv = self._cv[:n]
        self._map_into(src, cu)
        self._map_into(dst, cv)
        out = self._out[:n]
        arrays = self._arrays
        if self._ext is not None:
            self._ext.eval_dual_i(
                cu, cv, arrays.starts, arrays.ends, arrays.label_x,
                arrays.label_y, arrays.label_z, arrays._flat_matrix,
                arrays._ncols, out.view(np.uint8))
        elif self._inplace or self._rank:
            arrays.query_components_into(cu, cv, out, self._scratch)
        else:
            np.copyto(out, arrays.query_components(cu, cv))
        return out

    # ------------------------------------------------------------------
    def run_frames(self, frames: Sequence[bytes]
                   ) -> tuple[list[bytes], int, int]:
        """Answer a flush of binary ``BATCH`` payloads in one pass.

        ``frames`` is a list of packed ``(u32 src, u32 dst)`` payloads
        (each ``8 * n_i`` bytes, already length-validated by the
        gateway).  Returns ``(bitmaps, total, positives)`` where
        ``bitmaps[i]`` is the LSB-first packed answer bitmap for frame
        ``i`` — ready for :func:`repro.server.binproto.encode_answers`
        without any intermediate Python lists.

        A single-frame flush is fully zero-copy: the payload is viewed
        with ``np.frombuffer`` and strided column views feed the kernel
        directly.  Multi-frame flushes are gathered into the reusable
        staging buffer so one kernel pass covers the whole flush.

        Raises
        ------
        QueryError
            When a node id is outside the index; the gateway reruns
            frames in isolation so one bad frame cannot poison its
            flush-mates.
        """
        counts = [len(f) >> 3 for f in frames]
        total = sum(counts)
        if total == 0:
            return [b"" for _ in frames], 0, 0
        with self.lock:
            self._ensure(total)
            if len(frames) == 1:
                flat = np.frombuffer(frames[0], dtype="<u4",
                                     count=2 * total)
            else:
                qbuf = self._qbuf
                offset = 0
                for payload, n in zip(frames, counts):
                    if not n:
                        continue
                    qbuf[offset:offset + 2 * n] = np.frombuffer(
                        payload, dtype="<u4", count=2 * n)
                    offset += 2 * n
                flat = qbuf[:2 * total]
            out = self._answer_into(flat[0::2], flat[1::2], total)
            positives = int(np.count_nonzero(out))
            bitmaps: list[bytes] = []
            offset = 0
            for n in counts:
                if n:
                    bitmaps.append(
                        np.packbits(out[offset:offset + n],
                                    bitorder="little").tobytes())
                else:
                    bitmaps.append(b"")
                offset += n
        return bitmaps, total, positives

    def query_ids(self, src, dst) -> np.ndarray:
        """Boolean answers for aligned integer node-id vectors.

        The array-in/array-out face of the kernel (benchmarks, tests,
        embedders).  Returns a **view into the reusable answer buffer**
        — copy it before the next call on this kernel if you need it to
        survive.
        """
        src = np.asarray(src)
        dst = np.asarray(dst)
        if src.ndim != 1 or dst.ndim != 1 or src.shape != dst.shape:
            raise ValueError(
                f"src/dst must be aligned 1-D vectors, got shapes "
                f"{src.shape} and {dst.shape}")
        if src.dtype.kind not in "iu" or dst.dtype.kind not in "iu":
            raise ValueError("src/dst must be integer arrays")
        n = src.shape[0]
        if n == 0:
            return np.zeros(0, dtype=bool)
        with self.lock:
            self._ensure(n)
            return self._answer_into(np.ascontiguousarray(src),
                                     np.ascontiguousarray(dst), n)
