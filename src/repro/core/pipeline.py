"""Shared dual-labeling build pipeline — paper Sections 3 and 5 composed.

Both dual schemes run the same preprocessing on an arbitrary directed
graph:

1. **Condense** strongly connected components (Section 3 intro) — the
   result is a DAG; original-node queries are answered through the
   component map.
2. Optionally reduce to the **minimal equivalent graph** (Section 5) —
   removes superfluous edges so the spanning step leaves fewer non-tree
   edges.
3. Extract a **spanning forest** and classify non-tree edges
   (Section 3.1), dropping superfluous ones.
4. Assign **interval labels** (Section 3.1).
5. Build the **link table** and close it into the **transitive link
   table** (Section 3.1).

Two interchangeable construction backends run these phases:

* ``backend="fast"`` (default) — one :class:`~repro.graph.csr.CSRGraph`
  snapshot of the input, then array-based reimplementations of every
  phase (:func:`~repro.graph.condensation.condense_csr`,
  :func:`~repro.graph.meg.minimal_equivalent_graph_csr`,
  :func:`~repro.graph.spanning.spanning_forest_csr`, and the shared
  memoized link closure).  Dict-shaped artefacts (``forest``,
  ``labeling``, the link tables, the post-MEG ``dag``) materialise
  lazily on first attribute access, so a build that only needs the label
  arrays never pays for them.
* ``backend="python"`` — the original dict-based reference
  implementation, kept as the equivalence oracle.

Both produce bit-for-bit identical artefacts (asserted by the
differential tests); they differ only in construction speed.

The :class:`DualPipeline` result carries every intermediate artefact plus
per-phase wall-clock timings, which the benchmark harness surfaces in the
Figure 8/9/11 indexing-time series, the MEG ablation, and the
``bench build`` backend comparison.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.phases import PhaseProfiler

import numpy as np

from repro.core.intervals import (
    Interval,
    IntervalLabeling,
    assign_intervals,
    labeling_from_arrays,
)
from repro.core.linktable import (
    LinkTable,
    build_link_table,
    close_link_arrays,
    table_from_arrays,
    transitive_link_table,
)
from repro.exceptions import QueryError
from repro.graph.condensation import Condensation, condense, condense_csr
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph, Node
from repro.graph.meg import minimal_equivalent_graph, minimal_equivalent_graph_csr
from repro.graph.spanning import SpanningForest, spanning_forest, spanning_forest_csr

__all__ = ["DualPipeline", "run_pipeline", "PIPELINE_BACKENDS"]

#: Valid values for :func:`run_pipeline`'s ``backend`` parameter.
PIPELINE_BACKENDS = ("fast", "python")


class DualPipeline:
    """All intermediate artefacts of the dual-labeling preprocessing.

    Attributes
    ----------
    condensation:
        SCC condensation of the input (maps original nodes to DAG nodes).
    dag:
        The DAG the labels are computed on (the condensation's DAG, or its
        MEG when ``use_meg`` was set).
    meg_edges:
        Edge count after MEG, or ``None`` when MEG was skipped.
    forest / labeling:
        Spanning forest and its interval labels.
    base_table / transitive_table:
        Link table before and after transitive closure.
    interval_starts / interval_ends:
        The interval labels as dense lists indexed by component id —
        ``labeling.interval[cid] == [interval_starts[cid],
        interval_ends[cid])``.  The index builders read these instead of
        the :class:`~repro.core.intervals.Interval` dict.
    phase_seconds:
        Wall-clock seconds per pipeline phase.
    backend:
        Which construction backend produced this pipeline
        (``"fast"`` or ``"python"``).

    The fast backend passes thunks for the dict-shaped artefacts; each
    materialises on first access and is cached.  Either way every
    attribute above is always available — laziness is invisible apart
    from where the materialisation cost lands.
    """

    def __init__(self, condensation: Condensation,
                 dag: Optional[DiGraph] = None,
                 meg_edges: Optional[int] = None,
                 forest: Optional[SpanningForest] = None,
                 labeling: Optional[IntervalLabeling] = None,
                 base_table: Optional[LinkTable] = None,
                 transitive_table: Optional[LinkTable] = None,
                 phase_seconds: Optional[dict[str, float]] = None,
                 *,
                 backend: str = "python",
                 lazy: Optional[dict[str, Callable[[], object]]] = None,
                 t: Optional[int] = None,
                 transitive_links: Optional[int] = None,
                 interval_starts: Optional[list[int]] = None,
                 interval_ends: Optional[list[int]] = None) -> None:
        self.condensation = condensation
        self.meg_edges = meg_edges
        self.phase_seconds: dict[str, float] = (
            {} if phase_seconds is None else phase_seconds)
        self.backend = backend
        self._dag = dag
        self._forest = forest
        self._labeling = labeling
        self._base_table = base_table
        self._transitive_table = transitive_table
        self._lazy: dict[str, Callable[[], object]] = dict(lazy or {})
        self._t = t
        self._transitive_links = transitive_links
        self._interval_starts = interval_starts
        self._interval_ends = interval_ends

    # -- lazily materialised artefacts ---------------------------------
    def _materialize(self, name: str):
        value = self._lazy.pop(name)()
        setattr(self, "_" + name, value)
        return value

    @property
    def dag(self) -> DiGraph:
        if self._dag is None:
            return self._materialize("dag")
        return self._dag

    @property
    def forest(self) -> SpanningForest:
        if self._forest is None:
            return self._materialize("forest")
        return self._forest

    @property
    def labeling(self) -> IntervalLabeling:
        if self._labeling is None:
            return self._materialize("labeling")
        return self._labeling

    @property
    def base_table(self) -> LinkTable:
        if self._base_table is None:
            return self._materialize("base_table")
        return self._base_table

    @property
    def transitive_table(self) -> LinkTable:
        if self._transitive_table is None:
            return self._materialize("transitive_table")
        return self._transitive_table

    # -- derived views --------------------------------------------------
    @property
    def t(self) -> int:
        """Number of retained non-tree edges."""
        if self._t is not None:
            return self._t
        return len(self.base_table)

    @property
    def num_transitive_links(self) -> int:
        """Size of the transitive link table."""
        if self._transitive_links is not None:
            return self._transitive_links
        return len(self.transitive_table)

    @property
    def interval_starts(self) -> list[int]:
        """``start`` labels indexed by component id."""
        if self._interval_starts is None:
            labeling = self.labeling
            self._interval_starts = [
                labeling.interval[cid].start
                for cid in range(self.condensation.num_components)]
        return self._interval_starts

    @property
    def interval_ends(self) -> list[int]:
        """``end`` labels indexed by component id."""
        if self._interval_ends is None:
            labeling = self.labeling
            self._interval_ends = [
                labeling.interval[cid].end
                for cid in range(self.condensation.num_components)]
        return self._interval_ends

    def component_interval(self, node: Node) -> Interval:
        """Interval label of the component containing an original node.

        Raises
        ------
        QueryError
            If the node was not part of the indexed graph.
        """
        try:
            cid = self.condensation.component_of[node]
        except KeyError:
            raise QueryError(node) from None
        if self._labeling is None and self._interval_starts is not None:
            return Interval(self._interval_starts[cid],
                            self._interval_ends[cid])
        return self.labeling.interval[cid]


def run_pipeline(graph: DiGraph, use_meg: bool = True,
                 backend: str = "fast",
                 registry: MetricsRegistry | None = None
                 ) -> DualPipeline:
    """Run the full preprocessing pipeline on ``graph``.

    Parameters
    ----------
    graph:
        Any directed graph; cycles are condensed away.
    use_meg:
        Run the optional minimal-equivalent-graph reduction (Section 5).
        On by default — it only ever shrinks ``t``.
    backend:
        ``"fast"`` (default) for the CSR/array construction backend,
        ``"python"`` for the dict-based reference implementation.  Both
        produce identical artefacts.
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`: phase
        durations are then also observed into the
        ``reach_build_phase_seconds{phase=...}`` histogram family, so
        repeated builds (hot reloads, benchmark sweeps) accumulate
        per-phase distributions.
    """
    if backend not in PIPELINE_BACKENDS:
        raise ValueError(
            f"backend must be one of {PIPELINE_BACKENDS}, got {backend!r}")
    profiler = PhaseProfiler(registry)
    if backend == "fast":
        return _run_fast(graph, use_meg, profiler)
    return _run_python(graph, use_meg, profiler)


def _run_python(graph: DiGraph, use_meg: bool,
                profiler: PhaseProfiler | None = None) -> DualPipeline:
    """The dict-based reference pipeline (``backend="python"``)."""
    profiler = profiler if profiler is not None else PhaseProfiler()

    with profiler.phase("condense"):
        cond = condense(graph)

    dag = cond.dag
    meg_edges: int | None = None
    if use_meg:
        with profiler.phase("meg"):
            dag = minimal_equivalent_graph(dag).graph
        meg_edges = dag.num_edges

    with profiler.phase("spanning"):
        forest = spanning_forest(dag)

    with profiler.phase("intervals"):
        labeling = assign_intervals(forest)

    with profiler.phase("link_table"):
        base_table = build_link_table(forest.nontree_edges, labeling)

    with profiler.phase("transitive_closure_of_links"):
        transitive = transitive_link_table(base_table)

    return DualPipeline(
        condensation=cond,
        dag=dag,
        meg_edges=meg_edges,
        forest=forest,
        labeling=labeling,
        base_table=base_table,
        transitive_table=transitive,
        phase_seconds=profiler.seconds,
        backend="python",
    )


def _run_fast(graph: DiGraph, use_meg: bool,
              profiler: PhaseProfiler | None = None) -> DualPipeline:
    """The CSR/array pipeline (``backend="fast"``).

    Phase keys match the reference path so timing series stay
    comparable.  Two bookkeeping differences, both deliberate:

    * the ``condense`` phase includes taking the CSR snapshot of the
      input (the reference's dict reads are likewise charged there);
    * interval labels fall out of the spanning DFS for free, so the
      ``intervals`` phase records only the (near-zero) finalisation —
      its work is fused into ``spanning``.
    """
    profiler = profiler if profiler is not None else PhaseProfiler()
    lazy: dict[str, Callable[[], object]] = {}

    with profiler.phase("condense"):
        csr = CSRGraph.from_digraph(graph)
        cond, cond_csr = condense_csr(csr)

    dag_csr = cond_csr
    meg_edges: int | None = None
    if use_meg:
        with profiler.phase("meg"):
            dag_csr = minimal_equivalent_graph_csr(cond_csr)
        meg_edges = dag_csr.num_edges
        lazy["dag"] = dag_csr.to_digraph
    else:
        lazy["dag"] = lambda: cond.dag

    with profiler.phase("spanning"):
        cf = spanning_forest_csr(dag_csr)
    lazy["forest"] = cf.materialize

    with profiler.phase("intervals"):
        starts, ends = cf.start, cf.end
        nodes = dag_csr.nodes
        lazy["labeling"] = lambda: labeling_from_arrays(nodes, starts,
                                                        ends)

    with profiler.phase("link_table"):
        sa = np.asarray(starts, dtype=np.int64)
        ea = np.asarray(ends, dtype=np.int64)
        bt = sa[cf.nontree_u]
        bs = sa[cf.nontree_v]
        be = ea[cf.nontree_v]
        # Canonical link order: sort by (tail, head_start, head_end),
        # then drop duplicate triples — same normal form as
        # linktable._make_table.
        order = np.lexsort((be, bs, bt))
        bt, bs, be = bt[order], bs[order], be[order]
        if bt.size:
            keep = np.empty(bt.size, dtype=bool)
            keep[0] = True
            keep[1:] = ((bt[1:] != bt[:-1]) | (bs[1:] != bs[:-1])
                        | (be[1:] != be[:-1]))
            bt, bs, be = bt[keep], bs[keep], be[keep]
        lazy["base_table"] = lambda: table_from_arrays(
            bt.tolist(), bs.tolist(), be.tolist())

    with profiler.phase("transitive_closure_of_links"):
        closed_tails, closed_hs, closed_he = close_link_arrays(bt, bs, be)
        lazy["transitive_table"] = lambda: table_from_arrays(
            closed_tails, closed_hs, closed_he)

    return DualPipeline(
        condensation=cond,
        meg_edges=meg_edges,
        phase_seconds=profiler.seconds,
        backend="fast",
        lazy=lazy,
        t=int(bt.size),
        transitive_links=len(closed_tails),
        interval_starts=starts,
        interval_ends=ends,
    )
