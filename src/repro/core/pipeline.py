"""Shared dual-labeling build pipeline — paper Sections 3 and 5 composed.

Both dual schemes run the same preprocessing on an arbitrary directed
graph:

1. **Condense** strongly connected components (Section 3 intro) — the
   result is a DAG; original-node queries are answered through the
   component map.
2. Optionally reduce to the **minimal equivalent graph** (Section 5) —
   removes superfluous edges so the spanning step leaves fewer non-tree
   edges.
3. Extract a **spanning forest** and classify non-tree edges
   (Section 3.1), dropping superfluous ones.
4. Assign **interval labels** (Section 3.1).
5. Build the **link table** and close it into the **transitive link
   table** (Section 3.1).

The :class:`DualPipeline` result carries every intermediate artefact plus
per-phase wall-clock timings, which the benchmark harness surfaces in the
Figure 8/9/11 indexing-time series and the MEG ablation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.intervals import IntervalLabeling, assign_intervals
from repro.core.linktable import LinkTable, build_link_table, transitive_link_table
from repro.exceptions import QueryError
from repro.graph.condensation import Condensation, condense
from repro.graph.digraph import DiGraph, Node
from repro.graph.meg import minimal_equivalent_graph
from repro.graph.spanning import SpanningForest, spanning_forest

__all__ = ["DualPipeline", "run_pipeline"]


@dataclass
class DualPipeline:
    """All intermediate artefacts of the dual-labeling preprocessing.

    Attributes
    ----------
    condensation:
        SCC condensation of the input (maps original nodes to DAG nodes).
    dag:
        The DAG the labels are computed on (the condensation's DAG, or its
        MEG when ``use_meg`` was set).
    meg_edges:
        Edge count after MEG, or ``None`` when MEG was skipped.
    forest / labeling:
        Spanning forest and its interval labels.
    base_table / transitive_table:
        Link table before and after transitive closure.
    phase_seconds:
        Wall-clock seconds per pipeline phase.
    """

    condensation: Condensation
    dag: DiGraph
    meg_edges: int | None
    forest: SpanningForest
    labeling: IntervalLabeling
    base_table: LinkTable
    transitive_table: LinkTable
    phase_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def t(self) -> int:
        """Number of retained non-tree edges."""
        return len(self.base_table)

    @property
    def num_transitive_links(self) -> int:
        """Size of the transitive link table."""
        return len(self.transitive_table)

    def component_interval(self, node: Node):
        """Interval label of the component containing an original node.

        Raises
        ------
        QueryError
            If the node was not part of the indexed graph.
        """
        try:
            cid = self.condensation.component_of[node]
        except KeyError:
            raise QueryError(node) from None
        return self.labeling.interval[cid]


def run_pipeline(graph: DiGraph, use_meg: bool = True) -> DualPipeline:
    """Run the full preprocessing pipeline on ``graph``.

    Parameters
    ----------
    graph:
        Any directed graph; cycles are condensed away.
    use_meg:
        Run the optional minimal-equivalent-graph reduction (Section 5).
        On by default — it only ever shrinks ``t``.
    """
    timings: dict[str, float] = {}

    start = time.perf_counter()
    cond = condense(graph)
    timings["condense"] = time.perf_counter() - start

    dag = cond.dag
    meg_edges: int | None = None
    if use_meg:
        start = time.perf_counter()
        dag = minimal_equivalent_graph(dag).graph
        timings["meg"] = time.perf_counter() - start
        meg_edges = dag.num_edges

    start = time.perf_counter()
    forest = spanning_forest(dag)
    timings["spanning"] = time.perf_counter() - start

    start = time.perf_counter()
    labeling = assign_intervals(forest)
    timings["intervals"] = time.perf_counter() - start

    start = time.perf_counter()
    base_table = build_link_table(forest.nontree_edges, labeling)
    timings["link_table"] = time.perf_counter() - start

    start = time.perf_counter()
    transitive = transitive_link_table(base_table)
    timings["transitive_closure_of_links"] = time.perf_counter() - start

    return DualPipeline(
        condensation=cond,
        dag=dag,
        meg_edges=meg_edges,
        forest=forest,
        labeling=labeling,
        base_table=base_table,
        transitive_table=transitive,
        phase_seconds=timings,
    )
