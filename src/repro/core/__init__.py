"""Dual labeling core: the paper's primary contribution.

Public entry points:

* :func:`repro.core.base.build_index` — build any registered scheme;
* :class:`repro.core.dual_i.DualIIndex` — constant-time queries (Dual-I);
* :class:`repro.core.dual_ii.DualIIIndex` — ``O(log t)`` queries, smaller
  space (Dual-II);
* :class:`repro.core.tlc_rangetree.DualRangeTreeIndex` — the
  range-temporal-aggregation backend (Section 4's alternative).
"""

from repro.core.base import (
    INT_BYTES,
    IndexStats,
    LabelArrays,
    ReachabilityIndex,
    available_schemes,
    build_index,
    get_scheme,
    register_scheme,
)
from repro.core.dual_i import DualIIndex, DualILabelArrays
from repro.core.dual_ii import DualIILabelArrays, DualIIIndex
from repro.core.batch import BatchQuerier, reachable_batch
from repro.core.service import QueryService, ServiceMetrics
from repro.core.dynamic import DynamicDualIndex
from repro.core.intervals import Interval, IntervalLabeling, assign_intervals
from repro.core.linktable import (
    Link,
    LinkTable,
    build_link_table,
    transitive_link_table,
)
from repro.core.nontree_labels import NonTreeLabels, assign_nontree_labels
from repro.core.pipeline import DualPipeline, run_pipeline
from repro.core.serialize import load_dual_index, save_dual_index
from repro.core.tlc_bitpacked import BitPackedTLCMatrix, bitpack_tlc_matrix
from repro.core.validation import ValidationReport, validate_index
from repro.core.witness import (
    Explanation,
    expand_witness,
    explain_query,
    verify_witness,
    witness_path,
)
from repro.core.tlc_matrix import (
    TLCMatrix,
    build_tlc_matrix,
    pack_tlc_matrix,
    tlc_function,
)
from repro.core.tlc_rangetree import DualRangeTreeIndex, RangeTemporalCounter
from repro.core.tlc_searchtree import TLCSearchTree, build_tlc_search_tree

__all__ = [
    "INT_BYTES",
    "IndexStats",
    "ReachabilityIndex",
    "available_schemes",
    "build_index",
    "get_scheme",
    "register_scheme",
    "DualIIndex",
    "DualIIIndex",
    "DualRangeTreeIndex",
    "DynamicDualIndex",
    "save_dual_index",
    "load_dual_index",
    "pack_tlc_matrix",
    "BitPackedTLCMatrix",
    "bitpack_tlc_matrix",
    "LabelArrays",
    "DualILabelArrays",
    "DualIILabelArrays",
    "BatchQuerier",
    "reachable_batch",
    "QueryService",
    "ServiceMetrics",
    "ValidationReport",
    "validate_index",
    "witness_path",
    "expand_witness",
    "verify_witness",
    "Explanation",
    "explain_query",
    "Interval",
    "IntervalLabeling",
    "assign_intervals",
    "Link",
    "LinkTable",
    "build_link_table",
    "transitive_link_table",
    "NonTreeLabels",
    "assign_nontree_labels",
    "DualPipeline",
    "run_pipeline",
    "TLCMatrix",
    "build_tlc_matrix",
    "tlc_function",
    "TLCSearchTree",
    "build_tlc_search_tree",
    "RangeTemporalCounter",
]
