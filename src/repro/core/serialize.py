"""Index serialisation: persist built dual indexes and reload them.

Labeling a massive graph is the expensive step; applications want to do
it once and ship the labels.  This module round-trips an index through a
single JSON document (human-inspectable and dependency-free).  Two
schemes are supported, distinguished by a ``scheme`` tag in the header:

* **Dual-I** (``format: repro-dual-i``) — interval labels, ⟨x, y, z⟩
  non-tree labels, and the TLC matrix as nested lists (acceptable
  because it holds at most ``(t+1)²`` small integers for ``t ≪ n``);
* **Dual-II** (``format: repro-dual-ii``) — interval labels plus the
  TLC search tree's two layers (row keys + per-row tail multisets).

The serving layer's hot-swap path (``repro.server``) loads either
format to warm-start without rebuilding.  Documents written before the
scheme tag existed carry only the Dual-I format marker and keep
loading unchanged.

Node names must be JSON-representable scalars (str/int/float/bool);
other hashables would not survive the round trip and are rejected at
save time.

Persistence is crash-safe: :func:`save_dual_index` writes to a sibling
temporary file, fsyncs, and atomically renames, so a process killed
mid-save can never clobber the previous good index with a partial one.
Every document carries a sha256 ``checksum`` that
:func:`load_dual_index` verifies, raising the typed
:class:`~repro.exceptions.CorruptIndexError` on damaged files — the
server's reload path catches it and degrades onto the last good index
instead of dying.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.base import IndexStats
from repro.core.dual_i import DualIIndex
from repro.core.dual_ii import DualIIIndex
from repro.exceptions import CorruptIndexError, IndexBuildError

__all__ = [
    "FORMAT_VERSION",
    "content_checksum",
    "dumps_index",
    "index_document",
    "load_dual_index",
    "load_index_document",
    "loads_index",
    "save_dual_index",
    "write_atomic_json",
]

FORMAT_VERSION = 1

PathLike = Union[str, Path]

_SCALAR_TYPES = (str, int, float, bool)


def _component_items(component_of) -> list:
    """JSON-safe ``[tag, node, cid]`` triples of a component map."""
    items = []
    for node, cid in component_of.items():
        if not isinstance(node, _SCALAR_TYPES):
            raise IndexBuildError(
                f"node {node!r} ({type(node).__name__}) is not "
                "JSON-serialisable; rename nodes to str/int first")
        # Tag the node's type so int 1 and str "1" survive distinctly.
        tag = "s" if isinstance(node, str) else "o"
        items.append([tag, node, cid])
    return items


def _stats_doc(stats: IndexStats) -> dict:
    return {
        "num_nodes": stats.num_nodes,
        "num_edges": stats.num_edges,
        "dag_nodes": stats.dag_nodes,
        "dag_edges": stats.dag_edges,
        "meg_edges": stats.meg_edges,
        "t": stats.t,
        "transitive_links": stats.transitive_links,
        "space_bytes": stats.space_bytes,
    }


def _content_checksum(document: dict) -> str:
    """Order-independent sha256 over every field except ``checksum``."""
    body = {key: value for key, value in document.items()
            if key != "checksum"}
    digest = hashlib.sha256(
        json.dumps(body, sort_keys=True).encode("utf-8")).hexdigest()
    return f"sha256:{digest}"


#: Public name for the document checksum, shared with the durable-state
#: manifest (:mod:`repro.server.durability`) so every checksummed JSON
#: artefact in the system verifies the same way.
content_checksum = _content_checksum


def write_atomic_json(document: dict, path: PathLike) -> None:
    """Durably write ``document`` as JSON to ``path``, atomically.

    The crash-safety pattern shared by every on-disk artefact: write to
    a sibling temporary file, flush + fsync the data, ``os.replace``
    over the target, then fsync the directory so the rename itself
    survives power loss.  A process killed at any point leaves either
    the complete new file or the untouched previous one, never a
    truncated hybrid.
    """
    target = Path(path)
    directory = target.parent if str(target.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(dir=directory,
                                    prefix=target.name + ".",
                                    suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(document))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        # Never leave a partial sibling behind on exception.
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    # Persist the rename itself (directory entry) where supported.
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(dir_fd)


def index_document(index) -> dict:
    """The checksummed JSON document of a Dual-I or Dual-II ``index``.

    This is the single serialised form of an index: the file writer
    (:func:`save_dual_index`) and the shared-memory publisher
    (:mod:`repro.core.shm`) both emit exactly this document, so an
    index round-trips bit-identically through either transport.

    Raises
    ------
    IndexBuildError
        If the scheme is not serialisable or any indexed node is not a
        JSON scalar.
    """
    if isinstance(index, DualIIndex):
        document = _dual_i_document(index)
    elif isinstance(index, DualIIIndex):
        document = _dual_ii_document(index)
    else:
        raise IndexBuildError(
            f"only Dual-I and Dual-II indexes are serialisable, got "
            f"{type(index).__name__}")
    document["checksum"] = _content_checksum(document)
    return document


def dumps_index(index) -> bytes:
    """The UTF-8 JSON bytes of :func:`index_document`."""
    return json.dumps(index_document(index)).encode("utf-8")


def save_dual_index(index, path: PathLike) -> None:
    """Write a Dual-I or Dual-II ``index`` to ``path`` as JSON.

    The write is crash-safe: the document goes to a sibling temporary
    file which is fsynced and then atomically renamed over ``path``
    (``os.replace``), so a crash — including ``SIGKILL`` mid-write —
    leaves either the complete new file or the untouched previous one,
    never a truncated hybrid.  A ``checksum`` field (sha256 over the
    rest of the document) lets :func:`load_dual_index` detect any
    bit-level corruption that happens after the rename.

    Raises
    ------
    IndexBuildError
        If the scheme is not serialisable or any indexed node is not a
        JSON scalar.
    """
    write_atomic_json(index_document(index), path)


def _dual_i_document(index: DualIIndex) -> dict:
    return {
        "format": "repro-dual-i",
        "version": FORMAT_VERSION,
        "scheme": "dual-i",
        "components": _component_items(index._component_of),
        "starts": index._starts,
        "ends": index._ends,
        "label_x": index._label_x,
        "label_y": index._label_y,
        "label_z": index._label_z,
        "tlc": {
            "xs": list(index.tlc_matrix.xs),
            "ys": list(index.tlc_matrix.ys),
            # Works for every matrix backend: the plain array exposes
            # .matrix, the packed variants expose to_rows().
            "matrix": (index.tlc_matrix.matrix.tolist()
                       if hasattr(index.tlc_matrix, "matrix")
                       else index.tlc_matrix.to_rows()),
        },
        "stats": _stats_doc(index.stats()),
    }


def _dual_ii_document(index: DualIIIndex) -> dict:
    tree = index.search_tree
    return {
        "format": "repro-dual-ii",
        "version": FORMAT_VERSION,
        "scheme": "dual-ii",
        "components": _component_items(index._component_of),
        "starts": index._starts,
        "ends": index._ends,
        "tree": {
            "row_ys": list(tree.row_ys),
            "rows": [list(row) for row in tree.rows],
        },
        "stats": _stats_doc(index.stats()),
    }


class _LoadedDualIndex(DualIIndex):
    """A Dual-I index restored from disk (no pipeline artefacts)."""

    def __init__(self, component_of, tlc, starts, ends,
                 label_x, label_y, label_z, stats) -> None:
        # Deliberately skip DualIIndex.__init__: there is no pipeline.
        self._pipeline = None
        self._component_of = component_of
        self._tlc = tlc
        self._starts = starts
        self._ends = ends
        self._label_x = label_x
        self._label_y = label_y
        self._label_z = label_z
        self._matrix_rows = tlc.matrix.tolist()
        self._stats = stats
        self._arrays = None

    @property
    def pipeline(self):
        raise IndexBuildError(
            "a deserialised index carries no pipeline artefacts")

    @property
    def t(self) -> int:
        return self._stats.t or 0


class _LoadedDualIIIndex(DualIIIndex):
    """A Dual-II index restored from disk (no pipeline artefacts)."""

    def __init__(self, component_of, tree, starts, ends, stats) -> None:
        # Deliberately skip DualIIIndex.__init__: there is no pipeline.
        self._pipeline = None
        self._component_of = component_of
        self._tree = tree
        self._starts = starts
        self._ends = ends
        self._stats = stats
        self._arrays = None

    @property
    def pipeline(self):
        raise IndexBuildError(
            "a deserialised index carries no pipeline artefacts")

    @property
    def t(self) -> int:
        return self._stats.t or 0


def _load_components(document) -> dict:
    component_of = {}
    for tag, node, cid in document["components"]:
        component_of[str(node) if tag == "s" else node] = cid
    return component_of


def _load_stats(document, scheme: str) -> IndexStats:
    stats_doc = document["stats"]
    return IndexStats(
        scheme=scheme,
        num_nodes=stats_doc["num_nodes"],
        num_edges=stats_doc["num_edges"],
        dag_nodes=stats_doc["dag_nodes"],
        dag_edges=stats_doc["dag_edges"],
        meg_edges=stats_doc.get("meg_edges"),
        t=stats_doc.get("t"),
        transitive_links=stats_doc.get("transitive_links"),
        space_bytes=dict(stats_doc.get("space_bytes", {})),
    )


def _load_dual_i(document) -> DualIIndex:
    from repro.core.tlc_matrix import TLCMatrix

    tlc_doc = document["tlc"]
    matrix = np.asarray(tlc_doc["matrix"], dtype=np.int64)
    if matrix.ndim != 2:
        matrix = matrix.reshape(
            len(tlc_doc["xs"]) + 1, len(tlc_doc["ys"]) + 1)
    tlc = TLCMatrix(tuple(tlc_doc["xs"]), tuple(tlc_doc["ys"]), matrix)
    return _LoadedDualIndex(
        _load_components(document), tlc,
        list(document["starts"]), list(document["ends"]),
        list(document["label_x"]), list(document["label_y"]),
        list(document["label_z"]), _load_stats(document, "dual-i"))


def _load_dual_ii(document) -> DualIIIndex:
    from repro.core.tlc_searchtree import TLCSearchTree

    tree_doc = document["tree"]
    tree = TLCSearchTree(
        row_ys=[int(y) for y in tree_doc["row_ys"]],
        rows=[[int(tail) for tail in row] for row in tree_doc["rows"]])
    return _LoadedDualIIIndex(
        _load_components(document), tree,
        list(document["starts"]), list(document["ends"]),
        _load_stats(document, "dual-ii"))


_LOADERS = {
    "repro-dual-i": _load_dual_i,
    "repro-dual-ii": _load_dual_ii,
}


def load_index_document(document, origin: str = "<document>"):
    """Restore an index from an already-parsed serialised document.

    ``origin`` names the transport the document came from (a file
    path, a shared-memory segment name) for error messages.

    Raises
    ------
    CorruptIndexError
        On a failed content checksum or a structurally broken document.
    IndexBuildError
        On wrong format markers or unsupported versions (a well-formed
        document this code simply does not speak).
    """
    loader = None
    if isinstance(document, dict):
        loader = _LOADERS.get(document.get("format"))
    if loader is None:
        raise IndexBuildError(
            f"{origin}: not a repro dual-index document "
            f"(expected one of {sorted(_LOADERS)})")
    if document.get("version") != FORMAT_VERSION:
        raise IndexBuildError(
            f"{origin}: unsupported format version "
            f"{document.get('version')!r} (expected {FORMAT_VERSION})")
    # Documents written before the checksum field existed stay loadable;
    # once one is present it must verify.
    recorded = document.get("checksum")
    if recorded is not None and recorded != _content_checksum(document):
        raise CorruptIndexError(
            f"{origin}: content checksum mismatch — the document is "
            f"corrupt (recorded {recorded!r})")
    try:
        return loader(document)
    except (KeyError, TypeError, ValueError) as exc:
        raise CorruptIndexError(
            f"{origin}: malformed index document ({exc})") from exc


def loads_index(data: bytes | str, origin: str = "<memory>"):
    """Restore an index from serialised JSON bytes (or text).

    The byte-level counterpart of :func:`load_dual_index`, shared by
    the shared-memory attach path: same dispatch, same checksum
    verification, same error taxonomy.
    """
    try:
        if isinstance(data, bytes):
            data = data.decode("utf-8")
        document = json.loads(data)
    except json.JSONDecodeError as exc:
        raise CorruptIndexError(
            f"{origin}: not valid JSON ({exc})") from exc
    except UnicodeDecodeError as exc:
        raise CorruptIndexError(
            f"{origin}: not UTF-8 text ({exc})") from exc
    return load_index_document(document, origin)


def load_dual_index(path: PathLike):
    """Load an index previously written by :func:`save_dual_index`.

    Dispatches on the document's scheme tag, so both Dual-I and Dual-II
    files load transparently (including pre-tag Dual-I documents).

    Raises
    ------
    CorruptIndexError
        When the file is not valid JSON, fails its content checksum,
        or is structurally broken — i.e. the bytes on disk are damaged.
    IndexBuildError
        On wrong format markers or unsupported versions (a well-formed
        file this code simply does not speak).
    """
    return loads_index(Path(path).read_bytes(), origin=str(path))
