"""Index serialisation: persist a built Dual-I index and reload it.

Labeling a massive graph is the expensive step; applications want to do
it once and ship the labels.  This module round-trips a
:class:`DualIIndex` through a single JSON document (human-inspectable
and dependency-free; the TLC matrix is stored as nested lists, which is
acceptable because it holds at most ``(t+1)²`` small integers for
``t ≪ n``).

Node names must be JSON-representable scalars (str/int/float/bool);
other hashables would not survive the round trip and are rejected at
save time.

Only Dual-I is serialised: it is the scheme whose query structures are
plain arrays.  Dual-II/dual-rt rebuilds are equally cheap from the same
graph, so persisting them adds format surface without saving work.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.base import IndexStats
from repro.core.dual_i import DualIIndex
from repro.exceptions import IndexBuildError

__all__ = ["save_dual_index", "load_dual_index", "FORMAT_VERSION"]

FORMAT_VERSION = 1

PathLike = Union[str, Path]

_SCALAR_TYPES = (str, int, float, bool)


def save_dual_index(index: DualIIndex, path: PathLike) -> None:
    """Write ``index`` to ``path`` as JSON.

    Raises
    ------
    IndexBuildError
        If any indexed node is not a JSON scalar.
    """
    if not isinstance(index, DualIIndex):
        raise IndexBuildError(
            f"only Dual-I indexes are serialisable, got "
            f"{type(index).__name__}")
    component_items = []
    for node, cid in index._component_of.items():
        if not isinstance(node, _SCALAR_TYPES):
            raise IndexBuildError(
                f"node {node!r} ({type(node).__name__}) is not "
                "JSON-serialisable; rename nodes to str/int first")
        # Tag the node's type so int 1 and str "1" survive distinctly.
        tag = "s" if isinstance(node, str) else "o"
        component_items.append([tag, node, cid])

    stats = index.stats()
    document = {
        "format": "repro-dual-i",
        "version": FORMAT_VERSION,
        "components": component_items,
        "starts": index._starts,
        "ends": index._ends,
        "label_x": index._label_x,
        "label_y": index._label_y,
        "label_z": index._label_z,
        "tlc": {
            "xs": list(index.tlc_matrix.xs),
            "ys": list(index.tlc_matrix.ys),
            # Works for every matrix backend: the plain array exposes
            # .matrix, the packed variants expose to_rows().
            "matrix": (index.tlc_matrix.matrix.tolist()
                       if hasattr(index.tlc_matrix, "matrix")
                       else index.tlc_matrix.to_rows()),
        },
        "stats": {
            "num_nodes": stats.num_nodes,
            "num_edges": stats.num_edges,
            "dag_nodes": stats.dag_nodes,
            "dag_edges": stats.dag_edges,
            "meg_edges": stats.meg_edges,
            "t": stats.t,
            "transitive_links": stats.transitive_links,
            "space_bytes": stats.space_bytes,
        },
    }
    Path(path).write_text(json.dumps(document), encoding="utf-8")


class _LoadedDualIndex(DualIIndex):
    """A Dual-I index restored from disk (no pipeline artefacts)."""

    def __init__(self, component_of, tlc, starts, ends,
                 label_x, label_y, label_z, stats) -> None:
        # Deliberately skip DualIIndex.__init__: there is no pipeline.
        self._pipeline = None
        self._component_of = component_of
        self._tlc = tlc
        self._starts = starts
        self._ends = ends
        self._label_x = label_x
        self._label_y = label_y
        self._label_z = label_z
        self._matrix_rows = tlc.matrix.tolist()
        self._stats = stats

    @property
    def pipeline(self):
        raise IndexBuildError(
            "a deserialised index carries no pipeline artefacts")

    @property
    def t(self) -> int:
        return self._stats.t or 0


def load_dual_index(path: PathLike) -> DualIIndex:
    """Load an index previously written by :func:`save_dual_index`.

    Raises
    ------
    IndexBuildError
        On wrong format markers or structurally invalid documents.
    """
    from repro.core.tlc_matrix import TLCMatrix

    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise IndexBuildError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(document, dict) or \
            document.get("format") != "repro-dual-i":
        raise IndexBuildError(f"{path}: not a repro-dual-i document")
    if document.get("version") != FORMAT_VERSION:
        raise IndexBuildError(
            f"{path}: unsupported format version "
            f"{document.get('version')!r} (expected {FORMAT_VERSION})")

    try:
        component_of = {}
        for tag, node, cid in document["components"]:
            component_of[str(node) if tag == "s" else node] = cid
        tlc_doc = document["tlc"]
        matrix = np.asarray(tlc_doc["matrix"], dtype=np.int64)
        if matrix.ndim != 2:
            matrix = matrix.reshape(
                len(tlc_doc["xs"]) + 1, len(tlc_doc["ys"]) + 1)
        tlc = TLCMatrix(tuple(tlc_doc["xs"]), tuple(tlc_doc["ys"]),
                        matrix)
        stats_doc = document["stats"]
        stats = IndexStats(
            scheme="dual-i",
            num_nodes=stats_doc["num_nodes"],
            num_edges=stats_doc["num_edges"],
            dag_nodes=stats_doc["dag_nodes"],
            dag_edges=stats_doc["dag_edges"],
            meg_edges=stats_doc.get("meg_edges"),
            t=stats_doc.get("t"),
            transitive_links=stats_doc.get("transitive_links"),
            space_bytes=dict(stats_doc.get("space_bytes", {})),
        )
        return _LoadedDualIndex(
            component_of, tlc,
            list(document["starts"]), list(document["ends"]),
            list(document["label_x"]), list(document["label_y"]),
            list(document["label_z"]), stats)
    except (KeyError, TypeError, ValueError) as exc:
        raise IndexBuildError(
            f"{path}: malformed index document ({exc})") from exc
