"""Index validation: cross-check any index against ground truth.

Correctness tooling exposed to end users (and to the test suite's
integration layer): given a built index and the graph it claims to
cover, compare its answers with online BFS on an exhaustive or sampled
set of pairs, and report every disagreement.

``repro-reach validate GRAPH --scheme dual-i`` drives this from the
command line — the "trust but verify" button for anyone adapting the
library to their own data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.base import ReachabilityIndex
from repro.graph.digraph import DiGraph, Node
from repro.graph.traversal import is_reachable_search

__all__ = ["ValidationReport", "validate_index"]


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of one validation run."""

    scheme: str
    num_checked: int
    exhaustive: bool
    mismatches: list[tuple[Node, Node, bool, bool]] = field(
        default_factory=list)

    @property
    def ok(self) -> bool:
        """``True`` iff every checked pair agreed."""
        return not self.mismatches

    def summary(self) -> str:
        """One-line human-readable verdict."""
        mode = "exhaustive" if self.exhaustive else "sampled"
        if self.ok:
            return (f"{self.scheme}: OK — {self.num_checked} {mode} "
                    f"pairs agree with BFS ground truth")
        return (f"{self.scheme}: FAILED — {len(self.mismatches)} of "
                f"{self.num_checked} {mode} pairs disagree "
                f"(first: {self.mismatches[0]})")


def validate_index(index: ReachabilityIndex, graph: DiGraph,
                   sample: int | None = None,
                   seed: int = 0,
                   max_mismatches: int = 20) -> ValidationReport:
    """Compare ``index`` with BFS ground truth over ``graph``.

    Parameters
    ----------
    index: a built reachability index.
    graph: the graph the index was built from.
    sample: check this many random pairs; ``None`` (default) checks all
        ``n²`` pairs when ``n <= 300`` and falls back to 100,000 samples
        on larger graphs.
    seed: RNG seed for sampled mode.
    max_mismatches: stop collecting after this many disagreements (the
        report still counts every checked pair).

    Each mismatch is recorded as ``(u, v, index_answer, truth)``.
    """
    nodes = list(graph.nodes())
    n = len(nodes)
    exhaustive = sample is None and n <= 300
    if exhaustive:
        pairs = ((u, v) for u in nodes for v in nodes)
        num_planned = n * n
    else:
        count = sample if sample is not None else 100_000
        rng = random.Random(seed)
        pairs = ((nodes[rng.randrange(n)], nodes[rng.randrange(n)])
                 for _ in range(count)) if n else iter(())
        num_planned = count if n else 0

    mismatches: list[tuple[Node, Node, bool, bool]] = []
    checked = 0
    for u, v in pairs:
        truth = is_reachable_search(graph, u, v)
        answer = index.reachable(u, v)
        checked += 1
        if answer != truth and len(mismatches) < max_mismatches:
            mismatches.append((u, v, answer, truth))
    del num_planned
    scheme = getattr(index, "scheme_name", type(index).__name__)
    return ValidationReport(scheme=scheme, num_checked=checked,
                            exhaustive=exhaustive, mismatches=mismatches)
