"""Common reachability-index API, statistics, and the scheme registry.

Every index in this package — Dual-I, Dual-II, the interval and 2-hop
baselines, the transitive-closure matrix, and the online search —
implements the same small surface:

* ``Index.build(graph, **options)`` — classmethod constructor; accepts any
  directed graph (cyclic inputs are condensed internally);
* ``index.reachable(u, v)`` — the reachability test on *original* nodes;
* ``index.stats()`` — an :class:`IndexStats` with build timings and a
  logical space breakdown.

Space accounting convention
---------------------------
The paper reports label sizes of a C++ implementation.  To make our
Figures 12/14 comparable in *shape*, :class:`IndexStats` counts logical
bytes — 4 bytes per stored integer label component and the native byte
size of matrix/array payloads — rather than Python object overhead, which
would drown every scheme in interpreter constants.  The convention is
applied uniformly across schemes, so relative comparisons are fair.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, ClassVar, Mapping, Sequence, Type

import numpy as np

from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph, Node

__all__ = [
    "INT_BYTES",
    "IndexStats",
    "LabelArrays",
    "ReachabilityIndex",
    "register_scheme",
    "available_schemes",
    "get_scheme",
    "build_index",
]

#: Logical size of one stored integer label component (see module docs).
INT_BYTES = 4


@dataclass
class IndexStats:
    """Build-time and space statistics of a reachability index.

    Attributes
    ----------
    scheme:
        Registry name of the scheme.
    num_nodes / num_edges:
        Size of the *original* input graph.
    dag_nodes / dag_edges:
        Size after SCC condensation (equal to the input for DAGs).
    meg_edges:
        Edge count after minimal-equivalent-graph reduction; ``None`` when
        MEG was not run.
    t:
        Number of retained non-tree edges (dual schemes only).
    transitive_links:
        Size of the transitive link table (dual schemes only).
    build_seconds:
        Total wall-clock build time.
    phase_seconds:
        Per-phase timings (condense, meg, spanning, labeling, ...).
    space_bytes:
        Logical space per component (see module docstring).
    """

    scheme: str
    num_nodes: int
    num_edges: int
    dag_nodes: int
    dag_edges: int
    meg_edges: int | None = None
    t: int | None = None
    transitive_links: int | None = None
    build_seconds: float = 0.0
    phase_seconds: dict[str, float] = field(default_factory=dict)
    space_bytes: dict[str, int] = field(default_factory=dict)

    @property
    def total_space_bytes(self) -> int:
        """Sum of all space components."""
        return sum(self.space_bytes.values())

    def as_dict(self) -> dict[str, Any]:
        """Flat dictionary view for CSV/markdown reporting."""
        row: dict[str, Any] = {
            "scheme": self.scheme,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "dag_nodes": self.dag_nodes,
            "dag_edges": self.dag_edges,
            "meg_edges": self.meg_edges,
            "t": self.t,
            "transitive_links": self.transitive_links,
            "build_seconds": self.build_seconds,
            "total_space_bytes": self.total_space_bytes,
        }
        for phase, seconds in self.phase_seconds.items():
            row[f"seconds_{phase}"] = seconds
        for component, nbytes in self.space_bytes.items():
            row[f"bytes_{component}"] = nbytes
        return row


class LabelArrays(abc.ABC):
    """Public vectorised view of an index's label arrays.

    A kernel answers reachability for whole *vectors* of dense component
    ids in one shot — the batch counterpart of
    :meth:`ReachabilityIndex.reachable`.  Schemes whose labels live in
    dense per-component arrays (Dual-I's intervals + TLC matrix, Dual-II's
    intervals + search tree, the closure bit matrix, interval sets) expose
    one via :meth:`ReachabilityIndex.label_arrays`; schemes with no dense
    representation return ``None`` and callers fall back to the scalar
    loop.

    Subclasses implement :meth:`query_components`; the node-level helpers
    (:meth:`components_of`, :meth:`query_pairs`) are shared.  ``u == v``
    and same-component pairs must answer ``True`` (reflexive reachability,
    matching the scalar convention).
    """

    def __init__(self, component_of: Mapping[Node, int]) -> None:
        #: Mapping from original nodes to the dense ids the arrays are
        #: indexed by (SCC component ids for condensation-based schemes).
        self.component_of = component_of
        # Lazily-built dense int lookup (``False`` = not attempted yet).
        self._dense_lookup: np.ndarray | None | bool = False
        # True when the lookup table has no holes, so mapped ids never
        # need the per-element missing check.
        self._lookup_complete = False

    # -- abstract kernel ------------------------------------------------
    @abc.abstractmethod
    def query_components(self, cu: np.ndarray,
                         cv: np.ndarray) -> np.ndarray:
        """Boolean reachability for aligned component-id vectors."""

    # -- shared node-level helpers --------------------------------------
    def _build_dense_lookup(self) -> np.ndarray | None:
        """Dense ``node id -> component id`` table for int node spaces.

        Generated graphs label nodes ``0..n-1``; for those the per-node
        dict probe is the batch bottleneck, so we flatten the mapping
        into one gather.  Non-int or very sparse node ids keep the dict.
        """
        mapping = self.component_of
        if not mapping:
            return None
        max_key = -1
        for node in mapping:
            if not isinstance(node, int) or isinstance(node, bool) \
                    or node < 0:
                return None
            if node > max_key:
                max_key = node
        if max_key >= 4 * len(mapping) + 1024:
            return None
        lookup = np.full(max_key + 1, -1, dtype=np.int64)
        for node, cid in mapping.items():
            lookup[node] = cid
        self._lookup_complete = bool((lookup >= 0).all())
        return lookup

    def _map_dense(self, arr: np.ndarray, node_at) -> np.ndarray:
        """Gather component ids through the dense lookup table.

        ``node_at(i)`` recovers the offending original node for the
        :class:`QueryError` message; bounds are validated with two scalar
        reductions so the happy path never materialises boolean masks.
        """
        lookup = self._dense_lookup
        size = lookup.shape[0]
        if arr.size:
            if int(arr.min()) < 0 or int(arr.max()) >= size:
                bad = (arr < 0) | (arr >= size)
                raise QueryError(node_at(int(np.argmax(bad))))
        cids = lookup[arr]
        if not self._lookup_complete and cids.size \
                and int(cids.min()) < 0:
            raise QueryError(node_at(int(np.argmax(cids < 0))))
        return cids

    def dense_lookup(self) -> np.ndarray | None:
        """The ``node id -> component id`` gather table, or ``None``.

        Public face of the lazily-built dense map: ``None`` when the
        node space is not small non-negative integers (the dict path
        stays authoritative there).  Entries are ``-1`` for uncovered
        ids unless :attr:`lookup_complete`.  This is the table the
        buffer-reusing :class:`~repro.core.fastkernel.FastKernel` (and
        through it the binary wire protocol) gathers through, so u32
        node ids on the wire resolve without any per-node Python.
        """
        if self._dense_lookup is False:
            self._dense_lookup = self._build_dense_lookup()
        return self._dense_lookup

    @property
    def lookup_complete(self) -> bool:
        """Whether :meth:`dense_lookup` has no ``-1`` holes (valid only
        after the lookup has been built)."""
        return self._lookup_complete

    def components_of(self, nodes: Sequence[Node]) -> np.ndarray:
        """Map original nodes to dense component ids (vector form).

        Raises
        ------
        QueryError
            On the first node the index does not cover.
        """
        if not isinstance(nodes, list):
            nodes = list(nodes)
        if not nodes:
            return np.zeros(0, dtype=np.int64)
        if self._dense_lookup is False:
            self._dense_lookup = self._build_dense_lookup()
        if self._dense_lookup is not None:
            arr = np.asarray(nodes)
            # Integer dtype only: float/object columns (mixed or unknown
            # node types) resolve through the dict so e.g. 2.5 raises
            # QueryError instead of silently truncating to node 2.
            if arr.ndim == 1 and arr.dtype.kind in "iu":
                return self._map_dense(arr, lambda i: nodes[i])
        component_of = self.component_of
        out = np.empty(len(nodes), dtype=np.int64)
        node = None
        try:
            for i, node in enumerate(nodes):
                out[i] = component_of[node]
        except KeyError:
            raise QueryError(node) from None
        return out

    def pair_components(self, pairs: Sequence[tuple[Node, Node]]
                        ) -> tuple[np.ndarray, np.ndarray]:
        """``(cu, cv)`` component-id vectors for a pair list.

        The batch hot path: one column extraction per side, validated by
        two scalar bounds reductions — the Python → numpy conversion is
        the dominant cost of a served batch on fast kernels.
        """
        if not isinstance(pairs, list):
            pairs = list(pairs)
        if not pairs:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        return (self.components_of([u for u, _ in pairs]),
                self.components_of([v for _, v in pairs]))

    def query_pairs(self, pairs: Sequence[tuple[Node, Node]]) -> np.ndarray:
        """Boolean answers for a list of (source, target) node pairs."""
        if not isinstance(pairs, list):
            pairs = list(pairs)
        if not pairs:
            return np.zeros(0, dtype=bool)
        cu, cv = self.pair_components(pairs)
        return self.query_components(cu, cv)


class ReachabilityIndex(abc.ABC):
    """Abstract base class of every reachability index."""

    #: Registry name; subclasses must override.
    scheme_name: ClassVar[str] = ""

    @classmethod
    @abc.abstractmethod
    def build(cls, graph: DiGraph, **options: Any) -> "ReachabilityIndex":
        """Construct the index for ``graph`` (cyclic inputs allowed)."""

    @abc.abstractmethod
    def reachable(self, u: Node, v: Node) -> bool:
        """``True`` iff a (possibly empty) path leads from ``u`` to ``v``.

        Raises
        ------
        QueryError
            If either vertex was not part of the indexed graph.
        """

    @abc.abstractmethod
    def stats(self) -> IndexStats:
        """Build/space statistics (see :class:`IndexStats`)."""

    # Convenience shared by all implementations -------------------------
    def label_arrays(self) -> LabelArrays | None:
        """Vectorised query kernel over this index's label arrays.

        Returns ``None`` when the scheme has no dense-array
        representation (per-node search structures, online search);
        callers then fall back to the scalar :meth:`reachable` loop.
        Implementations cache the kernel, so repeated calls are cheap.
        """
        return None

    def reachable_many(self,
                       pairs: list[tuple[Node, Node]]) -> list[bool]:
        """Vector form of :meth:`reachable`.

        Routes through :meth:`label_arrays` when the scheme exposes a
        vectorised kernel, otherwise loops over :meth:`reachable`.
        Either way, answers are exactly those of the scalar method.
        """
        arrays = self.label_arrays()
        if arrays is not None:
            return arrays.query_pairs(pairs).tolist()
        reach = self.reachable
        return [reach(u, v) for u, v in pairs]

    def __contains__(self, node: Node) -> bool:
        """``True`` iff queries about ``node`` are answerable.

        Subclasses with a node map get this for free by defining
        ``_covers(node)``; the default delegates to a probe query.
        """
        try:
            self.reachable(node, node)
        except QueryError:
            return False
        return True


_REGISTRY: dict[str, Type[ReachabilityIndex]] = {}


def register_scheme(cls: Type[ReachabilityIndex]) -> Type[ReachabilityIndex]:
    """Class decorator: add an index class to the scheme registry."""
    name = cls.scheme_name
    if not name:
        raise ValueError(f"{cls.__name__} must define scheme_name")
    if name in _REGISTRY:
        raise ValueError(f"scheme {name!r} is already registered")
    _REGISTRY[name] = cls
    return cls


def available_schemes() -> list[str]:
    """Names of all registered schemes, sorted."""
    return sorted(_REGISTRY)


def get_scheme(name: str) -> Type[ReachabilityIndex]:
    """Look up a scheme class by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown scheme {name!r}; available: {known}") from None


def build_index(graph: DiGraph, scheme: str = "dual-i",
                **options: Any) -> ReachabilityIndex:
    """Build a reachability index for ``graph`` using ``scheme``.

    The one-stop entry point of the library:

    >>> from repro.graph import gnm_random_digraph
    >>> g = gnm_random_digraph(50, 75, seed=1)
    >>> idx = build_index(g, scheme="dual-i")
    >>> idx.reachable(0, 0)
    True
    """
    return get_scheme(scheme).build(graph, **options)
