"""Common reachability-index API, statistics, and the scheme registry.

Every index in this package — Dual-I, Dual-II, the interval and 2-hop
baselines, the transitive-closure matrix, and the online search —
implements the same small surface:

* ``Index.build(graph, **options)`` — classmethod constructor; accepts any
  directed graph (cyclic inputs are condensed internally);
* ``index.reachable(u, v)`` — the reachability test on *original* nodes;
* ``index.stats()`` — an :class:`IndexStats` with build timings and a
  logical space breakdown.

Space accounting convention
---------------------------
The paper reports label sizes of a C++ implementation.  To make our
Figures 12/14 comparable in *shape*, :class:`IndexStats` counts logical
bytes — 4 bytes per stored integer label component and the native byte
size of matrix/array payloads — rather than Python object overhead, which
would drown every scheme in interpreter constants.  The convention is
applied uniformly across schemes, so relative comparisons are fair.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, ClassVar, Type

from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph, Node

__all__ = [
    "INT_BYTES",
    "IndexStats",
    "ReachabilityIndex",
    "register_scheme",
    "available_schemes",
    "get_scheme",
    "build_index",
]

#: Logical size of one stored integer label component (see module docs).
INT_BYTES = 4


@dataclass
class IndexStats:
    """Build-time and space statistics of a reachability index.

    Attributes
    ----------
    scheme:
        Registry name of the scheme.
    num_nodes / num_edges:
        Size of the *original* input graph.
    dag_nodes / dag_edges:
        Size after SCC condensation (equal to the input for DAGs).
    meg_edges:
        Edge count after minimal-equivalent-graph reduction; ``None`` when
        MEG was not run.
    t:
        Number of retained non-tree edges (dual schemes only).
    transitive_links:
        Size of the transitive link table (dual schemes only).
    build_seconds:
        Total wall-clock build time.
    phase_seconds:
        Per-phase timings (condense, meg, spanning, labeling, ...).
    space_bytes:
        Logical space per component (see module docstring).
    """

    scheme: str
    num_nodes: int
    num_edges: int
    dag_nodes: int
    dag_edges: int
    meg_edges: int | None = None
    t: int | None = None
    transitive_links: int | None = None
    build_seconds: float = 0.0
    phase_seconds: dict[str, float] = field(default_factory=dict)
    space_bytes: dict[str, int] = field(default_factory=dict)

    @property
    def total_space_bytes(self) -> int:
        """Sum of all space components."""
        return sum(self.space_bytes.values())

    def as_dict(self) -> dict[str, Any]:
        """Flat dictionary view for CSV/markdown reporting."""
        row: dict[str, Any] = {
            "scheme": self.scheme,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "dag_nodes": self.dag_nodes,
            "dag_edges": self.dag_edges,
            "meg_edges": self.meg_edges,
            "t": self.t,
            "transitive_links": self.transitive_links,
            "build_seconds": self.build_seconds,
            "total_space_bytes": self.total_space_bytes,
        }
        for phase, seconds in self.phase_seconds.items():
            row[f"seconds_{phase}"] = seconds
        for component, nbytes in self.space_bytes.items():
            row[f"bytes_{component}"] = nbytes
        return row


class ReachabilityIndex(abc.ABC):
    """Abstract base class of every reachability index."""

    #: Registry name; subclasses must override.
    scheme_name: ClassVar[str] = ""

    @classmethod
    @abc.abstractmethod
    def build(cls, graph: DiGraph, **options: Any) -> "ReachabilityIndex":
        """Construct the index for ``graph`` (cyclic inputs allowed)."""

    @abc.abstractmethod
    def reachable(self, u: Node, v: Node) -> bool:
        """``True`` iff a (possibly empty) path leads from ``u`` to ``v``.

        Raises
        ------
        QueryError
            If either vertex was not part of the indexed graph.
        """

    @abc.abstractmethod
    def stats(self) -> IndexStats:
        """Build/space statistics (see :class:`IndexStats`)."""

    # Convenience shared by all implementations -------------------------
    def reachable_many(self,
                       pairs: list[tuple[Node, Node]]) -> list[bool]:
        """Vector form of :meth:`reachable` (loop by default)."""
        reach = self.reachable
        return [reach(u, v) for u, v in pairs]

    def __contains__(self, node: Node) -> bool:
        """``True`` iff queries about ``node`` are answerable.

        Subclasses with a node map get this for free by defining
        ``_covers(node)``; the default delegates to a probe query.
        """
        try:
            self.reachable(node, node)
        except QueryError:
            return False
        return True


_REGISTRY: dict[str, Type[ReachabilityIndex]] = {}


def register_scheme(cls: Type[ReachabilityIndex]) -> Type[ReachabilityIndex]:
    """Class decorator: add an index class to the scheme registry."""
    name = cls.scheme_name
    if not name:
        raise ValueError(f"{cls.__name__} must define scheme_name")
    if name in _REGISTRY:
        raise ValueError(f"scheme {name!r} is already registered")
    _REGISTRY[name] = cls
    return cls


def available_schemes() -> list[str]:
    """Names of all registered schemes, sorted."""
    return sorted(_REGISTRY)


def get_scheme(name: str) -> Type[ReachabilityIndex]:
    """Look up a scheme class by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown scheme {name!r}; available: {known}") from None


def build_index(graph: DiGraph, scheme: str = "dual-i",
                **options: Any) -> ReachabilityIndex:
    """Build a reachability index for ``graph`` using ``scheme``.

    The one-stop entry point of the library:

    >>> from repro.graph import gnm_random_digraph
    >>> g = gnm_random_digraph(50, 75, seed=1)
    >>> idx = build_index(g, scheme="dual-i")
    >>> idx.reachable(0, 0)
    True
    """
    return get_scheme(scheme).build(graph, **options)
