"""Interval labels over a spanning forest — paper Section 3.1.

Each node ``u`` gets a half-open interval ``[start, end)`` where ``start``
is ``u``'s preorder rank in the depth-first traversal of the forest and
``end - 1`` is its postorder rank, numbered so that

    ``v`` is a forest descendant of ``u``  ⇔  ``start(v) ∈ [start(u), end(u))``

The numbering scheme is the classic single-counter DFS clock: the counter
increments on every *enter*, and ``end(u)`` is the counter value after
``u``'s whole subtree has been entered.  Intervals of a node's subtree are
therefore exactly the ``start`` values nested inside its own interval, and
sibling/foreign subtrees occupy disjoint intervals — this holds across the
separate trees of a forest too, because one global counter numbers them
all.

Queries on tree reachability are a constant-time containment check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.graph.digraph import Node
from repro.graph.spanning import SpanningForest

__all__ = ["Interval", "IntervalLabeling", "assign_intervals",
           "labeling_from_arrays"]


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open interval label ``[start, end)``."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start >= self.end:
            raise ValueError(
                f"interval must be non-empty: [{self.start}, {self.end})")

    def __contains__(self, point: int) -> bool:
        return self.start <= point < self.end

    def contains_interval(self, other: "Interval") -> bool:
        """``True`` iff ``other`` is nested inside (or equal to) this
        interval — i.e. the other node is a descendant."""
        return self.start <= other.start and other.end <= self.end

    @property
    def width(self) -> int:
        """Subtree size of the labeled node."""
        return self.end - self.start

    def __repr__(self) -> str:
        return f"[{self.start},{self.end})"


@dataclass(frozen=True)
class IntervalLabeling:
    """Interval labels for every node of a spanning forest.

    Attributes
    ----------
    interval:
        Maps each node to its :class:`Interval`.
    node_at_start:
        Inverse map from a ``start`` value to its node (used by the link
        table and by diagnostics).
    """

    interval: dict[Node, Interval]
    node_at_start: dict[int, Node]

    def __len__(self) -> int:
        return len(self.interval)

    def start(self, node: Node) -> int:
        """``start`` label of ``node``."""
        return self.interval[node].start

    def end(self, node: Node) -> int:
        """``end`` label of ``node``."""
        return self.interval[node].end

    def is_tree_ancestor(self, u: Node, v: Node) -> bool:
        """Constant-time forest ancestorship test (reflexive)."""
        iu = self.interval[u]
        return iu.start <= self.interval[v].start < iu.end


def assign_intervals(forest: SpanningForest) -> IntervalLabeling:
    """Assign DFS-clock interval labels to every node of ``forest``.

    Children are visited in the order recorded by
    :func:`repro.graph.spanning.spanning_forest`, and roots in forest
    order, so labels are deterministic.  Runs in ``O(n)``.
    """
    interval: dict[Node, Interval] = {}
    node_at_start: dict[int, Node] = {}
    clock = 0
    for root in forest.roots:
        # Iterative DFS over tree children only; each frame is
        # (node, next-child-index).
        start_of: dict[Node, int] = {}
        stack: list[tuple[Node, int]] = [(root, 0)]
        start_of[root] = clock
        node_at_start[clock] = root
        clock += 1
        while stack:
            node, child_idx = stack[-1]
            kids = forest.children[node]
            if child_idx < len(kids):
                stack[-1] = (node, child_idx + 1)
                child = kids[child_idx]
                start_of[child] = clock
                node_at_start[clock] = child
                clock += 1
                stack.append((child, 0))
            else:
                stack.pop()
                interval[node] = Interval(start_of[node], clock)
    return IntervalLabeling(interval=interval, node_at_start=node_at_start)


def labeling_from_arrays(nodes: Sequence[Node], starts: Sequence[int],
                         ends: Sequence[int]) -> IntervalLabeling:
    """Materialise an :class:`IntervalLabeling` from parallel label arrays.

    ``starts[i]`` / ``ends[i]`` are the interval of ``nodes[i]``.  The
    fast construction backend computes the labels as flat arrays during
    its spanning DFS (:class:`repro.graph.spanning.CSRForest`) and calls
    this only when the dict-of-:class:`Interval` artefact is actually
    requested; the result equals what :func:`assign_intervals` produces
    on the matching forest.
    """
    interval = {node: Interval(starts[i], ends[i])
                for i, node in enumerate(nodes)}
    node_at_start = {starts[i]: node for i, node in enumerate(nodes)}
    return IntervalLabeling(interval=interval, node_at_start=node_at_start)
