"""Shared-memory publication of built indexes (multi-worker serving).

The dual-labeling arrays are immutable once built, so a machine-local
worker fleet never needs one copy per process: the parent publishes the
index into one ``multiprocessing.shared_memory`` segment and every
worker attaches read-only.  The segment payload *is* the checksummed
:mod:`repro.core.serialize` document — the same bytes
:func:`~repro.core.serialize.save_dual_index` writes to disk — framed
by a tiny fixed header::

    offset  size  field
    0       8     magic ``b"RPROSHM1"``
    8       8     payload length, unsigned little-endian
    16      n     the serialised index document (UTF-8 JSON)

so the attach path reuses the exact validation stack of the file
loader: bad magic, a length that overruns the segment, undecodable
JSON, or a failed sha256 content checksum all raise the typed
:class:`~repro.exceptions.CorruptIndexError` — a worker can never
answer queries from garbage memory.

Lifecycle: the *publisher* owns the segment and must
:meth:`~PublishedIndex.unlink` it (the fleet does this when a new
generation replaces an old one, and for every live generation at
shutdown).  *Attachers* copy-parse the payload and detach before
returning, so a worker holds no mapping afterwards and a SIGKILL'd
worker cannot leak anything — the segment belongs to the parent
either way.  Segment names carry the :data:`SEGMENT_PREFIX` so leak
checks can scan ``/dev/shm`` for strays (:func:`list_segments`).

On Python < 3.13 ``SharedMemory`` has no ``track`` parameter and
*attaching* registers the segment with the ``resource_tracker`` as if
the attacher owned it; without the :func:`_untrack` below, the tracker
would unlink a segment still serving other workers as soon as one
attacher exits, and would print spurious leak warnings for every
killed worker.
"""

from __future__ import annotations

import os
import secrets
import struct
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path

from repro.core.serialize import dumps_index, loads_index
from repro.exceptions import CorruptIndexError

__all__ = [
    "MAGIC",
    "SEGMENT_PREFIX",
    "PublishedIndex",
    "attach_index",
    "list_segments",
    "publish_index",
    "stale_segments",
    "sweep_stale_segments",
]

MAGIC = b"RPROSHM1"

#: Every repro segment name starts with this, so tests and CI can scan
#: ``/dev/shm`` for leaked segments without touching anyone else's.
SEGMENT_PREFIX = "repro-idx-"

_HEADER = struct.Struct("<8sQ")


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Withdraw ``shm`` from the resource tracker (see module doc)."""
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals moved
        pass


class PublishedIndex:
    """Owner-side handle of one published index segment.

    ``name`` is what workers pass to :func:`attach_index`.  The handle
    is a context manager; leaving the block unlinks the segment.
    """

    def __init__(self, shm: shared_memory.SharedMemory,
                 payload_bytes: int) -> None:
        self._shm = shm
        self.name = shm.name
        #: Total segment size (header + payload).
        self.size = shm.size
        #: Size of the serialised document alone.
        self.payload_bytes = payload_bytes
        self._unlinked = False

    def close(self) -> None:
        """Detach this process's mapping (the segment persists)."""
        try:
            self._shm.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def unlink(self) -> None:
        """Remove the segment; attached workers keep their copies."""
        if self._unlinked:
            return
        self._unlinked = True
        self.close()
        # An attacher sharing this process's resource tracker (a fleet
        # worker) withdrew the name via :func:`_untrack`; re-register —
        # an idempotent set add — so the unregister inside ``unlink``
        # finds the entry instead of logging a tracker KeyError.
        try:
            resource_tracker.register(self._shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals moved
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "PublishedIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.unlink()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PublishedIndex(name={self.name!r}, "
                f"payload_bytes={self.payload_bytes})")


def publish_index(index, *, name: str | None = None) -> PublishedIndex:
    """Serialise ``index`` into a fresh shared-memory segment.

    ``name`` defaults to ``repro-idx-<pid>-<nonce>``; the fleet passes
    explicit per-generation names (``...-g0``, ``...-g1``) so a swap is
    observable in ``/dev/shm``.

    Raises
    ------
    IndexBuildError
        If the index's scheme is not serialisable
        (see :func:`repro.core.serialize.index_document`).
    """
    payload = dumps_index(index)
    if name is None:
        name = f"{SEGMENT_PREFIX}{os.getpid()}-{secrets.token_hex(4)}"
    shm = shared_memory.SharedMemory(
        name=name, create=True, size=_HEADER.size + len(payload))
    shm.buf[:_HEADER.size] = _HEADER.pack(MAGIC, len(payload))
    shm.buf[_HEADER.size:_HEADER.size + len(payload)] = payload
    return PublishedIndex(shm, len(payload))


def attach_index(name: str):
    """Load the index published under segment ``name``.

    The payload is copy-parsed and the mapping detached before
    returning, so the caller holds no shared-memory resource — only
    the publisher ever unlinks.

    Raises
    ------
    FileNotFoundError
        When no segment of that name exists (already unlinked, or a
        worker raced a generation swap — callers retry with the
        current generation).
    CorruptIndexError
        On bad magic, a payload length overrunning the segment, or any
        damage the serialise-layer checksum catches.
    """
    shm = shared_memory.SharedMemory(name=name)
    _untrack(shm)
    try:
        if shm.size < _HEADER.size:
            raise CorruptIndexError(
                f"shm:{name}: segment of {shm.size} bytes is smaller "
                f"than the {_HEADER.size}-byte header")
        magic, length = _HEADER.unpack_from(shm.buf, 0)
        if magic != MAGIC:
            raise CorruptIndexError(
                f"shm:{name}: bad magic {magic!r} "
                f"(expected {MAGIC!r})")
        if length > shm.size - _HEADER.size:
            raise CorruptIndexError(
                f"shm:{name}: truncated segment — header promises "
                f"{length} payload bytes, only "
                f"{shm.size - _HEADER.size} present")
        payload = bytes(shm.buf[_HEADER.size:_HEADER.size + length])
    finally:
        shm.close()
    return loads_index(payload, origin=f"shm:{name}")


def list_segments(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Names of live repro segments (``/dev/shm`` scan, sorted).

    The leak check of the test suite and CI: after a clean fleet
    shutdown this must be empty.  Returns ``[]`` on platforms without
    a ``/dev/shm``.
    """
    root = Path("/dev/shm")
    if not root.is_dir():  # pragma: no cover - non-Linux
        return []
    return sorted(entry.name for entry in root.iterdir()
                  if entry.name.startswith(prefix))


def _owner_pid(name: str, prefix: str = SEGMENT_PREFIX) -> "int | None":
    """The publishing pid embedded in a default-shaped segment name.

    Default and fleet names look like ``repro-idx-<pid>-<nonce>[...]``;
    explicitly named segments (tests, tooling) need not carry a pid and
    return ``None`` — the sweep never touches those.
    """
    if not name.startswith(prefix):
        return None
    head = name[len(prefix):].split("-", 1)[0]
    return int(head) if head.isdigit() else None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user process
        return True
    return True


def _is_repro_segment(name: str) -> bool:
    """Whether segment ``name`` carries the publication magic.

    The guard before any sweep unlink: a name-prefix collision from an
    unrelated program must never be deleted on our behalf.
    """
    try:
        shm = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError):
        return False
    _untrack(shm)
    try:
        if shm.size < _HEADER.size:
            return False
        magic, _length = _HEADER.unpack_from(shm.buf, 0)
        return magic == MAGIC
    finally:
        shm.close()


def stale_segments(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Segments whose publishing process no longer exists.

    A segment is *stale* when its name embeds an owner pid that is no
    longer alive **and** its header carries the publication
    :data:`MAGIC` — the double check (pid liveness + magic) means a
    recycled pid or a foreign name-prefix collision is never flagged.
    Segments published under explicit non-pid names are skipped.
    """
    return [name for name in list_segments(prefix)
            if (pid := _owner_pid(name, prefix)) is not None
            and not _pid_alive(pid)
            and _is_repro_segment(name)]


def sweep_stale_segments(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Unlink segments leaked by a dead publisher; return their names.

    ``serve --workers`` only unlinks its generations on a clean
    shutdown — a SIGKILLed or OOM-killed parent leaves its segments
    behind in ``/dev/shm``.  The fleet runs this sweep at startup so
    one abnormal exit never turns into a permanent leak.  Only
    segments :func:`stale_segments` proves dead-owned are touched.
    """
    removed = []
    for name in stale_segments(prefix):
        try:
            shm = shared_memory.SharedMemory(name=name)
        except (FileNotFoundError, OSError):  # pragma: no cover - race
            continue
        _untrack(shm)
        try:
            shm.close()
            resource_tracker.register(shm._name, "shared_memory")
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - swept elsewhere
            continue
        except Exception:  # pragma: no cover - tracker internals moved
            continue
        removed.append(name)
    return removed
