"""Incremental dual labeling for evolving graphs (extension).

The 2006 paper labels a static graph; its natural follow-up question —
what happens when edges arrive — is what :class:`DynamicDualIndex`
answers.  The design exploits the dual-labeling decomposition:

* The *interval labels* depend only on the spanning forest.  An edge
  insertion whose endpoints already exist never has to change them:
  the new edge simply becomes one more **non-tree edge**.
* The non-tree side (link table → transitive link table → TLC matrix →
  non-tree labels) is ``O(t³)`` worst case but tiny for sparse graphs,
  so it is rebuilt from the recorded non-tree edge set on demand.

Consequently:

* ``add_edge(u, v)`` with known endpoints and no new cycle is an
  **incremental** update: amortised cost is one non-tree-side rebuild,
  never a full relabeling of the ``O(n)`` tree side.
* ``add_edge`` that closes a cycle, ``add_node`` + edges to it, and
  ``remove_edge`` invalidate the decomposition and schedule a **full**
  rebuild (lazily, at the next query).

Queries always reflect every mutation applied so far; rebuild accounting
is exposed via :attr:`full_rebuilds` / :attr:`incremental_updates` so
benchmarks can show the savings.
"""

from __future__ import annotations

from typing import Optional

from repro.core.dual_i import DualIIndex
from repro.core.linktable import build_link_table, transitive_link_table
from repro.core.nontree_labels import assign_nontree_labels
from repro.core.tlc_matrix import build_tlc_matrix
from repro.graph.digraph import DiGraph, Node

__all__ = ["DynamicDualIndex"]


class DynamicDualIndex:
    """A Dual-I index over a mutable graph, with incremental inserts."""

    def __init__(self, graph: Optional[DiGraph] = None,
                 use_meg: bool = True) -> None:
        """Wrap (a copy of) ``graph``; an empty graph if omitted.

        ``use_meg`` applies to *full* rebuilds; incrementally added
        edges are kept verbatim until the next full rebuild folds them
        through MEG again.
        """
        self._graph = graph.copy() if graph is not None else DiGraph()
        self._use_meg = use_meg
        self._index: Optional[DualIIndex] = None
        # Extra non-tree edges (DAG-node-id pairs) added since the last
        # full rebuild; folded into the link table on refresh.
        self._extra_links: list[tuple[int, int]] = []
        self._nontree_dirty = False
        self._full_dirty = True
        self.full_rebuilds = 0
        self.incremental_updates = 0

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DiGraph:
        """The current graph (read-only by convention)."""
        return self._graph

    def add_node(self, node: Node) -> None:
        """Insert a node; schedules a full rebuild if it is new."""
        if node not in self._graph:
            self._graph.add_node(node)
            self._full_dirty = True

    def add_edge(self, u: Node, v: Node) -> None:
        """Insert edge ``u -> v``.

        Incremental when both endpoints exist, the index is otherwise
        clean, and the edge does not merge SCCs (i.e. ``v`` does not
        already reach ``u``); full rebuild otherwise.
        """
        if self._graph.has_edge(u, v):
            return
        endpoints_known = u in self._graph and v in self._graph
        if not endpoints_known or self._full_dirty:
            self._graph.add_edge(u, v)
            self._full_dirty = True
            return
        # Cycle check against the *current* labels: if v reaches u, the
        # new edge collapses components and intervals must change.
        self._refresh()
        if self.reachable(v, u):
            self._graph.add_edge(u, v)
            self._full_dirty = True
            return
        self._graph.add_edge(u, v)
        cu = self._index._component_of[u]
        cv = self._index._component_of[v]
        if cu != cv:
            self._extra_links.append((cu, cv))
            self._nontree_dirty = True
            self.incremental_updates += 1

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove an edge; deletions always schedule a full rebuild
        (a removed tree edge invalidates the intervals, and a removed
        non-tree edge may have been MEG-pruned into others)."""
        self._graph.remove_edge(u, v)
        self._full_dirty = True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def reachable(self, u: Node, v: Node) -> bool:
        """Reachability on the graph as mutated so far."""
        self._refresh()
        return self._index.reachable(u, v)

    def stats(self):
        """Stats of the underlying index (refreshing first)."""
        self._refresh()
        return self._index.stats()

    # ------------------------------------------------------------------
    # rebuild machinery
    # ------------------------------------------------------------------
    def _refresh(self) -> None:
        if self._full_dirty or self._index is None:
            self._index = DualIIndex.build(self._graph,
                                           use_meg=self._use_meg)
            self._extra_links.clear()
            self._full_dirty = False
            self._nontree_dirty = False
            self.full_rebuilds += 1
            return
        if not self._nontree_dirty:
            return
        # Incremental path: keep condensation/forest/intervals, rebuild
        # only the non-tree side with the extra links appended.
        index = self._index
        pipeline = index.pipeline
        forest = pipeline.forest
        labeling = pipeline.labeling
        nontree_edges = list(forest.nontree_edges) + self._extra_links
        base = build_link_table(nontree_edges, labeling)
        closed = transitive_link_table(base)
        tlc = build_tlc_matrix(closed)
        nontree = assign_nontree_labels(forest, labeling, closed)
        num_components = pipeline.condensation.num_components
        label_x = [0] * num_components
        label_y = [0] * num_components
        label_z = [0] * num_components
        for cid in range(num_components):
            label_x[cid], label_y[cid], label_z[cid] = nontree[cid]
        index._tlc = tlc
        index._matrix_rows = tlc.matrix.tolist()
        index._label_x = label_x
        index._label_y = label_y
        index._label_z = label_z
        stats = index.stats()
        stats.t = len(base)
        stats.transitive_links = len(closed)
        stats.space_bytes["tlc_matrix"] = tlc.nbytes
        self._nontree_dirty = False

    def __contains__(self, node: Node) -> bool:
        return node in self._graph

    def __repr__(self) -> str:
        return (f"DynamicDualIndex(n={self._graph.num_nodes}, "
                f"m={self._graph.num_edges}, "
                f"full_rebuilds={self.full_rebuilds}, "
                f"incremental={self.incremental_updates})")
