"""The QueryService serving layer: batched, cached, sharded queries.

The paper's evaluation hammers each index with 100,000-query loops
(Section 6, Figures 8–14), and the applications it motivates — XML path
joins, ontology subsumption — fire reachability tests in bulk.
:class:`QueryService` is the uniform high-throughput front-end for that
traffic, over *any* registered scheme:

* **backend-agnostic batching** — batches route through the index's
  public :meth:`~repro.core.base.ReachabilityIndex.label_arrays` kernel
  when one exists (Dual-I, Dual-II, closure, interval) and fall back to
  the scalar ``reachable`` loop otherwise, so every scheme serves the
  same API at its best available speed;
* **sharded execution** — large batches split into chunks dispatched
  over a thread pool (``max_workers > 1``), keeping latency flat as
  batch sizes grow;
* **LRU result cache** — optional, keyed on *component-id* pairs, so
  every member of an SCC shares one cache entry and repeated traffic
  (hot join patterns, retried queries) short-circuits the kernel;
* **observability** — per-stage timers plus query/cache counters in
  :class:`ServiceMetrics`, renderable with
  :func:`repro.bench.reporting.format_kv_table` and surfaced by the
  ``python -m repro.bench serve`` CLI.

The service is thread-safe: the cache and metrics are guarded by a lock,
and the kernels themselves are read-only after construction.

>>> from repro.graph.generators import single_rooted_dag
>>> from repro.core.base import build_index
>>> service = QueryService(build_index(single_rooted_dag(50, 70, seed=1)))
>>> service.query_batch([(0, 7), (7, 0), (3, 3)])[2]
True
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Iterable, Sequence

import numpy as np

from repro.core.base import LabelArrays, ReachabilityIndex
from repro.graph.digraph import Node
from repro.obs.metrics import MetricsRegistry

__all__ = ["QueryService", "ServiceMetrics"]


class ServiceMetrics:
    """Counters and per-stage timers of a :class:`QueryService`,
    backed by a :class:`~repro.obs.metrics.MetricsRegistry`.

    The counters keep their historical read API (``metrics.queries``,
    ``metrics.cache_hit_rate``, :meth:`as_dict` with the same keys) but
    live in ``reach_service_*`` metric families, so the gateway's
    Prometheus exposition and the ``stats`` verb report the very same
    numbers, and :meth:`as_dict` with ``reset=True`` is an *atomic*
    read-and-zero per counter — an increment racing a reset lands
    either in the returned snapshot or in the fresh window, never
    nowhere.

    Counter semantics:

    queries / batches / positives:
        Totals since creation or the last reset.
    cache_hits / cache_misses:
        Result-cache traffic; both stay 0 with the cache disabled.
    kernel_queries / scalar_queries:
        How many queries were answered by the vectorised kernel versus
        the scalar fallback loop.
    stage_seconds:
        Wall-clock per pipeline stage: ``map`` (node → component ids),
        ``cache`` (lookup + fill), ``kernel`` (vectorised evaluation),
        ``scalar`` (fallback loop), ``total`` (whole batches).
    """

    _COUNTERS = ("queries", "batches", "positives", "cache_hits",
                 "cache_misses", "kernel_queries", "scalar_queries")

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        #: The backing registry — merged into the gateway's Prometheus
        #: exposition alongside the server-level families.
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self._counters = {
            name: self.registry.counter(
                f"reach_service_{name}_total",
                f"QueryService {name.replace('_', ' ')} total.")
            for name in self._COUNTERS}
        self._stages = self.registry.counter(
            "reach_service_stage_seconds_total",
            "QueryService wall-clock seconds per pipeline stage.",
            labels=("stage",))
        self._batch_seconds = self.registry.histogram(
            "reach_service_batch_seconds",
            "QueryService end-to-end batch evaluation latency.")
        self.started_at = time.monotonic()

    # -- write API (QueryService hot path) ------------------------------
    def observe_batch(self, queries: int, positives: int,
                      seconds: float) -> None:
        """Account one finished batch (queries, positives, total)."""
        self._counters["batches"].inc()
        self._counters["queries"].inc(queries)
        self._counters["positives"].inc(positives)
        self._stages.labels("total").inc(seconds)
        self._batch_seconds.observe(seconds)

    def add_stage(self, stage: str, seconds: float) -> None:
        """Accumulate wall-clock time into one pipeline stage."""
        self._stages.labels(stage).inc(seconds)

    def count_kernel(self, queries: int, seconds: float) -> None:
        self._counters["kernel_queries"].inc(queries)
        self._stages.labels("kernel").inc(seconds)

    def count_scalar(self, queries: int, seconds: float) -> None:
        self._counters["scalar_queries"].inc(queries)
        self._stages.labels("scalar").inc(seconds)

    def count_cache(self, hits: int, misses: int) -> None:
        if hits:
            self._counters["cache_hits"].inc(hits)
        if misses:
            self._counters["cache_misses"].inc(misses)

    def reset(self) -> None:
        """Zero every counter and timer and restart the uptime clock.

        The serving layer's ``stats``/``metrics`` verbs expose this so
        operators can measure rates over an interval without
        restarting the process.
        """
        self.registry.reset()
        self.started_at = time.monotonic()

    # -- read API -------------------------------------------------------
    def __getattr__(self, name: str) -> Any:
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            value = counters[name].value
            return int(value) if value == int(value) else value
        raise AttributeError(name)

    @property
    def stage_seconds(self) -> dict[str, float]:
        """Accumulated seconds per stage (insertion-ordered)."""
        family = self.registry._family(
            "reach_service_stage_seconds_total", "counter", "",
            ("stage",))
        return {values[0]: child.value
                for values, child in family.series()
                if child.value > 0.0}

    @property
    def uptime_seconds(self) -> float:
        """Monotonic seconds since creation or the last :meth:`reset`."""
        return time.monotonic() - self.started_at

    @property
    def cache_hit_rate(self) -> float:
        """Hits over total cache probes (0.0 when the cache is idle)."""
        hits = self._counters["cache_hits"].value
        probes = hits + self._counters["cache_misses"].value
        return hits / probes if probes else 0.0

    @property
    def queries_per_second(self) -> float:
        """Lifetime throughput over the ``total`` stage timer."""
        seconds = self.stage_seconds.get("total", 0.0)
        return self.queries / seconds if seconds > 0 else 0.0

    def batch_percentiles_ms(self) -> dict[str, float]:
        """Batch latency ``{p50,p95,p99,max}_ms`` estimates."""
        return self._batch_seconds.percentiles_ms()

    def as_dict(self, reset: bool = False) -> dict[str, Any]:
        """Flat dictionary view for CSV/markdown reporting.

        With ``reset``, every counter is drained atomically as it is
        read (and the uptime clock restarts), so no concurrent
        increment is ever lost between the snapshot and the zeroing.
        """
        stage_rows = sorted(
            (values[0], child)
            for values, child in self.registry._family(
                "reach_service_stage_seconds_total", "counter", "",
                ("stage",)).series())
        counts = {name: self._counters[name].snapshot(reset=reset)
                  for name in self._COUNTERS}
        counts = {name: int(v) if v == int(v) else v
                  for name, v in counts.items()}
        stages = {stage: value for stage, value in
                  ((stage, child.snapshot(reset=reset))
                   for stage, child in stage_rows)
                  if value > 0.0}
        probes = counts["cache_hits"] + counts["cache_misses"]
        total = stages.get("total", 0.0)
        row: dict[str, Any] = {
            "queries": counts["queries"],
            "batches": counts["batches"],
            "positives": counts["positives"],
            "cache_hits": counts["cache_hits"],
            "cache_misses": counts["cache_misses"],
            "cache_hit_rate": (counts["cache_hits"] / probes
                               if probes else 0.0),
            "kernel_queries": counts["kernel_queries"],
            "scalar_queries": counts["scalar_queries"],
            "queries_per_second": (counts["queries"] / total
                                   if total > 0 else 0.0),
            "uptime_seconds": self.uptime_seconds,
        }
        for stage, seconds in stages.items():
            row[f"seconds_{stage}"] = seconds
        if reset:
            self._batch_seconds.snapshot(reset=True)
            self.started_at = time.monotonic()
        return row


class QueryService:
    """High-throughput batch query front-end over one index.

    Parameters
    ----------
    index:
        Any registered :class:`~repro.core.base.ReachabilityIndex`.
    cache_size:
        Maximum entries of the LRU result cache; ``0`` (default)
        disables caching.  Keys are component-id pairs when the scheme
        exposes label arrays, raw node pairs otherwise.  Note the cache
        costs one dict probe per query, which on vectorised backends can
        exceed the kernel cost unless traffic actually repeats.
    max_workers:
        Thread-pool width for sharded execution; ``1`` (default) runs
        batches serially on the calling thread.
    chunk_size:
        Shard granularity: batches of at most this many pairs run
        unsharded; larger ones split into ``chunk_size`` pieces.

    The service is a context manager; :meth:`close` releases the pool.
    """

    def __init__(self, index: ReachabilityIndex, *,
                 cache_size: int = 0,
                 max_workers: int = 1,
                 chunk_size: int = 32_768) -> None:
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.index = index
        self._arrays: LabelArrays | None = index.label_arrays()
        self._cache: OrderedDict[tuple, bool] | None = (
            OrderedDict() if cache_size else None)
        self._cache_size = cache_size
        self._max_workers = max_workers
        self._chunk_size = chunk_size
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        # Lazily-built FastKernel (``False`` = not attempted yet); one
        # per service, so a hot-swapped index gets a fresh kernel.
        self._fast_kernel: Any = False
        self.metrics = ServiceMetrics()

    @classmethod
    def from_shared_memory(cls, segment: str,
                           **options) -> "QueryService":
        """A service over the index published under shared-memory
        segment ``segment`` (see :mod:`repro.core.shm`).

        The worker-fleet attach path: each worker process calls this
        instead of rebuilding the index, so N workers share one build.
        ``options`` are the regular constructor keywords.

        Raises
        ------
        FileNotFoundError
            When the segment does not exist (already swapped away).
        CorruptIndexError
            When the segment's payload fails validation — a worker
            must refuse to serve rather than answer from garbage.
        """
        from repro.core.shm import attach_index

        return cls(attach_index(segment), **options)

    # -- public API -----------------------------------------------------
    @property
    def vectorised(self) -> bool:
        """Whether batches run through a label-array kernel."""
        return self._arrays is not None

    def query(self, u: Node, v: Node) -> bool:
        """Single reachability query through the serving pipeline.

        Shares the cache and metrics with :meth:`query_batch`; latency-
        critical scalar loops that need none of that should call
        ``index.reachable`` directly.
        """
        return self.query_batch([(u, v)])[0]

    def query_batch(self, pairs: Iterable[tuple[Node, Node]]) -> list[bool]:
        """Answers for a batch of (source, target) pairs, in order.

        Raises
        ------
        QueryError
            If any pair references a node the index does not cover.
        """
        if not isinstance(pairs, list):
            pairs = list(pairs)
        started = time.perf_counter()
        if self._arrays is not None:
            answers, positives = self._batch_vector(pairs)
        else:
            answers, positives = self._batch_scalar(pairs)
        self.metrics.observe_batch(len(pairs), positives,
                                   time.perf_counter() - started)
        return answers

    def query_matrix(self, sources: Sequence[Node],
                     targets: Sequence[Node]) -> np.ndarray:
        """Dense ``len(sources) × len(targets)`` boolean matrix.

        The cross-product form of :meth:`query_batch` — the paper's XML
        structural-join pattern.  Bypasses the result cache (a dense
        cross product has no repeated component pairs to exploit).

        Raises
        ------
        QueryError
            If any source or target is not covered by the index.
        """
        sources = list(sources)
        targets = list(targets)
        started = time.perf_counter()
        if self._arrays is not None:
            mapped = time.perf_counter()
            cu = self._arrays.components_of(sources)
            cv = self._arrays.components_of(targets)
            self.metrics.add_stage("map", time.perf_counter() - mapped)
            grid_u, grid_v = np.meshgrid(cu, cv, indexing="ij")
            flat = self._run_kernel(grid_u.ravel(), grid_v.ravel())
            matrix = flat.reshape(len(sources), len(targets))
        else:
            reach = self.index.reachable
            evaluated = time.perf_counter()
            matrix = np.empty((len(sources), len(targets)), dtype=bool)
            for i, u in enumerate(sources):
                for j, v in enumerate(targets):
                    matrix[i, j] = reach(u, v)
            self.metrics.count_scalar(matrix.size,
                                      time.perf_counter() - evaluated)
        self.metrics.observe_batch(int(matrix.size), int(matrix.sum()),
                                   time.perf_counter() - started)
        return matrix

    def fast_kernel(self):
        """The buffer-reusing :class:`~repro.core.fastkernel.FastKernel`
        over this service's label arrays, or ``None`` when the scheme
        has no array view / no dense integer node space.

        Built once per service and cached — and since the gateway's
        hot-swap installs a *new* service per index, a reload always
        yields a kernel over the fresh arrays.
        """
        if self._fast_kernel is False:
            from repro.core.fastkernel import FastKernel

            self._fast_kernel = FastKernel.from_arrays(self._arrays)
        return self._fast_kernel

    def query_frames(self, frames: Sequence[bytes]
                     ) -> list[bytes]:
        """Answer binary ``BATCH`` payloads: packed pair bytes in,
        packed answer bitmaps out (one per frame, aligned).

        The zero-copy serving path: with a :meth:`fast_kernel` the
        payloads never become Python pair lists — they are viewed with
        ``np.frombuffer`` and evaluated in reused buffers.  Without one
        (scalar-only schemes, sparse node spaces) the frames are
        decoded and routed through :meth:`query_batch`, so every scheme
        still answers binary traffic — just not at zero-copy speed.

        Bypasses the LRU result cache (like :meth:`query_matrix`): the
        binary protocol targets bulk streams where the per-query dict
        probe would dominate the kernel.

        Raises
        ------
        QueryError
            If any frame references a node id outside the index.
        """
        kernel = self.fast_kernel()
        if kernel is not None:
            started = time.perf_counter()
            bitmaps, total, positives = kernel.run_frames(frames)
            elapsed = time.perf_counter() - started
            self.metrics.count_kernel(total, elapsed)
            self.metrics.observe_batch(total, positives, elapsed)
            return bitmaps
        bitmaps = []
        for payload in frames:
            flat = np.frombuffer(payload, dtype="<u4")
            answers = self.query_batch(
                list(zip(flat[0::2].tolist(), flat[1::2].tolist())))
            bitmaps.append(
                np.packbits(np.asarray(answers, dtype=bool),
                            bitorder="little").tobytes())
        return bitmaps

    def clear_cache(self) -> None:
        """Drop every cached result (metrics are kept)."""
        with self._lock:
            if self._cache is not None:
                self._cache.clear()

    def close(self) -> None:
        """Shut the shard pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        mode = "vectorised" if self.vectorised else "scalar"
        return (f"QueryService({type(self.index).__name__}, mode={mode}, "
                f"cache_size={self._cache_size}, "
                f"max_workers={self._max_workers})")

    # -- vectorised path ------------------------------------------------
    def _batch_vector(self, pairs: list[tuple[Node, Node]]
                      ) -> tuple[list[bool], int]:
        if not pairs:
            return [], 0
        arrays = self._arrays
        assert arrays is not None
        mapped = time.perf_counter()
        cu, cv = arrays.pair_components(pairs)
        self.metrics.add_stage("map", time.perf_counter() - mapped)
        if self._cache is None:
            out = self._run_kernel(cu, cv)
            return out.tolist(), int(out.sum())
        answers = self._cached_eval(
            keys=list(zip(cu.tolist(), cv.tolist())),
            evaluate=lambda idx: self._run_kernel(
                cu[idx], cv[idx]).tolist())
        return answers, sum(answers)

    def _run_kernel(self, cu: np.ndarray, cv: np.ndarray) -> np.ndarray:
        """Evaluate component-id vectors, sharding over the pool."""
        arrays = self._arrays
        assert arrays is not None
        n = len(cu)
        started = time.perf_counter()
        if self._max_workers == 1 or n <= self._chunk_size:
            out = arrays.query_components(cu, cv)
        else:
            num_chunks = -(-n // self._chunk_size)
            futures = [
                self._ensure_pool().submit(
                    arrays.query_components, chunk_u, chunk_v)
                for chunk_u, chunk_v in zip(
                    np.array_split(cu, num_chunks),
                    np.array_split(cv, num_chunks))]
            out = np.concatenate([f.result() for f in futures])
        self.metrics.count_kernel(n, time.perf_counter() - started)
        return out

    # -- scalar fallback path -------------------------------------------
    def _batch_scalar(self, pairs: list[tuple[Node, Node]]
                      ) -> tuple[list[bool], int]:
        if not pairs:
            return [], 0
        if self._cache is None:
            answers = self._scalar_eval(pairs)
        else:
            answers = self._cached_eval(
                keys=pairs,
                evaluate=lambda idx: self._scalar_eval(
                    [pairs[i] for i in idx]))
        return answers, sum(answers)

    def _scalar_eval(self, pairs: list[tuple[Node, Node]]) -> list[bool]:
        """Scalar ``reachable`` loop, sharded over the pool when wide.

        Threads only overlap interpreter time with other blocking work
        (the GIL serialises pure-Python loops), but sharding keeps the
        code path identical to the kernel case and lets C-backed schemes
        benefit.
        """
        started = time.perf_counter()
        if self._max_workers == 1 or len(pairs) <= self._chunk_size:
            answers = self.index.reachable_many(pairs)
        else:
            chunks = [pairs[i:i + self._chunk_size]
                      for i in range(0, len(pairs), self._chunk_size)]
            futures = [self._ensure_pool().submit(
                self.index.reachable_many, chunk) for chunk in chunks]
            answers = [a for f in futures for a in f.result()]
        self.metrics.count_scalar(len(pairs),
                                  time.perf_counter() - started)
        return answers

    # -- cache ----------------------------------------------------------
    def _cached_eval(self, keys: list[tuple], evaluate) -> list[bool]:
        """Answer ``keys`` through the LRU cache; misses go to
        ``evaluate`` (called with the miss positions, in order)."""
        cache = self._cache
        assert cache is not None
        started = time.perf_counter()
        answers: list = [False] * len(keys)
        misses: list[int] = []
        hits = 0
        # Dedupe within the batch too: repeated keys evaluate once.
        pending: dict[tuple, list[int]] = {}
        with self._lock:
            for i, key in enumerate(keys):
                if key in cache:
                    cache.move_to_end(key)
                    answers[i] = cache[key]
                    hits += 1
                elif key in pending:
                    pending[key].append(i)
                    hits += 1
                else:
                    pending[key] = []
                    misses.append(i)
        self.metrics.count_cache(hits, len(misses))
        self.metrics.add_stage("cache", time.perf_counter() - started)
        if misses:
            fresh = evaluate(misses)
            fill = time.perf_counter()
            with self._lock:
                for i, answer in zip(misses, fresh):
                    answer = bool(answer)
                    key = keys[i]
                    answers[i] = answer
                    for j in pending[key]:
                        answers[j] = answer
                    cache[key] = answer
                    cache.move_to_end(key)
                while len(cache) > self._cache_size:
                    cache.popitem(last=False)
            self.metrics.add_stage("cache",
                                   time.perf_counter() - fill)
        return answers

    # -- pool -----------------------------------------------------------
    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="repro-query")
        return self._pool
