"""The TLC (transitive link count) matrix — paper Sections 3.2–3.3.

Definition 1 introduces the TLC function

    ``N(x, y)`` = number of links ``i -> [j, k)`` in the transitive link
    table with ``i >= x`` and ``y ∈ [j, k)``.

Theorem 2 reduces the non-tree reachability test between nodes labeled
``[a₁, b₁)`` and ``[a₂, b₂)`` to ``N(a₁, a₂) − N(b₁, a₂) > 0``.  Storing
``N`` for all coordinate pairs would cost ``O(n²)``, so the paper grids
the plane at the coordinates where ``N`` can change and *snaps* query
points onto the grid:

* **x** snaps *up* to the smallest link tail ``>= x`` (``N`` is constant
  between consecutive tails, falling only when ``x`` passes one);
* **y** snaps via Lemma 2 to the start label of the lowest tree ancestor
  with a non-tree incoming edge, which is precomputed per node as the
  ``z`` component of the non-tree labels.

The grid therefore needs only ``|X| × |Y| ≤ t × t`` stored values
(Algorithm 1).  We add a zero border row and column so the "−" sentinel of
Definition 2 maps to the last index and Theorem 3's subtraction needs no
branches.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable

import numpy as np

from repro.core.linktable import LinkTable

__all__ = ["TLCMatrix", "build_tlc_matrix", "pack_tlc_matrix",
           "tlc_function"]


class TLCMatrix:
    """Gridded TLC values with sentinel border (Algorithm 1's output).

    ``matrix[ix, iy]`` is ``N(xs[ix], ys[iy])``; row ``len(xs)`` and column
    ``len(ys)`` are zero and represent the "−" sentinel.
    """

    __slots__ = ("xs", "ys", "matrix")

    def __init__(self, xs: tuple[int, ...], ys: tuple[int, ...],
                 matrix: np.ndarray) -> None:
        if matrix.shape != (len(xs) + 1, len(ys) + 1):
            raise ValueError(
                f"matrix shape {matrix.shape} does not match grid "
                f"({len(xs)}+1, {len(ys)}+1)")
        self.xs = xs
        self.ys = ys
        self.matrix = matrix

    @property
    def sentinel_x(self) -> int:
        """Row index representing the "−" x label."""
        return len(self.xs)

    @property
    def sentinel_y(self) -> int:
        """Column index representing the "−" y label."""
        return len(self.ys)

    def value(self, ix: int, iy: int) -> int:
        """Stored TLC value at grid indices (sentinels allowed)."""
        return int(self.matrix[ix, iy])

    def lookup(self, x: int, y_index: int) -> int:
        """``N(x, ys[y_index])`` for an arbitrary x coordinate.

        Snaps ``x`` up to the next grid column; beyond the last tail the
        count is zero (the sentinel row).
        """
        ix = bisect_left(self.xs, x)
        return int(self.matrix[ix, y_index])

    @property
    def nbytes(self) -> int:
        """Memory footprint of the stored matrix."""
        return int(self.matrix.nbytes)

    def __repr__(self) -> str:
        return (f"TLCMatrix(|X|={len(self.xs)}, |Y|={len(self.ys)}, "
                f"bytes={self.nbytes})")


def build_tlc_matrix(transitive_table: LinkTable) -> TLCMatrix:
    """Build the TLC matrix from a *closed* link table (Algorithm 1).

    Sweeps the links in decreasing tail order, maintaining a counter array
    ``C[y]`` (one slot per grid row): each link ``i -> [j, k)`` increments
    the contiguous slice of grid rows falling inside ``[j, k)``; after all
    links with tail ``i`` are applied, ``C`` *is* the matrix row for
    ``x = i``.  Runs in ``O(|T| + t²)``.
    """
    xs, ys = transitive_table.xs, transitive_table.ys
    matrix = np.zeros((len(xs) + 1, len(ys) + 1), dtype=np.int64)
    if not transitive_table.links:
        return TLCMatrix(xs, ys, matrix)

    counts = np.zeros(len(ys), dtype=np.int64)
    by_tail_desc = sorted(transitive_table.links,
                          key=lambda link: link.tail, reverse=True)
    pos = 0
    total = len(by_tail_desc)
    while pos < total:
        tail = by_tail_desc[pos].tail
        while pos < total and by_tail_desc[pos].tail == tail:
            link = by_tail_desc[pos]
            lo = bisect_left(ys, link.head_start)
            hi = bisect_left(ys, link.head_end)
            if lo < hi:
                counts[lo:hi] += 1
            pos += 1
        matrix[transitive_table.index_x(tail), :len(ys)] = counts
    return TLCMatrix(xs, ys, matrix)


def pack_tlc_matrix(tlc: TLCMatrix) -> TLCMatrix:
    """Shrink a TLC matrix to the smallest integer dtype that fits.

    Property 2: TLC values never exceed ``t(t+1)/2``, so each cell needs
    only ``2·log₂ t`` bits.  numpy arrays cannot store sub-byte cells,
    but choosing the minimal unsigned dtype realises most of that bound
    in practice (uint8 for ``t ≤ 22``, uint16 for ``t ≤ 361``, …) — an
    8x saving over the int64 working representation on sparse graphs.

    The packed matrix is value-identical; queries are unchanged.
    """
    max_value = int(tlc.matrix.max()) if tlc.matrix.size else 0
    for dtype in (np.uint8, np.uint16, np.uint32, np.int64):
        if max_value <= np.iinfo(dtype).max:
            return TLCMatrix(tlc.xs, tlc.ys, tlc.matrix.astype(dtype))
    raise AssertionError("unreachable: int64 always fits")


def tlc_function(transitive_table: LinkTable) -> Callable[[int, int], int]:
    """Return a brute-force ``N(x, y)`` evaluator (Definition 1 verbatim).

    ``O(|T|)`` per call — the reference oracle the gridded structures are
    tested against.
    """
    links = transitive_table.links

    def N(x: int, y: int) -> int:
        return sum(1 for link in links
                   if link.tail >= x and link.covers(y))

    return N
