"""Witness-path reconstruction from a Dual-I index.

A reachability index answers *whether* ``u ⇝ v``; applications (XML
provenance, pathway explanation, debugging) often need an actual path
as evidence.  This module reconstructs one from the dual-labeling
artefacts without falling back to blind graph search:

* **tree segments** come straight from the spanning forest's parent
  pointers (``v``'s ancestor chain truncated at the subtree root);
* **non-tree hops** are found by searching the *base* link digraph —
  the ``t``-node graph whose vertices are non-tree edges and whose
  arcs follow Lemma 1's chaining rule (``tail(e') ∈ head-interval(e)``)
  — which is tiny compared to the input graph (``t ≪ n``).

The returned witness is a list of original-graph nodes; within an SCC
the condensation hides the exact intra-component hops, so consecutive
witness nodes are connected by an edge *or* are members of one SCC
(:func:`expand_witness` upgrades the latter into explicit edges).
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from typing import Optional

from repro.core.dual_i import DualIIndex
from repro.exceptions import IndexBuildError, QueryError
from repro.graph.digraph import DiGraph, Node

__all__ = ["witness_path", "expand_witness", "verify_witness",
           "Explanation", "explain_query"]


def _component_tree_path(index: DualIIndex, from_cid: int,
                         to_cid: int) -> list[int]:
    """Tree path between two components, ``from`` an ancestor of ``to``."""
    forest = index.pipeline.forest
    chain = [to_cid]
    node = to_cid
    while node != from_cid:
        node = forest.parent[node]
        chain.append(node)
    chain.reverse()
    return chain


def witness_path(index: DualIIndex, u: Node, v: Node
                 ) -> Optional[list[Node]]:
    """A path of component representatives witnessing ``u ⇝ v``.

    Returns ``None`` when ``v`` is unreachable.  The path is expressed
    over *original* nodes — one representative per visited component —
    with every consecutive pair either joined by a graph edge or
    co-members of an SCC (see :func:`expand_witness`).

    Requires an index built with its pipeline artefacts (a deserialised
    index raises, via :attr:`DualIIndex.pipeline`).
    """
    pipeline = index.pipeline
    component_of = pipeline.condensation.component_of
    try:
        cu = component_of[u]
        cv = component_of[v]
    except KeyError as exc:
        raise QueryError(exc.args[0]) from None

    members = pipeline.condensation.members

    if cu == cv:
        return [u] if u == v else [u, v]

    labeling = pipeline.labeling
    iu = labeling.interval[cu]
    iv = labeling.interval[cv]
    if iu.start <= iv.start < iu.end:
        # Pure tree path.
        chain = _component_tree_path(index, cu, cv)
        return ([u] + [members[c][0] for c in chain[1:-1]] + [v])

    if not index.reachable(u, v):
        return None

    # Non-tree route: BFS over the base link digraph from links whose
    # tail lies in cu's subtree, looking for a link whose head interval
    # contains cv's start.
    base = pipeline.base_table
    links = base.links
    tails_sorted = sorted((link.tail, idx)
                          for idx, link in enumerate(links))
    tail_values = [t for t, _ in tails_sorted]

    def links_with_tail_in(lo: int, hi: int) -> list[int]:
        a = bisect_left(tail_values, lo)
        b = bisect_left(tail_values, hi)
        return [tails_sorted[pos][1] for pos in range(a, b)]

    start_links = links_with_tail_in(iu.start, iu.end)
    parent_link: dict[int, Optional[int]] = {
        idx: None for idx in start_links}
    queue = deque(start_links)
    goal = None
    while queue:
        idx = queue.popleft()
        link = links[idx]
        if link.head_start <= iv.start < link.head_end:
            goal = idx
            break
        for nxt in links_with_tail_in(link.head_start, link.head_end):
            if nxt not in parent_link:
                parent_link[nxt] = idx
                queue.append(nxt)
    if goal is None:  # pragma: no cover - reachable() said yes
        raise AssertionError("index and link search disagree")

    # Unwind the link chain: source-side tails and head components.
    chain_links = []
    idx: Optional[int] = goal
    while idx is not None:
        chain_links.append(links[idx])
        idx = parent_link[idx]
    chain_links.reverse()

    node_at_start = labeling.node_at_start
    path_components: list[int] = []
    cursor = cu
    for link in chain_links:
        tail_cid = node_at_start[link.tail]
        head_cid = node_at_start[link.head_start]
        path_components.extend(
            _component_tree_path(index, cursor, tail_cid))
        path_components.append(head_cid)
        cursor = head_cid
    path_components.extend(_component_tree_path(index, cursor, cv)[1:])

    # De-duplicate consecutive repeats (tail == cursor cases).
    deduped: list[int] = []
    for cid in path_components:
        if not deduped or deduped[-1] != cid:
            deduped.append(cid)

    witness = [members[c][0] for c in deduped]
    witness[0] = u
    witness[-1] = v
    return witness


from dataclasses import dataclass, field


@dataclass(frozen=True)
class Explanation:
    """A structured account of how a Dual-I query was decided.

    ``kind`` is one of:

    * ``"same-component"`` — both vertices share an SCC;
    * ``"tree"`` — decided by interval containment alone;
    * ``"non-tree"`` — decided by the TLC test (Theorem 3's second
      clause); ``tlc_difference`` carries the positive
      ``N[x₁,z₂] − N[y₁,z₂]`` value and ``witness`` a concrete path;
    * ``"unreachable"`` — both clauses failed.
    """

    kind: str
    source: Node
    target: Node
    tlc_difference: int = 0
    witness: list[Node] = field(default_factory=list)

    @property
    def reachable(self) -> bool:
        """The query's boolean answer."""
        return self.kind != "unreachable"

    def __str__(self) -> str:
        head = f"{self.source!r} -> {self.target!r}: "
        if self.kind == "same-component":
            return head + "reachable (same strongly connected component)"
        if self.kind == "tree":
            return head + "reachable via spanning-tree containment"
        if self.kind == "non-tree":
            route = " -> ".join(repr(n) for n in self.witness)
            return (head + f"reachable via non-tree links "
                    f"(TLC difference {self.tlc_difference}; "
                    f"witness {route})")
        return head + "unreachable"


def explain_query(index: DualIIndex, u: Node, v: Node) -> Explanation:
    """Explain how ``index`` decides ``u ⇝ v`` (see :class:`Explanation`).

    Runs the same clauses as :meth:`DualIIndex.reachable` but reports
    *which* clause fired, with a witness path for the non-tree case.
    """
    component_of = index._component_of
    try:
        cu = component_of[u]
        cv = component_of[v]
    except KeyError as exc:
        raise QueryError(exc.args[0]) from None
    if cu == cv:
        return Explanation(kind="same-component", source=u, target=v)
    a2 = index._starts[cv]
    if index._starts[cu] <= a2 < index._ends[cu]:
        return Explanation(kind="tree", source=u, target=v)
    rows = index._matrix_rows
    z2 = index._label_z[cv]
    difference = rows[index._label_x[cu]][z2] - rows[index._label_y[cu]][z2]
    if difference > 0:
        # A deserialised index carries no pipeline artefacts, so the
        # witness is unavailable; the explanation still reports the
        # clause and the TLC difference.
        try:
            witness = witness_path(index, u, v) or []
        except IndexBuildError:
            witness = []
        return Explanation(kind="non-tree", source=u, target=v,
                           tlc_difference=difference,
                           witness=witness)
    return Explanation(kind="unreachable", source=u, target=v)


def expand_witness(graph: DiGraph, witness: list[Node]) -> list[Node]:
    """Expand a component-level witness into a true edge path.

    Consecutive witness nodes that are not joined by an edge must be in
    one SCC; a BFS inside the graph fills in the intra-component hops.
    """
    if len(witness) < 2:
        return list(witness)
    full: list[Node] = [witness[0]]
    for target in witness[1:]:
        source = full[-1]
        if graph.has_edge(source, target):
            full.append(target)
            continue
        # BFS for the shortest connecting path.
        parents: dict[Node, Node] = {source: source}
        queue = deque([source])
        while queue and target not in parents:
            node = queue.popleft()
            for succ in graph.successors(node):
                if succ not in parents:
                    parents[succ] = node
                    queue.append(succ)
        if target not in parents:
            raise QueryError(target)
        segment: list[Node] = []
        node = target
        while node != source:
            segment.append(node)
            node = parents[node]
        full.extend(reversed(segment))
    return full


def verify_witness(graph: DiGraph, witness: list[Node]) -> bool:
    """``True`` iff ``witness`` is a genuine edge path in ``graph``."""
    if not witness:
        return False
    if len(witness) == 1:
        return witness[0] in graph
    return all(graph.has_edge(a, b)
               for a, b in zip(witness, witness[1:]))
