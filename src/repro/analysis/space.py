"""Space analysis: per-scheme label/structure size accounting.

Backs Figures 12 and 14.  The accounting convention (logical bytes, 4 per
stored int) is defined in :mod:`repro.core.base`; this module adds
comparison helpers across schemes and the theoretical yardsticks the
paper plots against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.base import ReachabilityIndex, build_index
from repro.graph.digraph import DiGraph

__all__ = [
    "SpaceReport",
    "closure_matrix_bytes",
    "tlc_matrix_bound_bytes",
    "space_report",
    "compare_schemes_space",
]


def closure_matrix_bytes(n: int) -> int:
    """Size of the full transitive-closure bit matrix: n² bits."""
    return (n * n + 7) // 8


def tlc_matrix_bound_bytes(t: int, int_bytes: int = 8) -> int:
    """Worst-case TLC matrix payload for ``t`` non-tree edges.

    The implementation stores int64 cells in a ``(t+1) × (t+1)`` bordered
    matrix; Property 2's tighter ``2·log t`` bits per cell is a packing
    bound, not what a practical array uses.
    """
    return (t + 1) * (t + 1) * int_bytes


@dataclass(frozen=True)
class SpaceReport:
    """Space breakdown of one index."""

    scheme: str
    num_nodes: int
    components: dict[str, int]

    @property
    def total_bytes(self) -> int:
        """Total logical bytes."""
        return sum(self.components.values())

    @property
    def bytes_per_node(self) -> float:
        """Total divided by input node count."""
        if self.num_nodes == 0:
            return 0.0
        return self.total_bytes / self.num_nodes

    def as_dict(self) -> dict[str, Any]:
        """Flat dict for reporting."""
        row: dict[str, Any] = {
            "scheme": self.scheme,
            "total_bytes": self.total_bytes,
            "bytes_per_node": self.bytes_per_node,
        }
        row.update({f"bytes_{k}": v for k, v in self.components.items()})
        return row


def space_report(index: ReachabilityIndex) -> SpaceReport:
    """Extract a :class:`SpaceReport` from a built index."""
    stats = index.stats()
    return SpaceReport(scheme=stats.scheme, num_nodes=stats.num_nodes,
                       components=dict(stats.space_bytes))


def compare_schemes_space(graph: DiGraph,
                          schemes: Sequence[str],
                          **options_by_scheme: dict,
                          ) -> list[SpaceReport]:
    """Build each scheme on ``graph`` and report its space breakdown.

    Per-scheme build options may be passed keyword-style with dashes
    replaced by underscores (e.g. ``dual_i={"use_meg": False}``).
    """
    reports = []
    for scheme in schemes:
        options = options_by_scheme.get(scheme.replace("-", "_"), {})
        index = build_index(graph, scheme=scheme, **options)
        reports.append(space_report(index))
    return reports
