"""DAG structure analytics: depth, width bounds, level profiles.

Quantities that predict index behaviour before building anything:

* :func:`dag_depth` — longest path length; deep graphs favour interval
  nesting, shallow-wide ones stress chain covers;
* :func:`level_histogram` — nodes per longest-path level (the DAG's
  "shape");
* :func:`width_upper_bound` — the greedy chain cover's chain count, an
  upper bound on the DAG's antichain width (Dilworth: width = minimum
  chain cover size); drives the ``chain-cover`` scheme's ``O(n·k)``
  footprint;
* :func:`nontree_edge_count` — the ``t`` a spanning forest will leave,
  computable in O(n + m) without building anything: after MEG a DAG has
  no superfluous edges, so ``t = m − n + #roots`` exactly.
"""

from __future__ import annotations

from repro.graph.condensation import condense
from repro.graph.digraph import DiGraph
from repro.graph.meg import minimal_equivalent_graph
from repro.graph.traversal import topological_sort

__all__ = ["dag_depth", "level_histogram", "width_upper_bound",
           "nontree_edge_count"]


def _levels(dag: DiGraph) -> dict:
    """Longest-path level per node (roots at level 0)."""
    level = {node: 0 for node in dag.nodes()}
    for node in topological_sort(dag):
        for succ in dag.successors(node):
            if level[node] + 1 > level[succ]:
                level[succ] = level[node] + 1
    return level


def dag_depth(dag: DiGraph) -> int:
    """Number of nodes on the longest path (0 for an empty graph).

    Raises :class:`repro.exceptions.NotADAGError` on cyclic input.
    """
    if dag.num_nodes == 0:
        return 0
    return max(_levels(dag).values()) + 1


def level_histogram(dag: DiGraph) -> list[int]:
    """Node count per longest-path level, shallowest first."""
    if dag.num_nodes == 0:
        return []
    level = _levels(dag)
    histogram = [0] * (max(level.values()) + 1)
    for node_level in level.values():
        histogram[node_level] += 1
    return histogram


def width_upper_bound(dag: DiGraph) -> int:
    """Chain count of the greedy chain cover (≥ the true width).

    Same decomposition as the ``chain-cover`` scheme; see that module
    for the construction.
    """
    assigned: set = set()
    chains = 0
    for start in topological_sort(dag):
        if start in assigned:
            continue
        chains += 1
        node = start
        while True:
            assigned.add(node)
            nxt = next((s for s in dag.successors(node)
                        if s not in assigned), None)
            if nxt is None:
                break
            node = nxt
    return chains


def nontree_edge_count(graph: DiGraph, use_meg: bool = True) -> int:
    """Predict the dual schemes' ``t`` for ``graph`` without labeling.

    Condenses (and optionally MEG-reduces) the graph, then applies
    ``t = m − n + #roots``: every non-root node takes exactly one
    spanning-forest parent, and in a MEG no remaining edge can be
    superfluous (a tree path of length ≥ 2 would make it transitively
    redundant, contradicting minimality).  Without MEG the value is an
    upper bound — DFS may still classify some edges superfluous.
    """
    dag = condense(graph).dag
    if use_meg:
        dag = minimal_equivalent_graph(dag).graph
    return dag.num_edges - dag.num_nodes + len(dag.roots())
