"""Reachability analytics on top of the index layer.

Derived questions applications ask once they can test reachability
cheaply — influence ranking in networks (the paper's biology
motivation), common-ancestor queries in ontologies (its RDF/OWL
motivation), and global connectivity statistics:

* :func:`descendant_counts` / :func:`ancestor_counts` — per-node
  reach-set sizes via the bitset closure (exact, one sweep);
* :func:`top_hubs` — nodes ranked by how much of the graph they reach;
* :func:`common_ancestors` / :func:`common_descendants` — set algebra
  over closure bitsets;
* :func:`reachability_ratio` — fraction of ordered pairs connected,
  the quantity the random-query workloads estimate by sampling.
"""

from __future__ import annotations

from repro.graph.bitset import iter_indices
from repro.graph.closure import transitive_closure_bitsets
from repro.graph.digraph import DiGraph, Node

__all__ = [
    "descendant_counts",
    "ancestor_counts",
    "top_hubs",
    "common_ancestors",
    "common_descendants",
    "reachability_ratio",
]


def descendant_counts(graph: DiGraph) -> dict[Node, int]:
    """Number of nodes each node reaches (including itself)."""
    desc, index = transitive_closure_bitsets(graph)
    return {node: desc[i].bit_count() for node, i in index.items()}


def ancestor_counts(graph: DiGraph) -> dict[Node, int]:
    """Number of nodes that reach each node (including itself)."""
    desc, index = transitive_closure_bitsets(graph)
    counts = {node: 0 for node in index}
    nodes = list(index)
    for bits in desc:
        for j in iter_indices(bits):
            counts[nodes[j]] += 1
    return counts


def top_hubs(graph: DiGraph, k: int = 10,
             direction: str = "out") -> list[tuple[Node, int]]:
    """The ``k`` nodes with the largest reach, as (node, count) pairs.

    ``direction="out"`` ranks by descendants (influence sources);
    ``"in"`` by ancestors (convergence sinks).  Ties break by node
    insertion order, keeping results deterministic.
    """
    if direction not in {"out", "in"}:
        raise ValueError(f"direction must be 'out' or 'in', "
                         f"got {direction!r}")
    counts = (descendant_counts(graph) if direction == "out"
              else ancestor_counts(graph))
    order = {node: i for i, node in enumerate(graph.nodes())}
    ranked = sorted(counts.items(),
                    key=lambda item: (-item[1], order[item[0]]))
    return ranked[:max(k, 0)]


def common_ancestors(graph: DiGraph, u: Node, v: Node) -> set[Node]:
    """Nodes that reach both ``u`` and ``v``."""
    desc, index = transitive_closure_bitsets(graph)
    iu, iv = index[u], index[v]
    nodes = list(index)
    return {nodes[i] for i, bits in enumerate(desc)
            if (bits >> iu) & 1 and (bits >> iv) & 1}


def common_descendants(graph: DiGraph, u: Node, v: Node) -> set[Node]:
    """Nodes reachable from both ``u`` and ``v``."""
    desc, index = transitive_closure_bitsets(graph)
    both = desc[index[u]] & desc[index[v]]
    nodes = list(index)
    return {nodes[i] for i in iter_indices(both)}


def reachability_ratio(graph: DiGraph) -> float:
    """Fraction of ordered node pairs (u, v), u ≠ v, with ``u ⇝ v``."""
    n = graph.num_nodes
    if n < 2:
        return 0.0
    desc, _ = transitive_closure_bitsets(graph)
    reachable_pairs = sum(bits.bit_count() for bits in desc) - n
    return reachable_pairs / (n * (n - 1))
