"""Analysis helpers: space accounting (Figures 12/14) and reachability
analytics (hubs, common ancestors, connectivity ratios)."""

from repro.analysis.reachability import (
    ancestor_counts,
    common_ancestors,
    common_descendants,
    descendant_counts,
    reachability_ratio,
    top_hubs,
)
from repro.analysis.structure import (
    dag_depth,
    level_histogram,
    nontree_edge_count,
    width_upper_bound,
)
from repro.analysis.space import (
    SpaceReport,
    closure_matrix_bytes,
    compare_schemes_space,
    space_report,
    tlc_matrix_bound_bytes,
)

__all__ = [
    "SpaceReport",
    "closure_matrix_bytes",
    "compare_schemes_space",
    "space_report",
    "tlc_matrix_bound_bytes",
    "descendant_counts",
    "ancestor_counts",
    "top_hubs",
    "common_ancestors",
    "common_descendants",
    "reachability_ratio",
    "dag_depth",
    "level_histogram",
    "width_upper_bound",
    "nontree_edge_count",
]
